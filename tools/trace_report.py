#!/usr/bin/env python3
"""Render a drain waterfall from a trace dump.

Reads the JSON-lines format written by ``Tracer.export_jsonl`` (one span
object per line) and prints, per trace, an indented tree of spans with
time-aligned duration bars — the classic distributed-tracing waterfall,
in a terminal:

    $ python tools/trace_report.py trace.jsonl
    trace t000003 — 11 spans, 12.4 ms
      drain                                12.4ms |##############################|
        drain.admission                     1.1ms |##                            |
        drain.chunk                         9.8ms |    ######################    |
          batch.allocation                  2.0ms |    #####                     |
          ...

Spans absorbed from workers/remotes keep their recorded parent IDs, so a
socket-transported, sharded drain renders as one tree.  Orphans (spans
whose parent never reached the ring, e.g. a crashed worker) are rendered
as extra roots and flagged.  Open roots (``end == 0``: an abandoned
submission) are marked ``open``.

Usage:
    python tools/trace_report.py DUMP.jsonl [--trace TRACE_ID] [--width N]
    ... | python tools/trace_report.py -          # read stdin
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Mapping


def load_spans(lines: Iterable[str]) -> list[dict]:
    """Parse JSONL span records, skipping blank lines."""
    spans = []
    for line in lines:
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def _format_ms(seconds: float) -> str:
    millis = seconds * 1000.0
    if millis >= 1000.0:
        return f"{millis / 1000.0:.2f}s"
    return f"{millis:.1f}ms"


def _format_tags(tags: Mapping) -> str:
    if not tags:
        return ""
    inner = " ".join(f"{key}={value}" for key, value in sorted(tags.items()))
    return f"  [{inner}]"


def render_trace(trace_id: str, spans: list[dict], width: int = 30) -> str:
    """Render one trace's spans as an indented, time-aligned waterfall."""
    by_id = {span["span_id"]: span for span in spans}
    children: dict[str | None, list[dict]] = {}
    roots: list[tuple[bool, dict]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is None:
            roots.append((False, span))
        elif parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append((True, span))  # orphan: parent never landed
    for group in children.values():
        group.sort(key=lambda span: (span["start"], span["span_id"]))
    roots.sort(key=lambda pair: (pair[1]["start"], pair[1]["span_id"]))

    starts = [span["start"] for span in spans]
    ends = [span["end"] for span in spans if span["end"]]
    origin = min(starts) if starts else 0.0
    horizon = max(ends) if ends else origin
    extent = max(horizon - origin, 1e-9)

    name_width = max(
        (len(span["name"]) + 2 * _depth(span, by_id) for span in spans), default=0
    )
    lines = [f"trace {trace_id} — {len(spans)} spans, {_format_ms(extent)}"]

    def emit(span: dict, depth: int, orphan: bool) -> None:
        start, end = span["start"], span["end"]
        open_span = not end
        duration = (end - start) if not open_span else (horizon - start)
        left = int(round((start - origin) / extent * width))
        span_cells = max(1, int(round(duration / extent * width)))
        bar = " " * left + "#" * min(span_cells, width - left)
        label = "  " * depth + span["name"]
        suffix = " open" if open_span else ""
        suffix += " (orphan)" if orphan else ""
        lines.append(
            f"  {label:<{name_width}} {_format_ms(duration):>8} "
            f"|{bar:<{width}}|{suffix}{_format_tags(span.get('tags') or {})}"
        )
        for child in children.get(span["span_id"], ()):
            emit(child, depth + 1, False)

    for orphan, root in roots:
        emit(root, 0, orphan)
    return "\n".join(lines)


def _depth(span: dict, by_id: Mapping[str, dict]) -> int:
    depth = 0
    seen = {span["span_id"]}
    parent = span.get("parent_id")
    while parent in by_id and parent not in seen:
        seen.add(parent)
        depth += 1
        parent = by_id[parent].get("parent_id")
    return depth


def render_report(
    spans: list[dict], *, trace_id: str | None = None, width: int = 30
) -> str:
    """Group spans by trace and render every (or one selected) waterfall."""
    traces: dict[str, list[dict]] = {}
    for span in spans:
        traces.setdefault(span["trace_id"], []).append(span)
    if trace_id is not None:
        if trace_id not in traces:
            known = ", ".join(sorted(traces)) or "<none>"
            raise SystemExit(f"trace {trace_id!r} not in dump (have: {known})")
        traces = {trace_id: traces[trace_id]}
    return "\n\n".join(
        render_trace(tid, trace_spans, width=width)
        for tid, trace_spans in sorted(traces.items())
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="trace JSONL file, or '-' for stdin")
    parser.add_argument("--trace", help="render only this trace ID")
    parser.add_argument(
        "--width", type=int, default=30, help="waterfall bar width in cells"
    )
    options = parser.parse_args(argv)
    if options.dump == "-":
        spans = load_spans(sys.stdin)
    else:
        with open(options.dump, encoding="utf-8") as handle:
            spans = load_spans(handle)
    if not spans:
        print("no spans in dump")
        return 0
    try:
        print(render_report(spans, trace_id=options.trace, width=options.width))
    except BrokenPipeError:  # downstream pager/head closed the pipe: not an error
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
