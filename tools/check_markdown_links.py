#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for inline links ``[text](target)`` and
reference definitions ``[label]: target``, resolves relative targets against
the linking file (targets starting with ``/`` resolve against the repo
root), and reports targets that do not exist on disk.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are out of
scope — this guard is about the repo's own files moving or being renamed.

Used by the CI docs job and mirrored by ``tests/test_docs.py``:

    python tools/check_markdown_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline [text](target) — target ends at the first closing paren or space
# (markdown titles like [t](x "title") carry a space before the title).
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definitions: [label]: target
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")

_SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules", ".venv"}


def _strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks: links inside code samples are not links."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _targets(text: str) -> list[str]:
    stripped = _strip_code_blocks(text)
    return _INLINE.findall(stripped) + _REFERENCE.findall(stripped)


def check_links(root: Path) -> list[str]:
    """Return a list of ``file: target`` strings for every broken link."""
    broken: list[str] = []
    for markdown in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in markdown.parts):
            continue
        for target in _targets(markdown.read_text(encoding="utf-8")):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = markdown.parent / path_part
            if not resolved.exists():
                broken.append(f"{markdown.relative_to(root)}: {target}")
    return broken


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    broken = check_links(root)
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
