"""Retail / review analytics: SUM queries, sampling-rate and epsilon trade-offs.

The paper's second motivating workload is OLAP over a very large review table
(Amazon Review).  This example builds an Amazon-like count tensor, then walks
the two dials an analyst actually controls:

* the sampling rate ``sr`` — more sampling means better accuracy but less
  speed-up, and
* the per-query privacy budget ``epsilon`` — more budget means less noise.

It prints a small table for each sweep so the trade-offs are visible at a
glance (the full evaluation lives in ``benchmarks/``).
"""

from __future__ import annotations

from repro import RangeQuery
from repro.experiments.scenarios import amazon_scenario


def main() -> None:
    scenario = amazon_scenario(num_rows=300_000, sampling_rate=0.05, seed=21)
    system = scenario.system
    print(
        f"amazon-like tensor: {scenario.tensor.num_rows} rows across "
        f"{system.num_providers} providers, {system.total_clusters} clusters"
    )

    query = RangeQuery.sum({"day": (100, 300), "rating": (4, 5)})
    exact = system.exact_baseline(query)
    print(f"\nquery: {query.to_sql('reviews')}")
    print(f"exact answer: {exact.value}\n")

    print("sampling-rate sweep (epsilon = 1.0)")
    print(f"{'sr':>6} {'estimate':>12} {'rel_err_%':>10} {'rows_scanned':>14}")
    for rate in (0.05, 0.10, 0.20, 0.40):
        result = system.execute(query, sampling_rate=rate)
        print(
            f"{rate:>6.2f} {result.value:>12.0f} "
            f"{100 * (result.relative_error or 0):>10.2f} "
            f"{result.trace.rows_scanned:>14}"
        )

    print("\nepsilon sweep (sr = 10%)")
    print(f"{'eps':>6} {'estimate':>12} {'rel_err_%':>10} {'noise':>12}")
    for epsilon in (0.1, 0.5, 1.0, 2.0):
        result = system.execute(query, sampling_rate=0.1, epsilon=epsilon)
        print(
            f"{epsilon:>6.1f} {result.value:>12.0f} "
            f"{100 * (result.relative_error or 0):>10.2f} "
            f"{result.noise_injected:>12.1f}"
        )

    print("\nderived aggregate: AVERAGE measure per matching tensor row")
    count_result = system.execute(RangeQuery.count({"day": (100, 300), "rating": (4, 5)}))
    total_result = system.execute(RangeQuery.sum({"day": (100, 300), "rating": (4, 5)}))
    if count_result.value > 0:
        print(
            f"  private AVG = SUM/COUNT = {total_result.value / count_result.value:.3f} "
            "(post-processing of two DP answers, no extra budget beyond the two queries)"
        )


if __name__ == "__main__":
    main()
