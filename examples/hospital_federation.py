"""Federated hospital study: COUNT queries over unevenly sized partitions.

The paper motivates the system with multi-hospital studies (e.g. during a
pandemic): several hospitals hold patient records with the same schema but
must not share rows.  This example builds four "hospitals" of very different
sizes (a university hospital, two regional ones, and a small clinic), runs an
analyst's workload of COUNT range queries, and shows

* how the allocation phase gives larger sample allocations to the providers
  that hold more query-relevant data, and
* how the end user's total privacy budget depletes query by query.
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyConfig, RangeQuery, SamplingConfig, SystemConfig, FederatedAQPSystem
from repro.federation.partitioning import partition_skewed
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


def build_patient_table(num_rows: int, seed: int) -> Table:
    """Synthetic patient-visit table shared by all hospitals."""
    rng = np.random.default_rng(seed)
    schema = Schema(
        (
            Dimension("age", 0, 100),
            Dimension("stay_days", 0, 60),
            Dimension("severity", 0, 4),
            Dimension("diagnosis_code", 0, 199),
        )
    )
    return Table(
        schema,
        {
            "age": np.clip(rng.normal(55, 20, num_rows).round(), 0, 100).astype(int),
            "stay_days": rng.poisson(5, num_rows).clip(0, 60),
            "severity": rng.integers(0, 5, num_rows),
            "diagnosis_code": rng.integers(0, 200, num_rows),
        },
    )


def main() -> None:
    table = build_patient_table(200_000, seed=3)
    # One university hospital holds half the records; the clinic holds 5%.
    hospitals = partition_skewed(table, weights=[0.5, 0.25, 0.20, 0.05], rng=3)
    names = ["university", "regional-a", "regional-b", "clinic"]
    for name, partition in zip(names, hospitals):
        print(f"{name:12s}: {partition.num_rows} patient records")

    config = SystemConfig(
        cluster_size=500,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.15, min_clusters_for_approximation=4),
        seed=11,
    )
    system = FederatedAQPSystem.from_partitions(
        hospitals, config=config, total_epsilon=10.0, total_delta=0.05
    )

    workload = [
        RangeQuery.count({"age": (60, 100), "severity": (3, 4)}),
        RangeQuery.count({"age": (0, 18), "stay_days": (7, 60)}),
        RangeQuery.count({"severity": (2, 4), "stay_days": (3, 20)}),
        RangeQuery.count({"age": (30, 70), "diagnosis_code": (20, 120)}),
    ]

    print("\nanalyst workload")
    print("-" * 72)
    for query in workload:
        result = system.execute(query)
        allocations = {
            report.provider_id: report.allocation for report in result.provider_reports
        }
        print(query.to_sql("patients"))
        print(
            f"  exact={result.exact_value}  estimate={result.value:.0f}  "
            f"rel_err={100 * (result.relative_error or 0):.1f}%  "
            f"rows scanned={result.trace.rows_scanned}/{result.trace.rows_available}"
        )
        print(f"  per-hospital sample allocations: {allocations}")
        print(f"  remaining user budget (epsilon, delta): {system.remaining_budget()}")
        print()


if __name__ == "__main__":
    main()
