"""Quickstart: build a private federated AQP deployment and ask a query.

Run with::

    python examples/quickstart.py

The script generates a small synthetic Adult-like count tensor, partitions it
horizontally across four data providers, and answers a COUNT range query
both exactly (non-private baseline) and through the private approximate
protocol, printing the accuracy and the amount of work saved.
"""

from __future__ import annotations

from repro import PrivacyConfig, RangeQuery, SamplingConfig, SystemConfig, FederatedAQPSystem
from repro.datasets.adult import AdultSyntheticGenerator


def main() -> None:
    # 1. Generate a synthetic Adult-like count tensor (stand-in for the real
    #    table; see DESIGN.md for the substitution rationale).
    tensor = AdultSyntheticGenerator(num_rows=120_000, seed=7).count_tensor()
    print(f"count tensor: {tensor.num_rows} rows, {len(tensor.schema)} dimensions")

    # 2. Configure the federation: 4 providers, clusters of ~1% of a
    #    partition, epsilon = 1 per query split 10/10/80 across the phases.
    config = SystemConfig(
        cluster_size=300,
        num_providers=4,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=4),
        seed=42,
    )
    system = FederatedAQPSystem.from_table(tensor, config=config, total_epsilon=20.0)
    print(
        f"federation: {system.num_providers} providers, {system.total_clusters} clusters, "
        f"{system.metadata_size_bytes() / 1024:.1f} KB of metadata"
    )

    # 3. Ask a range query — either through the query model or as SQL text.
    query = RangeQuery.count({"age": (25, 45), "hours_per_week": (30, 60)})
    result = system.execute(query, sampling_rate=0.2)

    print("\nquery:", query.to_sql())
    print(f"exact answer        : {result.exact_value}")
    print(f"private estimate    : {result.value:.1f}")
    print(f"relative error      : {100 * result.relative_error:.2f}%")
    print(f"epsilon spent       : {result.epsilon_spent}")
    print(
        "work saved          : scanned "
        f"{result.trace.rows_scanned} of {result.trace.rows_available} rows "
        f"({100 * result.trace.work_fraction:.1f}%)"
    )
    print(f"remaining budget    : {system.remaining_budget()}")

    # 4. The same query as SQL text, combined with SMC at the result stage.
    smc_result = system.execute(
        "SELECT COUNT(*) FROM adult WHERE 25 <= age AND age <= 45 "
        "AND 30 <= hours_per_week AND hours_per_week <= 60",
        use_smc=True,
    )
    print("\nwith SMC result combination:")
    print(f"private estimate    : {smc_result.value:.1f}")
    print(f"injected noise      : {smc_result.noise_injected:.1f}")


if __name__ == "__main__":
    main()
