"""Attack demo: why the interactive, budget-limited system resists inference.

Reproduces the logic of Section 6.6 at demo scale.  A Naive-Bayes attacker
tries to learn a sensitive attribute from quasi-identifiers by issuing COUNT
queries:

1. against a *plain* oracle that answers exactly (no protection) — the attack
   clearly beats chance, and
2. against the private federated system, where the attacker's total budget
   has to stretch across all of its training queries — the attack collapses
   back to chance level.
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyConfig, SamplingConfig, SystemConfig, FederatedAQPSystem
from repro.attacks.budgeting import AttackBudgetRegime
from repro.attacks.nbc import NaiveBayesAttacker
from repro.attacks.runner import AttackRunner
from repro.query.executor import execute_on_table
from repro.query.model import Aggregation
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


def build_sensitive_table(num_rows: int, seed: int) -> Table:
    """A table whose sensitive attribute is highly predictable from the QIs."""
    rng = np.random.default_rng(seed)
    region = rng.integers(0, 5, num_rows)
    job = rng.integers(0, 4, num_rows)
    income_band = (4 * region + 3 * job + rng.integers(0, 3, num_rows)) % 20
    schema = Schema(
        (
            Dimension("income_band", 0, 19),
            Dimension("region", 0, 4),
            Dimension("job", 0, 3),
        )
    )
    return Table(schema, {"income_band": income_band, "region": region, "job": job})


def main() -> None:
    table = build_sensitive_table(20_000, seed=13)
    chance = 1 / 20

    # --- 1. Unprotected oracle -------------------------------------------------
    attacker = NaiveBayesAttacker(
        schema=table.schema, sensitive="income_band", quasi_identifiers=["region", "job"]
    )
    attacker.train(lambda query: execute_on_table(table, query))
    unprotected_accuracy = attacker.accuracy(table, max_rows=500)
    print(f"training queries needed       : {attacker.num_queries()}")
    print(f"chance accuracy               : {100 * chance:.1f}%")
    print(f"attack vs unprotected oracle  : {100 * unprotected_accuracy:.1f}%")

    # --- 2. Protected federated system ------------------------------------------
    config = SystemConfig(
        cluster_size=250,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.25, min_clusters_for_approximation=3),
        seed=13,
    )
    system = FederatedAQPSystem.from_table(table, config=config)
    runner = AttackRunner(
        system=system,
        original_table=table,
        sensitive="income_band",
        quasi_identifiers=("region", "job"),
        evaluation_rows=500,
    )
    for regime in (AttackBudgetRegime.SEQUENTIAL, AttackBudgetRegime.ADVANCED):
        outcome = runner.run(regime, Aggregation.COUNT, total_epsilon=20.0, total_delta=1e-6)
        print(
            f"attack vs protected system ({regime.value:10s}): "
            f"{100 * outcome.accuracy:.1f}%  "
            f"(per-query epsilon {outcome.per_query_epsilon:.4f}, "
            f"{outcome.num_queries} queries, resisted={outcome.is_resisted})"
        )


if __name__ == "__main__":
    main()
