"""Unit tests for the vectorised batch kernels.

The batch engine is built on three layers of vectorised primitives — the
contiguous :class:`ClusterLayout`, the batched :class:`MetadataStore`
queries, and the vectorised sensitivity helpers.  Each must agree exactly
with its scalar counterpart.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sensitivity import (
    ClusterSensitivityInputs,
    delta_r,
    estimator_smooth_sensitivities,
    estimator_smooth_sensitivity,
    smooth_peak_factor,
)
from repro.query.batch import QueryBatch
from repro.query.executor import ExactExecutor, execute_on_cluster
from repro.query.model import RangeQuery
from repro.sampling.em_sampler import EMClusterSampler
from repro.storage.metadata import build_metadata


@pytest.fixture
def layout(clustered):
    return clustered.layout()


class TestClusterLayout:
    def test_layout_preserves_rows_and_offsets(self, clustered, layout):
        assert layout.num_rows == clustered.num_rows
        assert layout.num_clusters == clustered.num_clusters
        ends = layout.starts + layout.cluster_rows
        assert layout.starts[0] == 0
        assert int(ends[-1]) == layout.num_rows
        assert np.all(layout.starts[1:] == ends[:-1])

    def test_dimension_columns_are_narrowed(self, layout):
        # The test schema's domains fit comfortably in int32.
        for name, column in layout.columns.items():
            assert column.dtype == np.int32, name
        assert layout.measure.dtype == np.int64

    def test_cluster_values_match_per_cluster_loop(self, clustered, layout):
        queries = [
            RangeQuery.count({"age": (10, 60)}),
            RangeQuery.count({"age": (0, 99), "dept": (3, 7)}),
            RangeQuery.sum({"hours": (0, 10)}),
        ]
        matrix = layout.cluster_values(QueryBatch(tuple(queries)))
        for query_index, query in enumerate(queries):
            expected = [execute_on_cluster(cluster, query) for cluster in clustered]
            assert matrix[query_index].tolist() == expected

    def test_query_cluster_values_respects_per_query_positions(self, clustered, layout):
        queries = [
            RangeQuery.count({"age": (10, 60)}),
            RangeQuery.count({"hours": (2, 9)}),
        ]
        positions = [np.array([0, 3, 7]), np.array([1, 2])]
        values = layout.query_cluster_values(QueryBatch(tuple(queries)), positions)
        for query_index, (query, chosen) in enumerate(zip(queries, positions)):
            expected = [
                execute_on_cluster(clustered.clusters[p], query) for p in chosen
            ]
            assert values[query_index].tolist() == expected

    def test_query_cluster_values_empty_positions(self, layout):
        queries = [RangeQuery.count({"age": (10, 60)})]
        values = layout.query_cluster_values(
            QueryBatch(tuple(queries)), [np.empty(0, dtype=np.int64)]
        )
        assert values[0].size == 0

    def test_gather_subsets_clusters(self, clustered, layout):
        sub = layout.gather(np.array([2, 5]))
        assert sub.num_clusters == 2
        assert sub.cluster_ids == (2, 5)
        assert sub.num_rows == (
            clustered.clusters[2].num_rows + clustered.clusters[5].num_rows
        )


class TestMetadataBatch:
    def test_covering_batch_matches_scalar(self, clustered, metadata):
        ranges_list = [
            {"age": (10, 60)},
            {"age": (0, 99), "dept": (3, 7)},
            {"hours": (200, 300)},  # disjoint from the clipped domain data
        ]
        batched = metadata.covering_cluster_ids_batch(ranges_list)
        for ranges, expected_ids in zip(ranges_list, batched):
            assert metadata.covering_cluster_ids(ranges) == expected_ids
            scalar = [
                entry.cluster_id
                for entry in metadata.global_entries
                if entry.overlaps(ranges)
            ]
            assert expected_ids == scalar

    def test_proportions_batch_matches_scalar_path(self, clustered):
        # Build the metadata without the dense index to get the reference
        # per-cluster scalar computation, and with it for the batched path.
        sparse = build_metadata(clustered, dense=False)
        dense = build_metadata(clustered, dense=True)
        ranges_list = [{"age": (10, 60), "dept": (2, 6)}, {"hours": (0, 12)}]
        covering = dense.covering_cluster_ids_batch(ranges_list)
        batched = dense.proportions_batch(covering, ranges_list)
        for ranges, ids, proportions in zip(ranges_list, covering, batched):
            reference = sparse.proportions(ids, ranges)
            assert proportions == pytest.approx(reference.tolist(), abs=1e-12)

    def test_positions_and_ids_agree(self, metadata):
        ranges_list = [{"age": (20, 40)}]
        positions = metadata.covering_positions_batch(ranges_list)[0]
        ids = metadata.covering_cluster_ids_batch(ranges_list)[0]
        assert [metadata.cluster_ids[p] for p in positions] == ids


class TestVectorisedSensitivity:
    def test_matches_scalar_smooth_sensitivity(self):
        epsilon, delta = 0.8, 1e-3
        dr_value = delta_r(100, 3)
        sum_proportions = 4.2
        values = np.array([0.0, 3.0, 250.0, 9000.0])
        proportions = np.array([0.01, 0.2, 0.05, 0.5])
        probabilities = np.array([0.05, 0.3, 0.15, 0.5])
        vectorised = estimator_smooth_sensitivities(
            values,
            proportions,
            probabilities,
            sum_proportions=sum_proportions,
            delta_r_value=dr_value,
            epsilon=epsilon,
            delta=delta,
        )
        for index in range(values.size):
            scalar = estimator_smooth_sensitivity(
                ClusterSensitivityInputs(
                    cluster_value=float(values[index]),
                    proportion=float(proportions[index]),
                    probability=float(probabilities[index]),
                ),
                sum_proportions=sum_proportions,
                delta_r_value=dr_value,
                epsilon=epsilon,
                delta=delta,
            )
            assert vectorised[index] == pytest.approx(scalar, rel=1e-12)

    def test_peak_factor_is_positive_and_cached(self):
        first = smooth_peak_factor(0.8, 1e-3)
        second = smooth_peak_factor(0.8, 1e-3)
        assert first > 0
        assert first == second


class TestFlattenedSelectionDistribution:
    """The provider's flattened Algorithm-2 pipeline vs the scalar sampler."""

    def test_select_clusters_matches_class_sampler(self, small_table):
        from repro.core.accounting import QueryBudget
        from repro.federation.messages import AllocationMessage, QueryRequest
        from repro.federation.provider import DataProvider, _AnswerPlan

        provider = DataProvider(
            provider_id="p0", table=small_table, cluster_size=100, n_min=3, rng=0
        )
        query = RangeQuery.count({"age": (10, 80)})
        provider.prepare_summary(
            QueryRequest(query_id=1, query=query, sampling_rate=0.3),
            epsilon_allocation=0.1,
        )
        session = provider._sessions[1]
        plan = _AnswerPlan(
            allocation=AllocationMessage(query_id=1, provider_id="p0", sample_size=4),
            session=session,
            exact=False,
            needed_positions=session.covering_positions,
        )
        provider._select_clusters([plan], epsilon_sampling=0.1)
        reference = EMClusterSampler(epsilon=0.1, n_min=3).selection_distribution(
            session.proportions, plan.sample_size
        )
        assert plan.selection == pytest.approx(reference.tolist(), rel=1e-12)
        assert plan.selected.size == 4
        assert np.all((0 <= plan.selected) & (plan.selected < session.proportions.size))
        provider.forget(1)
