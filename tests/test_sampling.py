"""Tests for pps probabilities, estimators, the EM sampler, and baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.query.model import RangeQuery
from repro.sampling.baselines import ExactPPSSampler, UniformClusterSampler, UniformRowSampler
from repro.sampling.em_sampler import (
    EMClusterSampler,
    sampling_probability_sensitivity,
)
from repro.sampling.estimator import hansen_hurwitz_estimate, horvitz_thompson_estimate
from repro.sampling.probabilities import normalise_proportions, sampling_probabilities
from repro.storage.clustered_table import ClusteredTable


class TestSamplingProbabilities:
    def test_proportional_to_size(self):
        probabilities = sampling_probabilities([1.0, 2.0, 1.0], floor=0.0)
        assert probabilities == pytest.approx([0.25, 0.5, 0.25])

    def test_all_zero_falls_back_to_uniform(self):
        probabilities = sampling_probabilities([0.0, 0.0, 0.0, 0.0])
        assert probabilities == pytest.approx(np.full(4, 0.25))

    def test_floor_keeps_probabilities_positive(self):
        probabilities = sampling_probabilities([0.0, 1.0], floor=1e-6)
        assert probabilities.min() > 0
        assert probabilities.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(SamplingError):
            sampling_probabilities([-0.1, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(SamplingError):
            normalise_proportions([])

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_always_a_distribution(self, proportions):
        probabilities = sampling_probabilities(proportions)
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities >= 0)


class TestEstimators:
    def test_hansen_hurwitz_exact_when_weights_match(self):
        # If every cluster value is proportional to its probability the
        # estimator is exact regardless of which clusters are sampled.
        values = np.array([10.0, 20.0, 70.0])
        probabilities = values / values.sum()
        estimate = hansen_hurwitz_estimate(values[[0, 2]], probabilities[[0, 2]])
        assert estimate == pytest.approx(100.0)

    def test_hansen_hurwitz_unbiased_under_uniform_sampling(self):
        rng = np.random.default_rng(0)
        population = rng.integers(0, 100, 50).astype(float)
        probabilities = np.full(50, 1 / 50)
        estimates = []
        for _ in range(3000):
            picks = rng.integers(0, 50, size=10)
            estimates.append(hansen_hurwitz_estimate(population[picks], probabilities[picks]))
        assert np.mean(estimates) == pytest.approx(population.sum(), rel=0.02)

    def test_horvitz_thompson_full_sample_is_exact(self):
        values = [5.0, 7.0, 9.0]
        assert horvitz_thompson_estimate(values, [1.0, 1.0, 1.0]) == pytest.approx(21.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SamplingError):
            hansen_hurwitz_estimate([1.0], [0.5, 0.5])

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(SamplingError):
            hansen_hurwitz_estimate([1.0], [0.0])
        with pytest.raises(SamplingError):
            hansen_hurwitz_estimate([1.0], [1.5])

    def test_empty_sample_rejected(self):
        with pytest.raises(SamplingError):
            hansen_hurwitz_estimate([], [])


class TestEMSampler:
    def test_sensitivity_formula(self):
        assert sampling_probability_sensitivity(4) == pytest.approx(1 / 20)
        with pytest.raises(SamplingError):
            sampling_probability_sensitivity(0)

    def test_sample_count_and_indices_in_range(self):
        sampler = EMClusterSampler(epsilon=0.5, n_min=4, rng=0)
        outcome = sampler.sample([0.1, 0.2, 0.3, 0.4], 3)
        assert len(outcome.selected_indices) == 3
        assert all(0 <= i < 4 for i in outcome.selected_indices)
        assert outcome.epsilon_spent == pytest.approx(0.5)

    def test_selection_distribution_is_valid(self):
        sampler = EMClusterSampler(epsilon=0.5, n_min=4, rng=0)
        distribution = sampler.selection_distribution([0.0, 1.0, 2.0, 5.0], 2)
        assert distribution.sum() == pytest.approx(1.0)
        assert np.all(distribution > 0)

    def test_large_epsilon_prefers_large_proportions(self):
        sampler = EMClusterSampler(epsilon=500.0, n_min=2, rng=1)
        outcome = sampler.sample([0.01, 0.01, 0.01, 0.97], 40)
        counts = np.bincount(outcome.selected_indices, minlength=4)
        assert counts[3] > counts[:3].sum()

    def test_without_replacement_selects_distinct(self):
        sampler = EMClusterSampler(epsilon=1.0, n_min=4, replace=False, rng=2)
        outcome = sampler.sample([0.1, 0.2, 0.3, 0.4, 0.5], 3)
        assert len(set(outcome.selected_indices)) == 3

    def test_without_replacement_clamps_to_population(self):
        sampler = EMClusterSampler(epsilon=1.0, n_min=4, replace=False, rng=2)
        outcome = sampler.sample([0.1, 0.2], 10)
        assert len(outcome.selected_indices) == 2

    def test_reproducible_with_seed(self):
        a = EMClusterSampler(epsilon=1.0, n_min=4, rng=9).sample([0.1, 0.4, 0.5], 2)
        b = EMClusterSampler(epsilon=1.0, n_min=4, rng=9).sample([0.1, 0.4, 0.5], 2)
        assert a.selected_indices == b.selected_indices

    def test_invalid_sample_size_rejected(self):
        sampler = EMClusterSampler(epsilon=1.0, n_min=4, rng=0)
        with pytest.raises(SamplingError):
            sampler.sample([0.5, 0.5], 0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(SamplingError):
            EMClusterSampler(epsilon=0.0, n_min=4)


class TestBaselineSamplers:
    @pytest.fixture
    def clusters(self, small_table):
        return ClusteredTable.from_table(small_table, cluster_size=100).clusters

    @pytest.fixture
    def query(self):
        return RangeQuery.count({"age": (10, 80)})

    def test_uniform_row_sampler_reasonable(self, clusters, query, small_table):
        exact = sum(
            1
            for value in small_table.column("age")
            if 10 <= value <= 80
        )
        estimates = [
            UniformRowSampler(sampling_rate=0.5, rng=seed).estimate(clusters, query)
            for seed in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.1)

    def test_uniform_cluster_sampler_reasonable(self, clusters, query, small_table):
        exact = int(((small_table.column("age") >= 10) & (small_table.column("age") <= 80)).sum())
        estimates = [
            UniformClusterSampler(sampling_rate=0.5, rng=seed).estimate(clusters, query)
            for seed in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.15)

    def test_exact_pps_sampler_reasonable(self, clusters, query, small_table):
        exact = int(((small_table.column("age") >= 10) & (small_table.column("age") <= 80)).sum())
        estimates = [
            ExactPPSSampler(sampling_rate=0.3, rng=seed).estimate(clusters, query)
            for seed in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.15)

    def test_empty_cluster_list_returns_zero(self, query):
        assert UniformRowSampler(sampling_rate=0.5, rng=0).estimate([], query) == 0.0
        assert UniformClusterSampler(sampling_rate=0.5, rng=0).estimate([], query) == 0.0
        assert ExactPPSSampler(sampling_rate=0.5, rng=0).estimate([], query) == 0.0

    @pytest.mark.parametrize("sampler_cls", [UniformRowSampler, UniformClusterSampler, ExactPPSSampler])
    def test_invalid_rate_rejected(self, sampler_cls):
        with pytest.raises(SamplingError):
            sampler_cls(sampling_rate=0.0)
