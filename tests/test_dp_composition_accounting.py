"""Tests for composition theorems, smooth sensitivity, and the accountant."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.accountant import PrivacyAccountant
from repro.dp.composition import (
    PrivacySpend,
    advanced_composition,
    advanced_composition_epsilon_per_query,
    parallel_composition,
    sequential_composition,
    sequential_epsilon_per_query,
)
from repro.dp.sensitivity import (
    local_sensitivity_at_distance,
    smooth_sensitivity,
    smooth_sensitivity_beta,
    smooth_sensitivity_from_series,
    smooth_sensitivity_max_k,
)
from repro.errors import BudgetExhaustedError, PrivacyError, SensitivityError


class TestPrivacySpend:
    def test_addition(self):
        total = PrivacySpend(0.5, 1e-4) + PrivacySpend(0.25, 1e-4)
        assert total.epsilon == pytest.approx(0.75)
        assert total.delta == pytest.approx(2e-4)

    def test_is_within(self):
        assert PrivacySpend(0.5, 0).is_within(PrivacySpend(1.0, 0.1))
        assert not PrivacySpend(1.5, 0).is_within(PrivacySpend(1.0, 0.1))

    def test_rejects_negative_epsilon(self):
        with pytest.raises(PrivacyError):
            PrivacySpend(-0.1, 0)


class TestComposition:
    def test_sequential_adds_budgets(self):
        spend = sequential_composition([(0.1, 0.0), (0.2, 1e-4), (0.3, 1e-4)])
        assert spend.epsilon == pytest.approx(0.6)
        assert spend.delta == pytest.approx(2e-4)

    def test_parallel_takes_maximum(self):
        spend = parallel_composition([(0.1, 1e-5), (0.5, 1e-6), (0.3, 1e-4)])
        assert spend.epsilon == pytest.approx(0.5)
        assert spend.delta == pytest.approx(1e-4)

    def test_parallel_of_identical_spends_equals_one_spend(self):
        spend = parallel_composition([(0.4, 1e-5)] * 4)
        assert spend.epsilon == pytest.approx(0.4)

    def test_empty_compositions_are_zero(self):
        assert sequential_composition([]).epsilon == 0
        assert parallel_composition([]).epsilon == 0

    def test_advanced_composition_total(self):
        total = advanced_composition(0.1, 0.0, n_queries=100, delta_prime=1e-6)
        expected = 0.1 * math.sqrt(2 * 100 * math.log(1e6)) + 100 * 0.1 * (math.exp(0.1) - 1)
        assert total.epsilon == pytest.approx(expected)

    def test_advanced_per_query_exceeds_sequential_for_many_queries(self):
        n = 2000
        sequential = sequential_epsilon_per_query(10.0, n)
        advanced = advanced_composition_epsilon_per_query(10.0, n, 1e-6)
        assert advanced > sequential

    def test_sequential_per_query(self):
        assert sequential_epsilon_per_query(10.0, 4) == pytest.approx(2.5)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_advanced_per_query_is_positive(self, n):
        assert advanced_composition_epsilon_per_query(1.0, n, 1e-6) > 0


class TestSmoothSensitivity:
    def test_beta_formula(self):
        assert smooth_sensitivity_beta(0.8, 1e-3) == pytest.approx(
            0.8 / (2 * math.log(2 / 1e-3))
        )

    def test_max_k_bound_is_finite_and_positive(self):
        beta = smooth_sensitivity_beta(0.8, 1e-3)
        assert smooth_sensitivity_max_k(beta) >= 1

    def test_linear_growth_maximum_location(self):
        # For LS^k = k * c the product e^{-beta k} * k * c peaks near k = 1/beta.
        result = smooth_sensitivity(lambda k: k * 2.0, epsilon=0.8, delta=1e-3)
        beta = smooth_sensitivity_beta(0.8, 1e-3)
        assert abs(result.argmax_k - round(1 / beta)) <= 1
        assert result.value > 0

    def test_constant_local_sensitivity(self):
        result = smooth_sensitivity(
            lambda k: local_sensitivity_at_distance(1.0, k, growth="constant"),
            epsilon=1.0,
            delta=1e-3,
        )
        # Constant LS is maximised at the smallest positive distance.
        assert result.argmax_k == 1
        assert result.value == pytest.approx(math.exp(-smooth_sensitivity_beta(1.0, 1e-3)))

    def test_from_series(self):
        result = smooth_sensitivity_from_series([0.0, 1.0, 5.0], epsilon=1.0, delta=1e-3)
        assert result.max_k == 2
        assert result.value > 0

    def test_smooth_upper_bounds_local_sensitivity_at_zero(self):
        # S_LS >= e^{-beta*1} * LS^1 always.
        result = smooth_sensitivity(lambda k: 3.0 * k, epsilon=0.5, delta=1e-3)
        beta = smooth_sensitivity_beta(0.5, 1e-3)
        assert result.value >= math.exp(-beta) * 3.0 - 1e-12

    def test_rejects_negative_local_sensitivity(self):
        with pytest.raises(SensitivityError):
            smooth_sensitivity(lambda k: -1.0, epsilon=1.0, delta=1e-3)

    def test_rejects_empty_series(self):
        with pytest.raises(SensitivityError):
            smooth_sensitivity_from_series([], epsilon=1.0, delta=1e-3)

    @given(
        st.floats(min_value=0.01, max_value=5.0),
        st.floats(min_value=1e-6, max_value=0.1),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_smooth_value_scales_linearly_with_slope(self, epsilon, delta, slope):
        base = smooth_sensitivity(lambda k: k, epsilon=epsilon, delta=delta)
        scaled = smooth_sensitivity(lambda k: slope * k, epsilon=epsilon, delta=delta)
        assert scaled.value == pytest.approx(slope * base.value, rel=1e-9, abs=1e-12)


class TestPrivacyAccountant:
    def test_charge_and_remaining(self):
        accountant = PrivacyAccountant(total_epsilon=2.0, total_delta=1e-2)
        accountant.charge(0.5, 1e-3, label="q1")
        accountant.charge(0.5, 1e-3, label="q2")
        assert accountant.remaining_epsilon == pytest.approx(1.0)
        assert accountant.remaining_delta == pytest.approx(8e-3)
        assert len(accountant) == 2

    def test_overdraw_raises_and_does_not_record(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge(0.9)
        with pytest.raises(BudgetExhaustedError):
            accountant.charge(0.2)
        assert len(accountant) == 1
        assert accountant.remaining_epsilon == pytest.approx(0.1)

    def test_can_afford(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        assert accountant.can_afford(1.0)
        assert not accountant.can_afford(1.1)

    def test_unlimited_never_refuses(self):
        accountant = PrivacyAccountant.unlimited()
        for _ in range(100):
            accountant.charge(10.0)
        assert accountant.remaining_epsilon == float("inf")

    def test_reset_clears_ledger(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge(0.5)
        accountant.reset()
        assert len(accountant) == 0
        assert accountant.remaining_epsilon == pytest.approx(1.0)

    def test_ledger_records_labels(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge(0.25, label="alpha")
        entries = list(accountant.ledger())
        assert entries[0].label == "alpha"
        assert entries[0].spend.epsilon == pytest.approx(0.25)
