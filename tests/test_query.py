"""Tests for the query model, parser, and exact executor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError, QueryParseError
from repro.query.executor import (
    ExactExecutor,
    execute_on_cluster,
    execute_on_clusters,
    execute_on_table,
    selection_mask,
)
from repro.query.model import Aggregation, Interval, RangeQuery
from repro.query.parser import parse_query
from repro.storage.clustered_table import ClusteredTable
from repro.storage.metadata import build_metadata
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table
from repro.storage.tensor import build_count_tensor


class TestInterval:
    def test_width_and_contains(self):
        interval = Interval(3, 7)
        assert interval.width == 5
        assert interval.contains(3) and interval.contains(7)
        assert not interval.contains(8)

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(5, 10))
        assert not Interval(0, 4).intersects(Interval(5, 10))

    def test_rejects_inverted(self):
        with pytest.raises(QueryError):
            Interval(5, 4)


class TestRangeQuery:
    def test_constructors(self):
        count = RangeQuery.count({"age": (20, 40)})
        total = RangeQuery.sum({"age": Interval(20, 40)})
        assert count.aggregation is Aggregation.COUNT
        assert total.aggregation is Aggregation.SUM
        assert count.ranges["age"] == Interval(20, 40)

    def test_requires_at_least_one_range(self):
        with pytest.raises(QueryError):
            RangeQuery(Aggregation.COUNT, {})

    def test_validate_against_schema(self, small_schema):
        query = RangeQuery.count({"age": (20, 40)})
        query.validate_against(small_schema)
        with pytest.raises(QueryError):
            RangeQuery.count({"salary": (0, 1)}).validate_against(small_schema)

    def test_disjoint_range_rejected(self, small_schema):
        with pytest.raises(QueryError):
            RangeQuery.count({"age": (200, 300)}).validate_against(small_schema)

    def test_clipping(self, small_schema):
        clipped = RangeQuery.count({"age": (-10, 500)}).clipped_to(small_schema)
        assert clipped.ranges["age"] == Interval(0, 99)

    def test_to_sql_roundtrip(self):
        query = RangeQuery.count({"age": (20, 40), "dept": (1, 3)})
        parsed, table = parse_query(query.to_sql("people"))
        assert table == "people"
        assert parsed.aggregation is Aggregation.COUNT
        assert parsed.ranges == query.ranges


class TestParser:
    def test_count_star(self):
        query, table = parse_query(
            "SELECT COUNT(*) FROM adult WHERE 20 <= age AND age <= 40"
        )
        assert query.aggregation is Aggregation.COUNT
        assert table == "adult"
        assert query.ranges["age"] == Interval(20, 40)

    def test_sum_measure(self):
        query, _ = parse_query("SELECT SUM(measure) FROM t WHERE hours >= 5 AND hours <= 9")
        assert query.aggregation is Aggregation.SUM
        assert query.ranges["hours"] == Interval(5, 9)

    def test_between(self):
        query, _ = parse_query("SELECT COUNT(*) FROM t WHERE age BETWEEN 30 AND 35")
        assert query.ranges["age"] == Interval(30, 35)

    def test_chained_comparison(self):
        query, _ = parse_query("SELECT COUNT(*) FROM t WHERE 10 <= dept <= 20")
        assert query.ranges["dept"] == Interval(10, 20)

    def test_equality_predicate(self):
        query, _ = parse_query("SELECT COUNT(*) FROM t WHERE age = 33")
        assert query.ranges["age"] == Interval(33, 33)

    def test_strict_inequalities(self):
        query, _ = parse_query("SELECT COUNT(*) FROM t WHERE age > 20 AND age < 30")
        assert query.ranges["age"] == Interval(21, 29)

    def test_multiple_dimensions(self):
        query, _ = parse_query(
            "SELECT COUNT(*) FROM t WHERE 1 <= a AND a <= 2 AND b BETWEEN 3 AND 4"
        )
        assert set(query.dimensions) == {"a", "b"}

    def test_half_open_predicate_gets_sentinel_bound(self):
        query, _ = parse_query("SELECT COUNT(*) FROM t WHERE age >= 18")
        assert query.ranges["age"].low == 18
        assert query.ranges["age"].high > 10**9

    def test_contradictory_bounds_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT COUNT(*) FROM t WHERE age >= 50 AND age <= 10")

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("DELETE FROM t")

    def test_missing_predicates_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT COUNT(*) FROM t WHERE ")

    def test_comparing_two_constants_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT COUNT(*) FROM t WHERE 1 <= 2")


class TestExecutor:
    def test_count_matches_numpy(self, small_table):
        query = RangeQuery.count({"age": (20, 40), "dept": (0, 4)})
        age = small_table.column("age")
        dept = small_table.column("dept")
        expected = int((((age >= 20) & (age <= 40)) & (dept <= 4)).sum())
        assert execute_on_table(small_table, query) == expected

    def test_sum_on_tensor_equals_count_on_raw(self, small_table):
        tensor = build_count_tensor(small_table, ["age", "dept"])
        query_ranges = {"age": (10, 60), "dept": (1, 7)}
        raw_count = execute_on_table(small_table, RangeQuery.count(query_ranges))
        tensor_sum = execute_on_table(tensor, RangeQuery.sum(query_ranges))
        tensor_count = execute_on_table(tensor, RangeQuery.count(query_ranges))
        assert raw_count == tensor_sum == tensor_count

    def test_selection_mask_size(self, small_table):
        mask = selection_mask(small_table, RangeQuery.count({"age": (0, 99)}))
        assert mask.shape == (small_table.num_rows,)
        assert mask.all()

    def test_cluster_sum_equals_table(self, clustered, small_table):
        query = RangeQuery.count({"hours": (0, 10)})
        total = execute_on_clusters(clustered.clusters, query)
        assert total == execute_on_table(small_table, query)
        assert total == sum(execute_on_cluster(c, query) for c in clustered)

    def test_executor_with_pruning_matches_full_scan(self, clustered, metadata, small_table):
        executor_pruned = ExactExecutor(clustered, metadata)
        executor_full = ExactExecutor(clustered, None)
        query = RangeQuery.count({"age": (30, 35), "hours": (0, 20)})
        pruned = executor_pruned.execute(query)
        full = executor_full.execute(query)
        assert pruned.value == full.value == execute_on_table(small_table, query)
        assert pruned.clusters_scanned <= full.clusters_scanned
        assert pruned.rows_scanned <= full.rows_scanned

    def test_empty_result(self, small_table):
        # dept domain is [0, 9]; an interval inside the domain that matches no rows.
        table = small_table.select(small_table.column("dept") != 9)
        assert execute_on_table(table, RangeQuery.count({"dept": (9, 9)})) == 0

    @given(
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=49),
        st.integers(min_value=0, max_value=49),
    )
    @settings(max_examples=40, deadline=None)
    def test_executor_equals_bruteforce_property(self, a1, a2, h1, h2):
        rng = np.random.default_rng(7)
        schema = Schema((Dimension("age", 0, 99), Dimension("hours", 0, 49)))
        table = Table(
            schema,
            {"age": rng.integers(0, 100, 500), "hours": rng.integers(0, 50, 500)},
        )
        age_low, age_high = min(a1, a2), max(a1, a2)
        hour_low, hour_high = min(h1, h2), max(h1, h2)
        query = RangeQuery.count({"age": (age_low, age_high), "hours": (hour_low, hour_high)})
        age = table.column("age")
        hours = table.column("hours")
        expected = int(
            (
                (age >= age_low)
                & (age <= age_high)
                & (hours >= hour_low)
                & (hours <= hour_high)
            ).sum()
        )
        assert execute_on_table(table, query) == expected
        clustered = ClusteredTable.from_table(table, cluster_size=64)
        executor = ExactExecutor(clustered, build_metadata(clustered))
        assert executor.execute(query).value == expected
