"""End-to-end semantics of the cross-query reuse layer.

The contracts under test, straight from the design:

* a cache **hit** re-serves the original release byte-for-byte (summary
  scalars, estimate message, provider report);
* a **miss** charges the end user's budget exactly once per fresh release;
* with the cache **disabled** the engine is bit-identical to the plain
  batched path under the same seed — and a **cold** enabled cache is too,
  on a duplicate-free workload;
* a **layout change** (re-clustering) invalidates every cached release;
* a TTL expires entries by protocol round; SMC answers are never cached;
  budget-aware admission lets a fully cached workload run on an exhausted
  budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    ParallelismConfig,
    PrivacyConfig,
    SamplingConfig,
    SystemConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.errors import BudgetExhaustedError, ProtocolError
from repro.federation.messages import QueryRequest
from repro.query.model import RangeQuery
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


def _table(num_rows: int = 6000) -> Table:
    rng = np.random.default_rng(41)
    schema = Schema(
        (
            Dimension("age", 0, 99),
            Dimension("hours", 0, 49),
            Dimension("dept", 0, 9),
        )
    )
    return Table(
        schema,
        {
            "age": rng.integers(0, 100, num_rows),
            "hours": np.minimum(49, rng.poisson(12, num_rows)),
            "dept": rng.integers(0, 10, num_rows),
        },
    )


def _system(
    cache: CacheConfig | None = None,
    *,
    total_epsilon: float | None = None,
    use_smc: bool = False,
    parallel: bool = False,
) -> FederatedAQPSystem:
    config = SystemConfig(
        cluster_size=150,
        num_providers=4,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        parallelism=ParallelismConfig(enabled=parallel),
        cache=cache or CacheConfig(),
        use_smc_for_result=use_smc,
        seed=97,
    )
    return FederatedAQPSystem.from_table(
        _table(), config=config, total_epsilon=total_epsilon
    )


ENABLED = CacheConfig(enabled=True)

WORKLOAD = [
    RangeQuery.count({"age": (10, 80)}),
    RangeQuery.count({"age": (0, 35), "dept": (2, 6)}),
    RangeQuery.sum({"hours": (5, 25)}),
    RangeQuery.count({"age": (0, 2)}),  # exact (N^Q < N_min) on sorted layouts
    RangeQuery.count({"hours": (0, 40), "age": (20, 90), "dept": (0, 9)}),
]

QUERY = WORKLOAD[0]


def _assert_equivalent(expected_results, actual_results):
    assert len(expected_results) == len(actual_results)
    for expected, actual in zip(expected_results, actual_results):
        assert actual.value == expected.value
        assert actual.noise_injected == expected.noise_injected
        assert actual.provider_reports == expected.provider_reports
        assert actual.epsilon_spent == expected.epsilon_spent
        assert actual.delta_spent == expected.delta_spent


class TestDisabledCacheEquivalence:
    def test_explicit_off_matches_default_config(self):
        default = _system().execute_batch(WORKLOAD, compute_exact=False)
        explicit = _system(CacheConfig(enabled=False)).execute_batch(
            WORKLOAD, compute_exact=False
        )
        _assert_equivalent(default.results, explicit.results)

    def test_cold_enabled_cache_matches_disabled_on_distinct_queries(self):
        # A duplicate-free workload on a cold cache misses everywhere, and a
        # miss runs exactly the plain code path: same draws, same results.
        disabled = _system().execute_batch(WORKLOAD, compute_exact=False)
        enabled = _system(ENABLED).execute_batch(WORKLOAD, compute_exact=False)
        _assert_equivalent(disabled.results, enabled.results)
        assert enabled.answer_cache_hits == 0
        assert enabled.summary_cache_hits == 0


class TestHitServesOriginalRelease:
    def test_summary_hit_is_byte_identical(self):
        provider = _system(ENABLED).providers[0]
        request = QueryRequest(query_id=1, query=QUERY, sampling_rate=0.2)
        repeat = QueryRequest(query_id=2, query=QUERY, sampling_rate=0.2)
        flags: list[bool] = []
        first = provider.prepare_summary_batch([request], 0.1, reuse_out=flags)[0]
        second = provider.prepare_summary_batch([repeat], 0.1, reuse_out=flags)[0]
        provider.forget_batch([1, 2])
        assert flags == [False, True]
        assert second.noisy_cluster_count == first.noisy_cluster_count
        assert second.noisy_avg_proportion == first.noisy_avg_proportion

    def test_repeated_query_returns_identical_answer(self):
        system = _system(ENABLED)
        first = system.execute(QUERY, compute_exact=False)
        second = system.execute(QUERY, compute_exact=False)
        assert second.value == first.value
        assert second.provider_reports == first.provider_reports
        assert second.noise_injected == first.noise_injected
        assert second.trace.summary_cache_hits == system.num_providers
        assert second.trace.answer_cache_hits == system.num_providers
        assert second.epsilon_spent == 0.0
        assert second.delta_spent == 0.0

    def test_intra_batch_duplicates_are_reuse(self):
        system = _system(ENABLED)
        batch = system.execute_batch([QUERY, QUERY, QUERY], compute_exact=False)
        values = set(batch.values)
        assert len(values) == 1
        assert [result.epsilon_spent for result in batch.results] == [1.0, 0.0, 0.0]
        assert batch.fully_cached_queries == 2

    def test_sessions_are_released_on_cache_hits(self):
        system = _system(ENABLED)
        system.execute(QUERY, compute_exact=False)
        system.execute(QUERY, compute_exact=False)
        assert all(provider.num_open_sessions == 0 for provider in system.providers)


class TestBudgetCharging:
    def test_miss_charges_exactly_once(self):
        system = _system(ENABLED, total_epsilon=3.0)
        for _ in range(3):
            system.execute(QUERY, compute_exact=False)
        remaining_epsilon, _ = system.remaining_budget()
        assert remaining_epsilon == pytest.approx(2.0)
        # One ledger entry per answered query, zero-cost entries included.
        assert len(system.end_user_budget.accountant) == 3

    def test_different_epsilon_is_a_fresh_release(self):
        system = _system(ENABLED, total_epsilon=10.0)
        system.execute(QUERY, compute_exact=False)
        result = system.execute(QUERY, epsilon=0.5, compute_exact=False)
        assert result.trace.summary_cache_hits == 0
        assert result.trace.answer_cache_hits == 0
        assert result.epsilon_spent == pytest.approx(0.5)

    def test_fully_cached_workload_runs_on_exhausted_budget(self):
        system = _system(ENABLED, total_epsilon=1.5)
        system.execute(QUERY, compute_exact=False)  # spends 1.0 of 1.5
        # A fresh query no longer fits ...
        with pytest.raises(BudgetExhaustedError):
            system.execute(WORKLOAD[1], compute_exact=False)
        # ... but the cached one is admitted (planner bounds it at zero) and
        # charged nothing.
        result = system.execute(QUERY, compute_exact=False)
        assert result.epsilon_spent == 0.0
        assert system.remaining_budget()[0] == pytest.approx(0.5)

    def test_cache_off_budget_behaviour_unchanged(self):
        system = _system(total_epsilon=1.5)
        system.execute(QUERY, compute_exact=False)
        with pytest.raises(BudgetExhaustedError):
            system.execute(QUERY, compute_exact=False)

    def test_batch_charges_are_atomic(self):
        # If a batch's actual charges overdraw (the pathological corner where
        # LRU eviction inside an admitted batch beats the planner's preview),
        # nothing may be debited: all-or-nothing at the accountant level.
        from repro.dp.accountant import PrivacyAccountant

        accountant = PrivacyAccountant(total_epsilon=1.0, total_delta=1.0)
        with pytest.raises(BudgetExhaustedError):
            accountant.charge_many([(0.6, 0.0, "a"), (0.6, 0.0, "b")])
        assert len(accountant) == 0
        assert accountant.remaining_epsilon == 1.0
        accountant.charge_many([(0.5, 0.0, "a"), (0.5, 0.0, "b")])
        assert len(accountant) == 2

    def test_post_run_charges_record_even_on_overdraw(self):
        # Post-run bookkeeping (enforce=False) must record spends that
        # already happened — an overdraft empties the wallet instead of
        # hiding real privacy loss.
        from repro.dp.accountant import PrivacyAccountant

        accountant = PrivacyAccountant(total_epsilon=1.0, total_delta=1.0)
        accountant.charge_many(
            [(0.8, 0.0, "a"), (0.8, 0.0, "b")], enforce=False
        )
        assert len(accountant) == 2
        assert accountant.spent.epsilon == pytest.approx(1.6)
        assert accountant.remaining_epsilon == 0.0
        assert not accountant.can_afford(0.1)

    def test_plan_reuse_previews_the_split(self):
        system = _system(ENABLED)
        from repro.core.accounting import split_query_budget

        budget = split_query_budget(system.config.privacy)
        cold = system.aggregator.plan_reuse(WORKLOAD, budget)
        assert cold.num_fully_cached == 0
        assert cold.upper_bound_epsilon == pytest.approx(len(WORKLOAD) * 1.0)
        system.execute_batch(WORKLOAD, compute_exact=False)
        warm = system.aggregator.plan_reuse(WORKLOAD, budget)
        assert warm.num_fully_cached == len(WORKLOAD)
        assert warm.upper_bound_epsilon == 0.0
        assert warm.must_release() == ()


class TestInvalidation:
    def test_layout_change_evicts_cached_releases(self):
        system = _system(ENABLED)
        system.execute(QUERY, compute_exact=False)
        for provider in system.providers:
            provider.rebuild_layout()
        result = system.execute(QUERY, compute_exact=False)
        assert result.trace.summary_cache_hits == 0
        assert result.trace.answer_cache_hits == 0
        assert result.epsilon_spent == pytest.approx(1.0)
        stats = system.cache_stats()
        assert stats.evicted_stale > 0

    def test_rebuild_with_open_sessions_is_refused(self):
        system = _system(ENABLED)
        provider = system.providers[0]
        request = QueryRequest(query_id=7, query=QUERY, sampling_rate=0.2)
        provider.prepare_summary_batch([request], 0.1)
        with pytest.raises(ProtocolError):
            provider.rebuild_layout()
        provider.forget(7)
        provider.rebuild_layout()
        assert provider.layout_epoch == 1

    def test_ttl_expires_cached_releases(self):
        ttl = CacheConfig(enabled=True, ttl_rounds=1)
        system = _system(ttl)
        system.execute(QUERY, compute_exact=False)
        result = system.execute(QUERY, compute_exact=False)
        assert result.trace.answer_cache_hits == 0
        assert result.epsilon_spent == pytest.approx(1.0)

    def test_invalidate_caches_drops_everything(self):
        system = _system(ENABLED)
        system.execute(QUERY, compute_exact=False)
        system.invalidate_caches()
        result = system.execute(QUERY, compute_exact=False)
        assert result.trace.answer_cache_hits == 0


class TestModes:
    def test_smc_answers_are_never_cached(self):
        system = _system(ENABLED, use_smc=True)
        system.execute(QUERY, compute_exact=False)
        result = system.execute(QUERY, compute_exact=False)
        assert result.trace.summary_cache_hits == system.num_providers
        assert result.trace.answer_cache_hits == 0
        # Only the summary phase was reused: eps_S + eps_E still spent.
        assert result.epsilon_spent == pytest.approx(0.9)

    def test_parallel_fanout_matches_serial_with_cache(self):
        serial = _system(ENABLED)
        parallel = _system(ENABLED, parallel=True)
        workload = WORKLOAD + [QUERY]
        first_serial = serial.execute_batch(workload, compute_exact=False)
        first_parallel = parallel.execute_batch(workload, compute_exact=False)
        _assert_equivalent(first_serial.results, first_parallel.results)
        warm_serial = serial.execute_batch(workload, compute_exact=False)
        warm_parallel = parallel.execute_batch(workload, compute_exact=False)
        _assert_equivalent(warm_serial.results, warm_parallel.results)
        assert warm_serial.fully_cached_queries == len(workload)
