"""Tests for providers, the aggregator, partitioning, network and SMC."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig, SMCConfig, SystemConfig
from repro.core.accounting import QueryBudget
from repro.errors import FederationError, ProtocolError, SMCError
from repro.federation.aggregator import Aggregator
from repro.federation.messages import AllocationMessage, QueryRequest
from repro.federation.network import SimulatedNetwork
from repro.federation.partitioning import (
    partition_by_dimension,
    partition_equal,
    partition_skewed,
)
from repro.federation.provider import DataProvider
from repro.federation.smc import SMCSimulator
from repro.query.model import RangeQuery


class TestPartitioning:
    def test_equal_partition_preserves_rows(self, small_table):
        parts = partition_equal(small_table, 4, rng=0)
        assert len(parts) == 4
        assert sum(part.num_rows for part in parts) == small_table.num_rows
        sizes = [part.num_rows for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_skewed_partition_follows_weights(self, small_table):
        parts = partition_skewed(small_table, [3, 1], rng=0)
        assert len(parts) == 2
        assert sum(part.num_rows for part in parts) == small_table.num_rows
        assert parts[0].num_rows > 2 * parts[1].num_rows

    def test_partition_by_dimension_is_range_disjoint(self, small_table):
        parts = partition_by_dimension(small_table, "age", 4)
        maxima = [int(part.column("age").max()) for part in parts]
        minima = [int(part.column("age").min()) for part in parts]
        for i in range(3):
            assert maxima[i] <= minima[i + 1]

    def test_invalid_inputs(self, small_table):
        with pytest.raises(FederationError):
            partition_equal(small_table, 0)
        with pytest.raises(FederationError):
            partition_skewed(small_table, [])
        with pytest.raises(FederationError):
            partition_skewed(small_table, [0, 0])


class TestSimulatedNetwork:
    def test_costs_accumulate(self):
        network = SimulatedNetwork(NetworkConfig(latency_seconds=0.001, bandwidth_bytes_per_second=1e6))
        network.send(1000)
        network.send(1000, copies=3)
        assert network.stats.messages == 4
        assert network.stats.bytes_sent == 4000
        assert network.stats.simulated_seconds == pytest.approx(4 * (0.001 + 0.001))

    def test_snapshot_and_reset(self):
        network = SimulatedNetwork()
        network.send(10)
        snapshot = network.snapshot()
        assert snapshot.messages == 1
        stats = network.reset()
        assert stats.messages == 1
        assert network.stats.messages == 0

    def test_invalid_send(self):
        network = SimulatedNetwork()
        with pytest.raises(FederationError):
            network.send(-1)
        with pytest.raises(FederationError):
            network.send(1, copies=0)


class TestSMCSimulator:
    def test_share_reconstruct_roundtrip(self):
        smc = SMCSimulator(num_parties=4, rng=0)
        for value in (0.0, 1.5, -273.25, 123456.789):
            shares = smc.share(value)
            assert shares.num_parties == 4
            assert smc.reconstruct(shares) == pytest.approx(value, abs=1e-5)

    def test_individual_shares_do_not_reveal_value(self):
        smc = SMCSimulator(num_parties=3, rng=1)
        shares = smc.share(42.0)
        # No single share equals the encoded value (overwhelmingly likely).
        assert all(share != 42 for share in shares.shares)

    def test_secure_sum(self):
        smc = SMCSimulator(num_parties=4, rng=2)
        values = [10.5, -2.25, 7.0]
        shared = [smc.share(value) for value in values]
        assert smc.reconstruct(smc.secure_sum(shared)) == pytest.approx(sum(values), abs=1e-5)

    def test_secure_max(self):
        smc = SMCSimulator(num_parties=4, rng=3)
        values = [3.5, 9.25, 1.0]
        shared = [smc.share(value) for value in values]
        assert smc.secure_max(shared) == pytest.approx(9.25, abs=1e-5)

    def test_row_sharing_much_more_expensive_than_result_sharing(self):
        smc = SMCSimulator(num_parties=4, rng=4)
        row_cost = smc.row_sharing_cost(num_rows=10_000, num_columns=6)
        result_cost = smc.result_sharing_cost(num_values=4)
        assert row_cost > 100 * result_cost

    def test_cost_counters_accumulate(self):
        smc = SMCSimulator(num_parties=2, rng=5)
        smc.share(1.0)
        smc.result_sharing_cost(3)
        assert smc.cost.operations == 2
        assert smc.cost.simulated_seconds > 0
        assert smc.cost.bytes_exchanged > 0

    def test_overflow_rejected(self):
        smc = SMCSimulator(num_parties=2, rng=6, config=SMCConfig(fixed_point_fraction_bits=40))
        with pytest.raises(SMCError):
            smc.share(1e18)

    def test_empty_operations_rejected(self):
        smc = SMCSimulator(num_parties=2, rng=7)
        with pytest.raises(SMCError):
            smc.secure_sum([])
        with pytest.raises(SMCError):
            smc.secure_max([])

    def test_requires_two_parties(self):
        with pytest.raises(SMCError):
            SMCSimulator(num_parties=1)

    @given(st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, value):
        smc = SMCSimulator(num_parties=3, rng=8)
        assert smc.reconstruct(smc.share(value)) == pytest.approx(value, abs=1e-4)


class TestDataProvider:
    @pytest.fixture
    def provider(self, small_table):
        return DataProvider(
            provider_id="p0", table=small_table, cluster_size=100, n_min=3, rng=0
        )

    @pytest.fixture
    def budget(self):
        return QueryBudget(0.1, 0.1, 0.8, 1e-3)

    def test_offline_properties(self, provider, small_table):
        assert provider.num_rows == small_table.num_rows
        assert provider.num_clusters == 20
        assert provider.metadata_size_bytes() > 0

    def test_summary_then_answer_flow(self, provider, budget):
        query = RangeQuery.count({"age": (10, 80)})
        request = QueryRequest(query_id=1, query=query, sampling_rate=0.3)
        summary = provider.prepare_summary(request, epsilon_allocation=budget.epsilon_allocation)
        assert summary.provider_id == "p0"
        allocation = AllocationMessage(query_id=1, provider_id="p0", sample_size=5)
        answer = provider.answer(allocation, budget)
        assert answer.report.approximated
        assert answer.report.sampled_clusters <= 5
        assert answer.report.rows_scanned <= provider.num_rows
        assert np.isfinite(answer.message.value)

    def test_exact_path_when_few_covering_clusters(self, small_table, budget):
        provider = DataProvider(
            provider_id="p1",
            table=small_table,
            cluster_size=100,
            n_min=3,
            clustering_policy="sorted",
            sort_by="age",
            rng=0,
        )
        # A very narrow range on the sort dimension covers few clusters.
        query = RangeQuery.count({"age": (0, 1)})
        request = QueryRequest(query_id=7, query=query, sampling_rate=0.3)
        provider.prepare_summary(request, epsilon_allocation=0.1)
        answer = provider.answer(
            AllocationMessage(query_id=7, provider_id="p1", sample_size=2), budget
        )
        assert not answer.report.approximated
        assert answer.report.exact_local_answer == provider.exact_answer(query).value

    def test_answer_without_summary_raises(self, provider, budget):
        with pytest.raises(ProtocolError):
            provider.answer(
                AllocationMessage(query_id=99, provider_id="p0", sample_size=1), budget
            )

    def test_smc_mode_returns_unnoised_estimate(self, provider, budget):
        query = RangeQuery.count({"age": (10, 80)})
        request = QueryRequest(query_id=2, query=query, sampling_rate=0.3)
        provider.prepare_summary(request, epsilon_allocation=0.1)
        answer = provider.answer(
            AllocationMessage(query_id=2, provider_id="p0", sample_size=4),
            budget,
            use_smc=True,
        )
        assert answer.report.local_noise == 0.0
        assert answer.message.value == pytest.approx(answer.report.local_estimate)

    def test_forget_clears_session(self, provider, budget):
        query = RangeQuery.count({"age": (10, 80)})
        request = QueryRequest(query_id=3, query=query, sampling_rate=0.3)
        provider.prepare_summary(request, epsilon_allocation=0.1)
        provider.forget(3)
        with pytest.raises(ProtocolError):
            provider.answer(
                AllocationMessage(query_id=3, provider_id="p0", sample_size=1), budget
            )

    def test_summary_noise_reproducible_with_seed(self, small_table, budget):
        def build():
            provider = DataProvider(
                provider_id="px", table=small_table, cluster_size=100, n_min=3, rng=11
            )
            request = QueryRequest(
                query_id=5, query=RangeQuery.count({"age": (10, 80)}), sampling_rate=0.3
            )
            return provider.prepare_summary(request, epsilon_allocation=0.1)

        first, second = build(), build()
        assert first.noisy_cluster_count == second.noisy_cluster_count
        assert first.noisy_avg_proportion == second.noisy_avg_proportion


class TestAggregator:
    def test_requires_providers(self, small_config):
        with pytest.raises(ProtocolError):
            Aggregator(providers=[], config=small_config)

    def test_execute_query_produces_trace(self, small_table, small_config):
        parts = partition_equal(small_table, 4, rng=0)
        providers = [
            DataProvider(
                provider_id=f"p{i}", table=part, cluster_size=100, n_min=3, rng=i
            )
            for i, part in enumerate(parts)
        ]
        aggregator = Aggregator(providers=providers, config=small_config, rng=0)
        budget = QueryBudget(0.1, 0.1, 0.8, 1e-3)
        answer = aggregator.execute_query(RangeQuery.count({"age": (10, 80)}), budget)
        assert len(answer.provider_reports) == 4
        assert answer.trace.messages_sent > 0
        assert answer.trace.bytes_sent > 0
        assert answer.trace.clusters_available == sum(p.num_clusters for p in providers)
        assert answer.trace.rows_scanned <= answer.trace.rows_available

    def test_invalid_sampling_rate_rejected(self, small_table, small_config):
        parts = partition_equal(small_table, 2, rng=0)
        providers = [
            DataProvider(provider_id=f"p{i}", table=part, cluster_size=100, n_min=3, rng=i)
            for i, part in enumerate(parts)
        ]
        aggregator = Aggregator(providers=providers, config=small_config, rng=0)
        budget = QueryBudget(0.1, 0.1, 0.8, 1e-3)
        with pytest.raises(ProtocolError):
            aggregator.execute_query(
                RangeQuery.count({"age": (0, 10)}), budget, sampling_rate=1.5
            )
