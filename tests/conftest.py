"""Shared fixtures: small deterministic tables, clustered tables, systems."""

from __future__ import annotations

import os

import numpy as np
import pytest

try:
    from hypothesis import settings

    # Derandomised by default so the property suite is reproducible in CI and
    # across machines; a fixed profile name lets the CI job (or a local
    # deep-fuzz run) pick a different one via HYPOTHESIS_PROFILE.
    settings.register_profile("repro", derandomize=True, max_examples=50)
    settings.register_profile("ci", derandomize=True, max_examples=100)
    settings.register_profile("deep", max_examples=1000)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass

from repro.config import PrivacyConfig, SamplingConfig, SystemConfig
from repro.core.system import FederatedAQPSystem
from repro.storage.clustered_table import ClusteredTable
from repro.storage.metadata import build_metadata
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


@pytest.fixture
def small_schema() -> Schema:
    """Three-dimension schema used across storage/query tests."""
    return Schema(
        (
            Dimension("age", 0, 99),
            Dimension("hours", 0, 49),
            Dimension("dept", 0, 9),
        )
    )


@pytest.fixture
def small_table(small_schema) -> Table:
    """A deterministic 2 000-row table with skew on every dimension."""
    rng = np.random.default_rng(123)
    n = 2000
    return Table(
        small_schema,
        {
            "age": rng.integers(0, 100, n),
            "hours": np.minimum(49, rng.poisson(12, n)),
            "dept": rng.integers(0, 10, n),
        },
    )


@pytest.fixture
def clustered(small_table) -> ClusteredTable:
    """The small table split into clusters of 100 rows."""
    return ClusteredTable.from_table(small_table, cluster_size=100)


@pytest.fixture
def metadata(clustered):
    """Algorithm-1 metadata for the clustered fixture."""
    return build_metadata(clustered)


@pytest.fixture
def small_config() -> SystemConfig:
    """A deterministic 4-provider configuration for protocol tests."""
    return SystemConfig(
        cluster_size=100,
        num_providers=4,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=7,
    )


@pytest.fixture
def small_system(small_table, small_config) -> FederatedAQPSystem:
    """A ready-to-query 4-provider federation over the small table."""
    return FederatedAQPSystem.from_table(small_table, config=small_config)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Expose each phase's report on the item (``item.rep_call`` etc.).

    The chaos suite's ``chaos_trace`` fixture reads ``rep_call`` during
    teardown to dump fault-injection traces only for *failing* tests.
    """
    outcome = yield
    report = outcome.get_result()
    setattr(item, "rep_" + report.when, report)
