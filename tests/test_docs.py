"""Documentation guards, mirroring the CI docs job locally.

* every intra-repo markdown link must resolve (``tools/check_markdown_links.py``),
* every ``>>>`` example in README and docs/ must run and produce its shown
  output (``python -m doctest`` semantics, default flags).
"""

from __future__ import annotations

import doctest
import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOCTESTED_PAGES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "protocol.md",
    REPO_ROOT / "docs" / "performance.md",
    REPO_ROOT / "docs" / "serving.md",
    REPO_ROOT / "docs" / "ingestion.md",
    REPO_ROOT / "docs" / "robustness.md",
    REPO_ROOT / "docs" / "distribution.md",
    REPO_ROOT / "docs" / "observability.md",
]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_markdown_links", REPO_ROOT / "tools" / "check_markdown_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_markdown_links", module)
    spec.loader.exec_module(module)
    return module


def test_intra_repo_markdown_links_resolve():
    checker = _load_checker()
    broken = checker.check_links(REPO_ROOT)
    assert broken == [], "broken intra-repo markdown links:\n" + "\n".join(broken)


def test_docs_pages_exist():
    for page in DOCTESTED_PAGES:
        assert page.exists(), f"missing documentation page: {page}"


@pytest.mark.parametrize("page", DOCTESTED_PAGES, ids=lambda p: p.name)
def test_doc_code_blocks_run(page):
    # Same semantics as CI's `python -m doctest <page>`: default flags, the
    # file treated as text, examples sharing one namespace per file.
    failures, attempted = doctest.testfile(
        str(page), module_relative=False, verbose=False
    )
    assert attempted > 0, f"{page.name} has no doctested examples"
    assert failures == 0, f"{failures} doctest failure(s) in {page.name}"
