"""Tests for clustered tables and Algorithm-1 metadata."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.cluster import Cluster
from repro.storage.clustered_table import ClusteredTable
from repro.storage.metadata import build_metadata
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


class TestCluster:
    def test_rejects_oversized_cluster(self, small_table):
        with pytest.raises(StorageError):
            Cluster(cluster_id=0, rows=small_table, nominal_size=10)

    def test_properties(self, small_table):
        cluster = Cluster(cluster_id=3, rows=small_table.slice(0, 50), nominal_size=100)
        assert cluster.num_rows == 50
        assert len(cluster) == 50
        assert cluster.total_measure() == 50


class TestClusteredTable:
    def test_split_sizes(self, small_table):
        clustered = ClusteredTable.from_table(small_table, cluster_size=300)
        assert clustered.num_rows == small_table.num_rows
        assert clustered.num_clusters == int(np.ceil(small_table.num_rows / 300))
        assert all(cluster.num_rows <= 300 for cluster in clustered)

    def test_sorted_policy_orders_clusters_by_dimension(self, small_table):
        clustered = ClusteredTable.from_table(
            small_table, cluster_size=200, policy="sorted", sort_by="age"
        )
        maxima = [int(cluster.rows.column("age").max()) for cluster in clustered]
        minima = [int(cluster.rows.column("age").min()) for cluster in clustered]
        # Each cluster's minimum is at least the previous cluster's minimum.
        assert all(minima[i] <= minima[i + 1] or maxima[i] <= maxima[i + 1] for i in range(len(minima) - 1))

    def test_roundtrip_to_table(self, small_table):
        clustered = ClusteredTable.from_table(small_table, cluster_size=128)
        assert clustered.to_table().num_rows == small_table.num_rows
        assert clustered.total_measure() == small_table.total_measure()

    def test_subset_and_lookup(self, clustered):
        subset = clustered.subset([0, 2])
        assert [cluster.cluster_id for cluster in subset] == [0, 2]
        with pytest.raises(StorageError):
            clustered.cluster(9999)

    def test_unknown_policy_rejected(self, small_table):
        with pytest.raises(StorageError):
            ClusteredTable.from_table(small_table, cluster_size=10, policy="hashed")

    def test_empty_table_yields_single_empty_cluster(self, small_schema):
        clustered = ClusteredTable.from_table(Table.empty(small_schema), cluster_size=10)
        assert clustered.num_clusters == 1
        assert clustered.num_rows == 0

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_no_rows_lost_for_any_cluster_size(self, cluster_size):
        rng = np.random.default_rng(cluster_size)
        schema = Schema((Dimension("a", 0, 9),))
        table = Table(schema, {"a": rng.integers(0, 10, 137)})
        clustered = ClusteredTable.from_table(table, cluster_size=cluster_size)
        assert clustered.num_rows == 137


class TestMetadata:
    def test_proportion_at_least_matches_bruteforce(self, clustered, metadata):
        cluster = clustered.clusters[0]
        meta = metadata.cluster(cluster.cluster_id)
        column = cluster.rows.column("age")
        for threshold in (0, 17, 50, 99, 120):
            expected = int((column >= threshold).sum()) / cluster.nominal_size
            assert meta.dimensions["age"].proportion_at_least(threshold) == pytest.approx(expected)

    def test_range_proportion_matches_bruteforce(self, clustered, metadata):
        cluster = clustered.clusters[1]
        meta = metadata.cluster(cluster.cluster_id)
        column = cluster.rows.column("hours")
        low, high = 5, 20
        expected = int(((column >= low) & (column <= high)).sum()) / cluster.nominal_size
        assert meta.dimensions["hours"].proportion_in_range(low, high) == pytest.approx(expected)

    def test_empty_range_proportion_is_zero(self, metadata):
        meta = metadata.cluster(0)
        assert meta.dimensions["age"].proportion_in_range(10, 5) == 0.0

    def test_covering_set_is_sound(self, clustered, metadata):
        """Every cluster containing matching rows must be in C^Q (no false negatives)."""
        ranges = {"age": (20, 40), "dept": (2, 5)}
        covering = set(metadata.covering_cluster_ids(ranges))
        for cluster in clustered:
            age = cluster.rows.column("age")
            dept = cluster.rows.column("dept")
            has_match = bool(
                (((age >= 20) & (age <= 40)) & ((dept >= 2) & (dept <= 5))).any()
            )
            if has_match:
                assert cluster.cluster_id in covering

    def test_dense_and_sparse_proportions_agree(self, clustered):
        dense_store = build_metadata(clustered, dense=True)
        sparse_store = build_metadata(clustered, dense=False)
        ranges = {"age": (10, 60), "hours": (3, 25)}
        ids = sparse_store.covering_cluster_ids(ranges)
        assert ids == dense_store.covering_cluster_ids(ranges)
        np.testing.assert_allclose(
            dense_store.proportions(ids, ranges), sparse_store.proportions(ids, ranges)
        )

    def test_proportions_product_rule(self, metadata):
        """R is the product of the per-dimension range proportions (Equation 1)."""
        meta = metadata.cluster(0)
        ranges = {"age": (0, 50), "dept": (0, 4)}
        expected = meta.dimensions["age"].proportion_in_range(0, 50) * meta.dimensions[
            "dept"
        ].proportion_in_range(0, 4)
        assert meta.proportion_for_ranges(ranges) == pytest.approx(expected)

    def test_unknown_dimension_raises(self, metadata):
        with pytest.raises(StorageError):
            metadata.cluster(0).proportion_for_ranges({"salary": (0, 1)})

    def test_unknown_cluster_raises(self, metadata):
        with pytest.raises(StorageError):
            metadata.cluster(12345)

    def test_size_accounting_positive(self, metadata):
        assert metadata.size_bytes() > 0
        assert metadata.size_bytes_per_cluster() > 0
        assert metadata.num_clusters == len(metadata.global_entries)

    def test_global_entry_overlap(self, metadata):
        entry = metadata.global_entries[0]
        low, high = entry.bounds["age"]
        assert entry.overlaps({"age": (low, high)})
        assert not entry.overlaps({"age": (high + 1, high + 10)})

    def test_empty_cluster_never_overlaps(self, small_schema):
        clustered = ClusteredTable.from_table(Table.empty(small_schema), cluster_size=10)
        store = build_metadata(clustered)
        assert store.covering_cluster_ids({"age": (0, 99)}) == []

    @given(st.integers(min_value=0, max_value=99), st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_proportions_bounded(self, a, b):
        # Build one small deterministic clustered table per run via fixture-free path.
        rng = np.random.default_rng(0)
        schema = Schema((Dimension("x", 0, 99),))
        table = Table(schema, {"x": rng.integers(0, 100, 300)})
        store = build_metadata(ClusteredTable.from_table(table, cluster_size=50))
        low, high = min(a, b), max(a, b)
        ids = store.covering_cluster_ids({"x": (low, high)})
        proportions = store.proportions(ids, {"x": (low, high)})
        assert np.all(proportions >= 0)
        assert np.all(proportions <= 1)
