"""Tests for the configuration dataclasses."""

from __future__ import annotations

import math

import pytest

from repro.config import (
    ExecutionConfig,
    NetworkConfig,
    ParallelismConfig,
    PrivacyConfig,
    SamplingConfig,
    SMCConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestPrivacyConfig:
    def test_default_split_matches_paper(self):
        privacy = PrivacyConfig()
        assert privacy.hp_allocation == pytest.approx(0.1)
        assert privacy.hp_sampling == pytest.approx(0.1)
        assert privacy.hp_estimation == pytest.approx(0.8)

    def test_phase_budgets_sum_to_epsilon(self):
        privacy = PrivacyConfig(epsilon=2.5)
        total = (
            privacy.epsilon_allocation
            + privacy.epsilon_sampling
            + privacy.epsilon_estimation
        )
        assert total == pytest.approx(2.5)

    def test_split_mapping_contains_all_phases(self):
        split = PrivacyConfig(epsilon=1.0).split()
        assert set(split) == {"allocation", "sampling", "estimation"}
        assert sum(split.values()) == pytest.approx(1.0)

    def test_with_epsilon_preserves_split(self):
        privacy = PrivacyConfig(epsilon=1.0).with_epsilon(0.4)
        assert privacy.epsilon == pytest.approx(0.4)
        assert privacy.epsilon_estimation == pytest.approx(0.32)

    def test_rejects_non_positive_epsilon(self):
        with pytest.raises(ConfigurationError):
            PrivacyConfig(epsilon=0.0)

    def test_rejects_delta_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            PrivacyConfig(delta=1.0)

    def test_rejects_split_not_summing_to_one(self):
        with pytest.raises(ConfigurationError):
            PrivacyConfig(hp_allocation=0.5, hp_sampling=0.5, hp_estimation=0.5)


class TestSamplingConfig:
    def test_defaults_are_valid(self):
        sampling = SamplingConfig()
        assert 0 < sampling.sampling_rate < 1
        assert sampling.min_clusters_for_approximation >= 1

    def test_with_rate(self):
        assert SamplingConfig().with_rate(0.33).sampling_rate == pytest.approx(0.33)

    @pytest.mark.parametrize("rate", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_invalid_rate(self, rate):
        with pytest.raises(ConfigurationError):
            SamplingConfig(sampling_rate=rate)

    def test_rejects_zero_threshold(self):
        with pytest.raises(ConfigurationError):
            SamplingConfig(min_clusters_for_approximation=0)


class TestNetworkConfig:
    def test_transfer_cost_includes_latency_and_bandwidth(self):
        network = NetworkConfig(latency_seconds=0.01, bandwidth_bytes_per_second=1000)
        assert network.transfer_cost(500) == pytest.approx(0.01 + 0.5)

    def test_disabled_network_costs_nothing(self):
        network = NetworkConfig(enabled=False)
        assert network.transfer_cost(10**9) == 0.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(latency_seconds=-1.0)


class TestSMCConfig:
    def test_defaults_valid(self):
        smc = SMCConfig()
        assert smc.bytes_per_share > 0
        assert smc.field_bits <= 63

    def test_rejects_fraction_bits_wider_than_field(self):
        with pytest.raises(ConfigurationError):
            SMCConfig(field_bits=16, fixed_point_fraction_bits=20)


class TestParallelismConfig:
    def test_defaults_to_thread_backend(self):
        config = ParallelismConfig()
        assert config.backend == "thread"

    def test_accepts_process_backend(self):
        config = ParallelismConfig(enabled=True, backend="process")
        assert config.backend == "process"

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ParallelismConfig(backend="gpu")


class TestExecutionConfig:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.prune and config.sorted_bisect
        assert config.max_kernel_bytes == 64 * 2**20

    def test_dense_reference(self):
        dense = ExecutionConfig.dense()
        assert not dense.prune and not dense.sorted_bisect
        assert dense.max_kernel_bytes is None

    def test_with_max_kernel_bytes(self):
        config = ExecutionConfig().with_max_kernel_bytes(None)
        assert config.max_kernel_bytes is None
        assert config.prune  # other knobs preserved

    def test_rejects_degenerate_budget(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(max_kernel_bytes=100)


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.num_providers == 4
        assert config.cluster_size >= 1

    def test_with_privacy_and_sampling(self):
        config = SystemConfig()
        updated = config.with_privacy(PrivacyConfig(epsilon=0.5)).with_sampling(
            SamplingConfig(sampling_rate=0.05)
        )
        assert updated.privacy.epsilon == pytest.approx(0.5)
        assert updated.sampling.sampling_rate == pytest.approx(0.05)
        # originals untouched (frozen dataclasses)
        assert config.privacy.epsilon == pytest.approx(1.0)

    def test_rejects_invalid_provider_count(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_providers=0)

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(seed=-1)
