"""Tests for the Laplace, Gaussian and Exponential mechanisms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.mechanisms import (
    ExponentialMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    laplace_noise_scale,
)
from repro.errors import PrivacyError, SamplingError, SensitivityError


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0, rng=0)
        assert mechanism.scale == pytest.approx(4.0)
        assert laplace_noise_scale(2.0, 0.5) == pytest.approx(4.0)

    def test_zero_sensitivity_adds_no_noise(self):
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=0.0, rng=0)
        assert mechanism.release(42.0) == 42.0

    def test_release_is_reproducible_with_seed(self):
        a = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=5).release(10.0)
        b = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=5).release(10.0)
        assert a == b

    def test_noise_distribution_has_expected_scale(self):
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=1)
        noise = mechanism.sample_noise(size=20000)
        # Laplace(0, b) has mean 0 and std b * sqrt(2).
        assert abs(float(np.mean(noise))) < 0.05
        assert float(np.std(noise)) == pytest.approx(np.sqrt(2.0), rel=0.05)

    def test_release_vector_shape(self):
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=2)
        released = mechanism.release_vector([1.0, 2.0, 3.0])
        assert released.shape == (3,)

    def test_rejects_non_finite_value(self):
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=0)
        with pytest.raises(PrivacyError):
            mechanism.release(float("nan"))

    @pytest.mark.parametrize("epsilon", [0.0, -1.0, float("nan")])
    def test_rejects_invalid_epsilon(self, epsilon):
        with pytest.raises(PrivacyError):
            LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)

    def test_rejects_negative_sensitivity(self):
        with pytest.raises(SensitivityError):
            LaplaceMechanism(epsilon=1.0, sensitivity=-1.0)

    @given(st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_release_is_finite_for_any_finite_value(self, value):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=3.0, rng=0)
        assert np.isfinite(mechanism.release(value))


class TestGaussianMechanism:
    def test_sigma_calibration(self):
        mechanism = GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=1.0, rng=0)
        expected = np.sqrt(2.0 * np.log(1.25 / 1e-5))
        assert mechanism.sigma == pytest.approx(expected)

    def test_zero_sensitivity_is_exact(self):
        mechanism = GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=0.0, rng=0)
        assert mechanism.release(7.0) == 7.0

    def test_rejects_invalid_delta(self):
        with pytest.raises(PrivacyError):
            GaussianMechanism(epsilon=1.0, delta=0.0, sensitivity=1.0)


class TestExponentialMechanism:
    def test_probabilities_sum_to_one(self):
        mechanism = ExponentialMechanism(epsilon=1.0, sensitivity=0.5, rng=0)
        probabilities = mechanism.selection_probabilities([0.1, 0.5, 0.9])
        assert probabilities.sum() == pytest.approx(1.0)

    def test_higher_scores_get_higher_probability(self):
        mechanism = ExponentialMechanism(epsilon=5.0, sensitivity=0.1, rng=0)
        probabilities = mechanism.selection_probabilities([0.0, 1.0])
        assert probabilities[1] > probabilities[0]

    def test_small_epsilon_approaches_uniform(self):
        mechanism = ExponentialMechanism(epsilon=1e-6, sensitivity=1.0, rng=0)
        probabilities = mechanism.selection_probabilities([0.0, 10.0, 20.0])
        assert probabilities == pytest.approx(np.full(3, 1 / 3), abs=1e-4)

    def test_select_returns_valid_index(self):
        mechanism = ExponentialMechanism(epsilon=1.0, sensitivity=1.0, rng=3)
        index = mechanism.select([0.2, 0.4, 0.6])
        assert index in (0, 1, 2)

    def test_select_many_without_replacement_is_distinct(self):
        mechanism = ExponentialMechanism(epsilon=1.0, sensitivity=1.0, rng=4)
        chosen = mechanism.select_many([0.1, 0.2, 0.3, 0.4], 3, replace=False)
        assert len(chosen) == 3
        assert len(set(chosen)) == 3

    def test_select_many_with_replacement_allows_repeats(self):
        mechanism = ExponentialMechanism(epsilon=1.0, sensitivity=1.0, rng=4)
        chosen = mechanism.select_many([0.1, 0.9], 10, replace=True)
        assert len(chosen) == 10
        assert set(chosen) <= {0, 1}

    def test_select_many_rejects_oversized_request_without_replacement(self):
        mechanism = ExponentialMechanism(epsilon=1.0, sensitivity=1.0, rng=0)
        with pytest.raises(SamplingError):
            mechanism.select_many([0.1, 0.2], 3, replace=False)

    def test_rejects_zero_sensitivity(self):
        with pytest.raises(SensitivityError):
            ExponentialMechanism(epsilon=1.0, sensitivity=0.0)

    def test_rejects_empty_scores(self):
        mechanism = ExponentialMechanism(epsilon=1.0, sensitivity=1.0, rng=0)
        with pytest.raises(SamplingError):
            mechanism.selection_probabilities([])

    def test_large_scores_are_numerically_stable(self):
        mechanism = ExponentialMechanism(epsilon=100.0, sensitivity=1e-3, rng=0)
        probabilities = mechanism.selection_probabilities([1e5, 1e5 + 1, 1e5 + 2])
        assert np.all(np.isfinite(probabilities))
        assert probabilities.sum() == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=20),
        st.floats(min_value=0.01, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_probabilities_always_valid(self, scores, epsilon):
        mechanism = ExponentialMechanism(epsilon=epsilon, sensitivity=0.5, rng=0)
        probabilities = mechanism.selection_probabilities(scores)
        assert probabilities.shape == (len(scores),)
        assert np.all(probabilities >= 0)
        assert probabilities.sum() == pytest.approx(1.0)
