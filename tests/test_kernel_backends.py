"""Compiled kernel tier: backend resolution, fallback, and bit-identity.

The kernel tier promises one semantic under every backend: the numba and
numpy implementations of the straddler kernels only ever add int64 measures,
so their results must be *byte-identical* — not merely close.  This module
pins that contract:

* :func:`repro.storage.kernels.resolve_backend` maps every
  ``ExecutionConfig.kernel_backend`` setting onto the backend that runs,
  warning exactly once per process when an explicit ``"numba"`` request
  degrades to the numpy path;
* a Hypothesis sweep asserts backend equality over randomized tables
  (mixed input dtypes, empty clusters) and over watermark-pinned delta
  snapshots against a per-query reference;
* the process-pool delta path ships rows through shared memory with **zero**
  pickled row bytes, asserted via the pool's own accounting.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.storage.kernels as kernels
from repro.config import (
    DENSE_EXECUTION,
    ExecutionConfig,
    IngestConfig,
    ParallelismConfig,
    SystemConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.ingest import DeltaStore
from repro.query.batch import QueryBatch
from repro.query.executor import execute_on_table
from repro.query.model import RangeQuery
from repro.storage.cluster import Cluster
from repro.storage.clustered_table import ClusteredTable
from repro.storage.layout import collect_kernel_telemetry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

SCHEMA = Schema((Dimension("x", 0, 99), Dimension("y", 0, 19)))

BACKENDS = ("numpy", "numba", "auto")


# -- resolution --------------------------------------------------------------


class TestResolveBackend:
    def test_numpy_request_always_runs_numpy(self):
        backend = kernels.resolve_backend("numpy")
        assert backend.name == "numpy"
        assert backend.requested == "numpy"
        assert not backend.compiled
        assert backend.fallback_reason == ""

    @pytest.mark.skipif(kernels.numba_available(), reason="numba installed")
    def test_auto_without_numba_is_a_quiet_numpy(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail the test
            backend = kernels.resolve_backend("auto")
        assert backend.name == "numpy"
        assert backend.fallback_reason == ""

    @pytest.mark.skipif(kernels.numba_available(), reason="numba installed")
    def test_numba_request_without_numba_records_the_reason(self, monkeypatch):
        monkeypatch.setattr(kernels, "_warned_fallback", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = kernels.resolve_backend("numba")
            second = kernels.resolve_backend("numba")
        assert first.name == "numpy"
        assert "numba" in first.fallback_reason
        assert second.fallback_reason == first.fallback_reason
        # Warn-once: hot loops resolve per call but users hear about the
        # degradation exactly one time per process.
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "falling back" in str(runtime[0].message)

    @pytest.mark.skipif(not kernels.numba_available(), reason="numba missing")
    def test_numba_available_serves_auto_and_explicit_requests(self):
        for requested in ("auto", "numba"):
            backend = kernels.resolve_backend(requested)
            assert backend.name == "numba"
            assert backend.compiled
            assert backend.fallback_reason == ""

    def test_execution_config_rejects_unknown_backends(self):
        with pytest.raises(Exception, match="kernel_backend"):
            ExecutionConfig(kernel_backend="cython")


# -- property sweep: backends are byte-identical -----------------------------


@st.composite
def chunked_tables(draw):
    """Cluster-sized chunks with mixed input dtypes, some of them empty."""
    sizes = draw(st.lists(st.integers(0, 40), min_size=1, max_size=6))
    seed = draw(st.integers(0, 2**31 - 1))
    dtype = draw(st.sampled_from([np.int16, np.int32, np.int64]))
    rng = np.random.default_rng(seed)
    return [
        Table(
            SCHEMA,
            {
                "x": rng.integers(0, 100, n).astype(dtype),
                "y": rng.integers(0, 20, n).astype(dtype),
            },
        )
        for n in sizes
    ]


@st.composite
def boxes(draw):
    x_low = draw(st.integers(0, 99))
    x_high = draw(st.integers(x_low, 99))
    y_low = draw(st.integers(0, 19))
    y_high = draw(st.integers(y_low, 19))
    which = draw(st.integers(0, 2))
    if which == 0:
        return RangeQuery.count({"x": (x_low, x_high)})
    if which == 1:
        return RangeQuery.count({"y": (y_low, y_high)})
    return RangeQuery.count({"x": (x_low, x_high), "y": (y_low, y_high)})


@given(chunked_tables(), st.lists(boxes(), min_size=1, max_size=4))
def test_backends_byte_identical_on_random_layouts(chunks, queries):
    clustered = ClusteredTable(
        clusters=tuple(
            Cluster(cluster_id=index, rows=chunk, nominal_size=64)
            for index, chunk in enumerate(chunks)
        ),
        cluster_size=64,
    )
    layout = clustered.layout()
    batch = QueryBatch(tuple(queries))
    reference = layout.cluster_values(batch, execution=DENSE_EXECUTION)
    assert reference.dtype == np.int64
    for backend in BACKENDS:
        execution = ExecutionConfig(
            prune=True, sorted_bisect=False, kernel_backend=backend
        )
        values = layout.cluster_values(batch, execution=execution)
        assert values.dtype == reference.dtype
        assert np.array_equal(values, reference), backend


@st.composite
def delta_scenarios(draw):
    chunks = draw(st.lists(chunked_tables(), min_size=1, max_size=2))
    flat = [table for group in chunks for table in group]
    total = sum(table.num_rows for table in flat)
    queries = draw(st.lists(boxes(), min_size=1, max_size=4))
    watermarks = [draw(st.integers(0, total)) for _ in queries]
    return flat, queries, watermarks


@given(delta_scenarios())
def test_delta_snapshot_batch_eval_matches_per_query_reference(scenario):
    """Watermark-pinned batch evaluation ≡ slicing the prefix and scanning it."""
    flat, queries, watermarks = scenario
    store = DeltaStore(SCHEMA)
    for table in flat:
        store.append(table)
    values, scanned = store.query_values(queries, watermarks)
    assert values.dtype == np.int64
    for index, (query, watermark) in enumerate(zip(queries, watermarks)):
        visible = store.rows_upto(watermark)
        assert values[index] == execute_on_table(visible, query)
        assert 0 <= scanned[index] <= visible.num_rows


def test_system_backends_identical_with_live_deltas():
    """End to end: DP answers are invariant under the kernel backend, with
    uncompacted delta rows in the read path."""
    rng = np.random.default_rng(61)
    base = Table(
        SCHEMA,
        {"x": rng.integers(0, 100, 3000), "y": rng.integers(0, 20, 3000)},
    )
    delta = Table(
        SCHEMA,
        {"x": rng.integers(0, 100, 200), "y": rng.integers(0, 20, 200)},
    )
    queries = [
        RangeQuery.count({"x": (10, 60)}),
        RangeQuery.count({"x": (0, 99), "y": (3, 9)}),
        RangeQuery.count({"y": (0, 4)}),
    ]
    reference = None
    for backend in BACKENDS:
        config = SystemConfig(
            cluster_size=150,
            num_providers=3,
            seed=17,
            ingest=IngestConfig(max_delta_rows=10**6),
        ).with_execution(ExecutionConfig(kernel_backend=backend))
        system = FederatedAQPSystem.from_table(base, config=config)
        system.ingest(delta)
        result = system.execute_batch(queries, compute_exact=True)
        summary = [
            (r.value, r.exact_value) for r in result.results
        ]
        if reference is None:
            reference = summary
        else:
            assert summary == reference, backend


# -- process pool: zero pickled delta-row bytes ------------------------------


def test_procpool_delta_path_pickles_zero_row_bytes():
    """Delta rows reach workers through shared memory only.

    Both shipping flavors are exercised — rows pending *before* the pool is
    built (pre-populated into the append buffer at pool construction) and
    rows ingested *while* the pool is live (mirrored to workers by buffer
    offset).  The pool's accounting must show every shipped row in the
    shared-memory ledger and zero bytes of pickled row payloads; answers
    stay bit-identical to the serial backend.
    """
    rng = np.random.default_rng(67)
    base = Table(
        SCHEMA,
        {"x": rng.integers(0, 100, 400), "y": rng.integers(0, 20, 400)},
    )
    early = Table(
        SCHEMA,
        {"x": rng.integers(0, 100, 30), "y": rng.integers(0, 20, 30)},
    )
    late = Table(
        SCHEMA,
        {"x": rng.integers(0, 100, 50), "y": rng.integers(0, 20, 50)},
    )
    queries = [
        RangeQuery.count({"x": (5, 80)}),
        RangeQuery.count({"y": (2, 11)}),
    ]
    tokens = [(9, index) for index in range(len(queries))]
    pooled_config = SystemConfig(
        cluster_size=32,
        num_providers=2,
        seed=7,
        ingest=IngestConfig(max_delta_rows=10**6),
        parallelism=ParallelismConfig(enabled=True, backend="process"),
    )
    serial_config = SystemConfig(
        cluster_size=32,
        num_providers=2,
        seed=7,
        ingest=IngestConfig(max_delta_rows=10**6),
    )
    with FederatedAQPSystem.from_table(base, config=pooled_config) as pooled:
        pooled.ingest(early)  # pending before the pool exists
        first = pooled.execute_batch(queries, seed_tokens=tokens)
        pool = pooled.aggregator._process_pool
        assert pool is not None
        assert pool.stats.delta_rows_shipped == early.num_rows
        pooled.ingest(late)  # mirrored onto live workers
        second = pooled.execute_batch(queries, seed_tokens=tokens)
        stats = pool.stats
        assert stats.delta_rows_shipped == early.num_rows + late.num_rows
        assert stats.delta_shared_bytes > 0
        assert stats.delta_rows_pickled_bytes == 0
    with FederatedAQPSystem.from_table(base, config=serial_config) as plain:
        plain.ingest(early)
        plain_first = plain.execute_batch(queries, seed_tokens=tokens)
        plain.ingest(late)
        plain_second = plain.execute_batch(queries, seed_tokens=tokens)
    assert [r.value for r in first.results] == [r.value for r in plain_first.results]
    assert [r.value for r in second.results] == [r.value for r in plain_second.results]


def test_backend_axis_shows_up_in_system_telemetry():
    rng = np.random.default_rng(71)
    table = Table(
        SCHEMA,
        {"x": rng.integers(0, 100, 2000), "y": rng.integers(0, 20, 2000)},
    )
    layout = ClusteredTable.from_table(table, cluster_size=100).layout()
    batch = QueryBatch((RangeQuery.count({"x": (20, 77)}),))
    requested = "auto"
    with collect_kernel_telemetry() as telemetry:
        layout.cluster_values(
            batch,
            execution=ExecutionConfig(
                prune=True, sorted_bisect=False, kernel_backend=requested
            ),
        )
    expected = "numba" if kernels.numba_available() else "numpy"
    assert telemetry.backend == expected
