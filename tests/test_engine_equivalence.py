"""Engine-mode equivalence: pruned/sorted/tiled/process ≡ dense, bit for bit.

The execution engine has one semantic (exact integer ``Q(C)``) and many
execution modes — dense scans, zone-map pruning, sorted-layout bisection,
memory-bounded tiling, thread and process provider fan-out.  Integer sums
are exact under any evaluation order, so every mode must return *identical*
results; this module sweeps randomized tables and workloads asserting
exactly that, plus the regressions for empty clusters and ``gather``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DENSE_EXECUTION,
    ExecutionConfig,
    ParallelismConfig,
    SamplingConfig,
    SystemConfig,
    TransportConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.query.batch import QueryBatch
from repro.query.executor import ExactExecutor, execute_on_cluster
from repro.query.model import RangeQuery
from repro.storage.cluster import Cluster
from repro.storage.clustered_table import ClusteredTable
from repro.storage.kernels import numba_available
from repro.storage.layout import collect_kernel_telemetry
from repro.storage.metadata import build_metadata
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

SCHEMA = Schema(
    (
        Dimension("key", 0, 999),
        Dimension("aux", 0, 49),
        Dimension("cat", 0, 9),
    )
)

EXECUTION_MODES = {
    "pruned": ExecutionConfig(prune=True, sorted_bisect=False),
    "pruned+sorted": ExecutionConfig(prune=True, sorted_bisect=True),
    "tiled-tiny": ExecutionConfig(prune=False, sorted_bisect=False, max_kernel_bytes=4096),
    "pruned+sorted+tiled-tiny": ExecutionConfig(
        prune=True, sorted_bisect=True, max_kernel_bytes=4096
    ),
}
# Kernel-backend axis: every mode again under each explicit backend.  An
# explicit "numba" request degrades (loudly, once) to the numpy kernels when
# numba is not installed, so the sweep is meaningful on both CI legs — with
# numba it exercises the compiled tier, without it the fallback path.
for _backend in ("numpy", "numba"):
    for _name, _execution in list(EXECUTION_MODES.items()):
        EXECUTION_MODES[f"{_name}@{_backend}"] = _execution.with_kernel_backend(_backend)


def _random_table(rng: np.random.Generator, num_rows: int) -> Table:
    return Table(
        SCHEMA,
        {
            "key": rng.integers(0, 1000, num_rows),
            "aux": np.minimum(49, rng.poisson(12, num_rows)),
            "cat": rng.integers(0, 10, num_rows),
        },
    )


def _random_workload(rng: np.random.Generator, count: int) -> list[RangeQuery]:
    """Queries across the selectivity spectrum, 1-3 constrained dimensions."""
    queries = []
    for _ in range(count):
        ranges: dict[str, tuple[int, int]] = {}
        width = rng.choice([5, 50, 400, 1000])  # near-empty → full coverage
        low = int(rng.integers(0, 1000))
        ranges["key"] = (low, min(999, low + int(width)))
        if rng.random() < 0.5:
            low = int(rng.integers(0, 50))
            ranges["aux"] = (low, min(49, low + int(rng.integers(1, 30))))
        if rng.random() < 0.3:
            low = int(rng.integers(0, 10))
            ranges["cat"] = (low, min(9, low + int(rng.integers(0, 5))))
        queries.append(RangeQuery.count(ranges))
    return queries


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("policy", ["sequential", "sorted"])
def test_all_kernel_modes_match_dense(seed, policy):
    rng = np.random.default_rng(seed)
    table = _random_table(rng, int(rng.integers(500, 4000)))
    clustered = ClusteredTable.from_table(
        table, cluster_size=int(rng.integers(50, 400)), policy=policy
    )
    layout = clustered.layout()
    batch = QueryBatch(tuple(_random_workload(rng, 12)))

    dense = layout.cluster_values(batch, execution=DENSE_EXECUTION)
    for mode, execution in EXECUTION_MODES.items():
        values = layout.cluster_values(batch, execution=execution)
        assert np.array_equal(values, dense), mode

    positions = [
        np.sort(
            rng.choice(
                layout.num_clusters,
                size=int(rng.integers(0, layout.num_clusters + 1)),
                replace=False,
            )
        ).astype(np.int64)
        for _ in batch
    ]
    reference = layout.query_cluster_values(batch, positions, execution=DENSE_EXECUTION)
    for mode, execution in EXECUTION_MODES.items():
        values = layout.query_cluster_values(batch, positions, execution=execution)
        for expected, got in zip(reference, values):
            assert np.array_equal(expected, got), mode

    masks = layout.row_masks(batch, execution=DENSE_EXECUTION)
    tiled = layout.row_masks(batch, execution=EXECUTION_MODES["tiled-tiny"])
    assert np.array_equal(masks, tiled)


def test_dense_matches_per_cluster_loop():
    rng = np.random.default_rng(7)
    table = _random_table(rng, 1500)
    clustered = ClusteredTable.from_table(table, cluster_size=128)
    layout = clustered.layout()
    queries = _random_workload(rng, 6)
    matrix = layout.cluster_values(QueryBatch(tuple(queries)), execution=DENSE_EXECUTION)
    for index, query in enumerate(queries):
        expected = [execute_on_cluster(cluster, query) for cluster in clustered]
        assert matrix[index].tolist() == expected


def _clustered_with_empty_segments() -> ClusteredTable:
    """Clusters where positions 1 and 4 (the tail) hold zero rows."""
    rng = np.random.default_rng(11)
    chunks = [_random_table(rng, n) for n in (130, 0, 90, 47, 0)]
    clusters = tuple(
        Cluster(cluster_id=index, rows=chunk, nominal_size=200)
        for index, chunk in enumerate(chunks)
    )
    return ClusteredTable(clusters=clusters, cluster_size=200)


def test_empty_segments_all_modes():
    """Regression: zero-length segments, including a trailing one.

    The old dense fallback allocated a Q×(rows+1) prefix matrix; the kernels
    now mask empty segments out of the ``reduceat`` instead.  Every mode must
    agree with the per-cluster loop, charging empty clusters exactly zero.
    """
    clustered = _clustered_with_empty_segments()
    layout = clustered.layout()
    rng = np.random.default_rng(13)
    queries = _random_workload(rng, 8)
    batch = QueryBatch(tuple(queries))
    expected = np.array(
        [
            [execute_on_cluster(cluster, query) for cluster in clustered]
            for query in queries
        ],
        dtype=np.int64,
    )
    for execution in [DENSE_EXECUTION, *EXECUTION_MODES.values()]:
        assert np.array_equal(layout.cluster_values(batch, execution=execution), expected)
    positions = [np.arange(layout.num_clusters, dtype=np.int64) for _ in batch]
    for execution in [DENSE_EXECUTION, *EXECUTION_MODES.values()]:
        values = layout.query_cluster_values(batch, positions, execution=execution)
        for index in range(len(batch)):
            assert np.array_equal(values[index], expected[index])


def test_empty_segments_executor_end_to_end():
    clustered = _clustered_with_empty_segments()
    metadata = build_metadata(clustered)
    queries = _random_workload(np.random.default_rng(17), 5)
    for execution in [None, DENSE_EXECUTION, EXECUTION_MODES["pruned+sorted+tiled-tiny"]]:
        executor = ExactExecutor(clustered, metadata, execution=execution)
        values = [result.value for result in executor.execute_batch(queries)]
        expected = [
            sum(execute_on_cluster(cluster, query) for cluster in clustered)
            for query in queries
        ]
        assert values == expected


def test_gather_preserves_segment_offsets_and_empty_segments():
    clustered = _clustered_with_empty_segments()
    layout = clustered.layout()
    sub = layout.gather(np.array([2, 1, 4, 0]))
    assert sub.cluster_ids == (2, 1, 4, 0)
    assert sub.cluster_rows.tolist() == [90, 0, 0, 130]
    # Segments must stay contiguous: starts are the running row totals.
    assert sub.starts.tolist() == [0, 90, 90, 90]
    assert sub.num_rows == 220
    # Row content of every gathered segment matches the source segment.
    for target, source in enumerate([2, 1, 4, 0]):
        src_start = int(layout.starts[source])
        src_stop = src_start + int(layout.cluster_rows[source])
        dst_start = int(sub.starts[target])
        dst_stop = dst_start + int(sub.cluster_rows[target])
        for name in layout.columns:
            assert np.array_equal(
                sub.columns[name][dst_start:dst_stop],
                layout.columns[name][src_start:src_stop],
            )
        assert np.array_equal(
            sub.measure[dst_start:dst_stop], layout.measure[src_start:src_stop]
        )


def test_zone_maps_match_cluster_extremes():
    clustered = _clustered_with_empty_segments()
    layout = clustered.layout()
    for name in layout.columns:
        for position, cluster in enumerate(clustered):
            column = cluster.rows.column(name)
            if column.size == 0:
                # Inverted sentinels: never overlap a real query range.
                assert layout.zone_min[name][position] > layout.zone_max[name][position]
            else:
                assert layout.zone_min[name][position] == column.min()
                assert layout.zone_max[name][position] == column.max()
    assert layout.segment_sums.tolist() == [
        cluster.num_rows for cluster in clustered  # raw table: measure == 1
    ]


def test_sorted_dimension_detection():
    rng = np.random.default_rng(3)
    table = _random_table(rng, 2000)
    sequential = ClusteredTable.from_table(table, cluster_size=100).layout()
    assert "key" not in sequential.sorted_dimensions
    by_key = ClusteredTable.from_table(table, cluster_size=100, policy="sorted").layout()
    assert "key" in by_key.sorted_dimensions
    intra = ClusteredTable.from_table(
        table, cluster_size=100, intra_sort_by="aux"
    ).layout()
    assert "aux" in intra.sorted_dimensions


def test_intra_sort_preserves_cluster_membership_and_answers():
    """Intra-cluster sorting changes row order only — answers are identical."""
    rng = np.random.default_rng(5)
    table = _random_table(rng, 3000)
    plain = ClusteredTable.from_table(table, cluster_size=250)
    sorted_rows = ClusteredTable.from_table(table, cluster_size=250, intra_sort_by="key")
    assert plain.num_clusters == sorted_rows.num_clusters
    queries = _random_workload(rng, 10)
    batch = QueryBatch(tuple(queries))
    plain_values = plain.layout().cluster_values(batch, execution=DENSE_EXECUTION)
    with collect_kernel_telemetry() as telemetry:
        sorted_values = sorted_rows.layout().cluster_values(batch)
    assert np.array_equal(plain_values, sorted_values)
    assert telemetry.pairs_bisected > 0


def test_kernel_backend_telemetry_counters():
    """Per-backend telemetry: jit/fallback hits, fused pairs, tile bytes."""
    rng = np.random.default_rng(21)
    table = _random_table(rng, 4000)
    layout = ClusteredTable.from_table(table, cluster_size=200).layout()
    batch = QueryBatch(tuple(_random_workload(rng, 10)))
    dense = layout.cluster_values(batch, execution=DENSE_EXECUTION)
    for requested in ("numpy", "numba", "auto"):
        execution = ExecutionConfig(
            prune=True, sorted_bisect=False, kernel_backend=requested
        )
        with collect_kernel_telemetry() as telemetry:
            values = layout.cluster_values(batch, execution=execution)
        assert np.array_equal(values, dense), requested
        assert telemetry.pairs_scanned > 0  # this workload always straddles
        assert telemetry.max_tile_bytes > 0
        if requested != "numpy" and numba_available():
            assert telemetry.backend == "numba"
            assert telemetry.jit_calls > 0
            assert telemetry.fallback_calls == 0
            assert telemetry.pairs_fused > 0
        else:
            assert telemetry.backend == "numpy"
            assert telemetry.jit_calls == 0
            assert telemetry.pairs_fused == 0
        if requested == "numba" and not numba_available():
            # Explicit request degraded: counted, with the reason recorded.
            assert telemetry.fallback_calls > 0
            assert "numba" in telemetry.fallback_reason
        else:
            assert telemetry.fallback_calls == 0
            assert telemetry.fallback_reason == ""


def test_pruning_touches_fewer_rows_and_tiling_bounds_memory():
    rng = np.random.default_rng(19)
    table = _random_table(rng, 8000)
    clustered = ClusteredTable.from_table(table, cluster_size=200, policy="sorted")
    layout = clustered.layout()
    # Low-selectivity workload: narrow ranges on the clustering key.
    queries = []
    for _ in range(8):
        low = int(rng.integers(0, 980))
        queries.append(RangeQuery.count({"key": (low, low + 15)}))
    batch = QueryBatch(tuple(queries))
    with collect_kernel_telemetry() as dense_stats:
        dense = layout.cluster_values(batch, execution=DENSE_EXECUTION)
    with collect_kernel_telemetry() as pruned_stats:
        pruned = layout.cluster_values(batch)
    assert np.array_equal(dense, pruned)
    assert dense_stats.rows_evaluated == len(batch) * layout.num_rows
    # With bisection on, the straddlers resolve by binary search: no rows.
    assert pruned_stats.rows_evaluated == 0
    assert pruned_stats.pairs_bisected > 0
    # Force the straddlers onto the row path under a tiny budget: the peak
    # tile footprint stays within it (no cluster of this table is larger
    # than the budget's row allowance) and results stay identical.
    budget = 16384
    execution = ExecutionConfig(sorted_bisect=False, max_kernel_bytes=budget)
    with collect_kernel_telemetry() as tiled_stats:
        tiled = layout.cluster_values(batch, execution=execution)
    assert np.array_equal(dense, tiled)
    assert 0 < tiled_stats.rows_evaluated < dense_stats.rows_evaluated / 10
    assert 0 < tiled_stats.max_tile_bytes <= budget


def _system(table: Table, config: SystemConfig, **kwargs) -> FederatedAQPSystem:
    return FederatedAQPSystem.from_table(table, config=config, **kwargs)


@pytest.mark.parametrize("seed", [0, 4])
def test_system_modes_bit_identical(seed):
    """End-to-end: the full DP protocol is invariant across engine modes."""
    rng = np.random.default_rng(seed)
    table = _random_table(rng, 6000)
    base = SystemConfig(
        cluster_size=150,
        num_providers=3,
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=23,
    )
    queries = _random_workload(rng, 9)
    reference = _system(table, base.with_execution(DENSE_EXECUTION)).execute_batch(
        queries, compute_exact=False
    )
    variants = {
        "default": base,
        "tiled-tiny": base.with_execution(
            ExecutionConfig(max_kernel_bytes=8192)
        ),
        "thread": base.with_parallelism(ParallelismConfig(enabled=True)),
    }
    for mode, config in variants.items():
        values = _system(table, config).execute_batch(queries, compute_exact=False).values
        assert values == reference.values, mode
    intra = _system(table, base, intra_sort_by="key")
    assert intra.execute_batch(queries, compute_exact=False).values == reference.values


def test_system_process_backend_bit_identical():
    rng = np.random.default_rng(29)
    table = _random_table(rng, 5000)
    base = SystemConfig(
        cluster_size=200,
        num_providers=3,
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=31,
    )
    queries = _random_workload(rng, 6)
    reference = _system(table, base).execute_batch(queries, compute_exact=False)
    process_config = base.with_parallelism(
        ParallelismConfig(enabled=True, backend="process")
    )
    with _system(table, process_config) as system:
        first = system.execute_batch(queries, compute_exact=False)
        second = system.execute_batch(queries, compute_exact=False)
        for provider in system.providers:
            assert provider.num_open_sessions == 0
    follow_up = _system(table, base)
    follow_up.execute_batch(queries, compute_exact=False)
    reference_second = follow_up.execute_batch(queries, compute_exact=False)
    assert first.values == reference.values
    # Worker streams advance exactly like in-process ones across batches.
    assert second.values == reference_second.values


def test_system_process_backend_survives_layout_rebuild():
    """Re-clustering a provider must rebuild the worker pool, not serve stale layouts."""
    rng = np.random.default_rng(43)
    table = _random_table(rng, 3000)
    base = SystemConfig(
        cluster_size=150,
        num_providers=2,
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=47,
    )
    queries = _random_workload(rng, 4)
    process_config = base.with_parallelism(
        ParallelismConfig(enabled=True, backend="process")
    )
    reference = _system(table, base)
    reference.execute_batch(queries, compute_exact=False)
    reference.providers[0].rebuild_layout(clustering_policy="sorted")
    expected = reference.execute_batch(queries, compute_exact=False).values
    with _system(table, process_config) as system:
        system.execute_batch(queries, compute_exact=False)
        system.providers[0].rebuild_layout(clustering_policy="sorted")
        assert system.execute_batch(queries, compute_exact=False).values == expected


def test_system_process_backend_smc_and_shared_workers():
    rng = np.random.default_rng(37)
    table = _random_table(rng, 4000)
    base = SystemConfig(
        cluster_size=150,
        num_providers=4,
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=41,
        use_smc_for_result=True,
    )
    queries = _random_workload(rng, 4)
    reference = _system(table, base).execute_batch(queries, compute_exact=False)
    process_config = base.with_parallelism(
        ParallelismConfig(enabled=True, backend="process", max_workers=2)
    )
    with _system(table, process_config) as system:
        values = system.execute_batch(queries, compute_exact=False).values
    assert values == reference.values


# -- transport / sharding equivalence matrix ------------------------------------


def _batch_fingerprint(batch) -> list[tuple]:
    """Everything a transport could plausibly corrupt, per query."""
    return [
        (result.value, result.epsilon_spent, result.delta_spent, result.noise_injected)
        for result in batch
    ]


def test_transport_matrix_bit_identical():
    """Same workload, same seed: every transport and shard count must produce
    bit-identical answers AND epsilon charges — sharded(K>=2)-over-sockets
    included, which is the acceptance bar for the distributed path."""
    rng = np.random.default_rng(11)
    table = _random_table(rng, 6000)
    base = SystemConfig(
        cluster_size=150,
        num_providers=3,
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=23,
    )
    queries = _random_workload(rng, 9)
    with _system(table, base) as reference_system:
        reference = _batch_fingerprint(
            reference_system.execute_batch(queries, compute_exact=False)
        )
    matrix = {
        "loopback": TransportConfig(kind="loopback"),
        "socket": TransportConfig(kind="socket"),
        "sharded-k1": TransportConfig(shard_workers=1),
        "sharded-k2": TransportConfig(shard_workers=2),
        "sharded-k3": TransportConfig(shard_workers=3),
        "sharded-k2-loopback": TransportConfig(kind="loopback", shard_workers=2),
        "sharded-k3-socket": TransportConfig(kind="socket", shard_workers=3),
    }
    for mode, transport in matrix.items():
        with _system(table, base.with_transport(transport)) as system:
            batch = system.execute_batch(queries, compute_exact=False)
            assert _batch_fingerprint(batch) == reference, mode
            stats = system.transport_stats()
            if transport.kind == "inprocess":
                assert stats.messages == 0, mode
            else:
                # Real framed traffic: a request and a reply frame per
                # provider phase call (summary, answer, forget).
                assert stats.messages == 6 * len(system.providers), mode
                assert stats.bytes_sent > 0, mode
                assert stats.frames_duplicated == 0, mode


def test_transport_wire_traffic_is_deterministic():
    """Loopback and socket put byte-identical framed traffic on the wire."""
    rng = np.random.default_rng(17)
    table = _random_table(rng, 3000)
    base = SystemConfig(
        cluster_size=150,
        num_providers=2,
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=29,
    )
    queries = _random_workload(rng, 5)
    snapshots = {}
    for kind in ("loopback", "socket"):
        with _system(table, base.with_transport(TransportConfig(kind=kind))) as system:
            system.execute_batch(queries, compute_exact=False)
            stats = system.transport_stats()
            snapshots[kind] = (stats.messages, stats.bytes_sent)
    assert snapshots["loopback"] == snapshots["socket"]


def test_sharded_provider_matches_unsharded_across_rebuild_and_thread_fanout():
    """Sharding survives re-clustering (shards rebuild on the epoch bump) and
    composes with the thread fan-out without changing a single bit."""
    rng = np.random.default_rng(31)
    table = _random_table(rng, 4000)
    base = SystemConfig(
        cluster_size=150,
        num_providers=2,
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=37,
    )
    queries = _random_workload(rng, 5)
    reference = _system(table, base)
    reference.execute_batch(queries, compute_exact=False)
    reference.providers[0].rebuild_layout(clustering_policy="sorted")
    expected = reference.execute_batch(queries, compute_exact=False).values
    sharded_config = base.with_transport(
        TransportConfig(shard_workers=3)
    ).with_parallelism(ParallelismConfig(enabled=True))
    with _system(table, sharded_config) as system:
        assert all(provider.shard_count >= 2 for provider in system.providers)
        system.execute_batch(queries, compute_exact=False)
        system.providers[0].rebuild_layout(clustering_policy="sorted")
        assert system.execute_batch(queries, compute_exact=False).values == expected
