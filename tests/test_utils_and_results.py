"""Tests for the utility helpers, protocol messages, and result objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import ExecutionTrace, ProviderReport, QueryResult
from repro.federation.messages import (
    AllocationMessage,
    EstimateMessage,
    QueryRequest,
    SummaryMessage,
)
from repro.query.model import RangeQuery
from repro.utils.rng import derive_rng, ensure_rng, spawn_child_rngs
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import (
    require_fraction,
    require_non_negative,
    require_positive,
    require_probability_vector,
)


class TestRng:
    def test_ensure_rng_accepts_seed_generator_and_none(self):
        assert isinstance(ensure_rng(3), np.random.Generator)
        assert isinstance(ensure_rng(None), np.random.Generator)
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_derive_rng_is_deterministic_per_key(self):
        a = derive_rng(42, "sampler", 1).random()
        b = derive_rng(42, "sampler", 1).random()
        c = derive_rng(42, "sampler", 2).random()
        assert a == b
        assert a != c

    def test_spawn_child_rngs_are_independent(self):
        children = spawn_child_rngs(7, 3)
        assert len(children) == 3
        draws = {child.random() for child in children}
        assert len(draws) == 3

    def test_spawn_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_child_rngs(0, -1)


class TestTiming:
    def test_timer_measures_elapsed(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0

    def test_stopwatch_accumulates_named_laps(self):
        stopwatch = Stopwatch()
        with stopwatch.measure("phase-a"):
            pass
        stopwatch.add("phase-a", 0.5)
        stopwatch.add("phase-b", 0.25)
        assert stopwatch.laps["phase-a"] >= 0.5
        assert stopwatch.total == pytest.approx(sum(stopwatch.as_dict().values()))

    def test_stopwatch_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Stopwatch().add("x", -1.0)


class TestValidation:
    def test_require_positive(self):
        assert require_positive(2.0, "x") == 2.0
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")

    def test_require_fraction(self):
        assert require_fraction(0.5, "x") == 0.5
        assert require_fraction(1.0, "x", inclusive=True) == 1.0
        with pytest.raises(ValueError):
            require_fraction(1.0, "x")

    def test_require_probability_vector(self):
        vector = require_probability_vector([0.25, 0.75], "p")
        assert vector.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            require_probability_vector([0.5, 0.6], "p")
        with pytest.raises(ValueError):
            require_probability_vector([], "p")


class TestMessages:
    def test_payload_sizes_are_small_and_data_independent(self):
        query = RangeQuery.count({"a": (0, 10), "b": (5, 6)})
        request = QueryRequest(query_id=1, query=query, sampling_rate=0.1)
        summary = SummaryMessage(1, "p0", 10.0, 0.5)
        allocation = AllocationMessage(1, "p0", 3)
        estimate = EstimateMessage(1, "p0", 123.0, 4.5, True)
        # Every protocol message fits in well under a kilobyte.
        for message in (request, summary, allocation, estimate):
            assert 0 < message.payload_bytes() < 1024

    def test_request_payload_grows_with_dimensions_only(self):
        small = QueryRequest(1, RangeQuery.count({"a": (0, 1)}), 0.1)
        large = QueryRequest(1, RangeQuery.count({"a": (0, 1), "b": (0, 1), "c": (0, 1)}), 0.1)
        assert large.payload_bytes() > small.payload_bytes()


class TestResultObjects:
    def _report(self, **overrides) -> ProviderReport:
        values = dict(
            provider_id="p0",
            covering_clusters=10,
            allocation=3,
            sampled_clusters=3,
            approximated=True,
            local_estimate=100.0,
            local_noise=5.0,
            smooth_sensitivity=2.0,
            rows_scanned=300,
            rows_available=1000,
        )
        values.update(overrides)
        return ProviderReport(**values)

    def test_released_value_includes_noise(self):
        assert self._report().released_value == pytest.approx(105.0)

    def test_trace_totals_and_work_fraction(self):
        trace = ExecutionTrace(
            phase_seconds={"a": 0.1, "b": 0.2},
            simulated_network_seconds=0.05,
            rows_scanned=250,
            rows_available=1000,
        )
        assert trace.total_seconds == pytest.approx(0.35)
        assert trace.work_fraction == pytest.approx(0.25)
        assert ExecutionTrace().work_fraction == 0.0

    def test_query_result_error_metrics(self):
        query = RangeQuery.count({"a": (0, 1)})
        result = QueryResult(
            query=query,
            value=90.0,
            epsilon_spent=1.0,
            delta_spent=1e-3,
            used_smc=False,
            provider_reports=(self._report(),),
            trace=ExecutionTrace(),
            exact_value=100,
        )
        assert result.relative_error == pytest.approx(0.1)
        assert result.absolute_error == pytest.approx(10.0)
        assert "exact=100" in result.summary()

    def test_query_result_without_exact_value(self):
        query = RangeQuery.count({"a": (0, 1)})
        result = QueryResult(
            query=query,
            value=90.0,
            epsilon_spent=1.0,
            delta_spent=1e-3,
            used_smc=False,
            provider_reports=(),
            trace=ExecutionTrace(),
            exact_value=None,
        )
        assert result.relative_error is None
        assert result.absolute_error is None

    def test_zero_exact_value_yields_infinite_error(self):
        query = RangeQuery.count({"a": (0, 1)})
        result = QueryResult(
            query=query,
            value=5.0,
            epsilon_spent=1.0,
            delta_spent=1e-3,
            used_smc=False,
            provider_reports=(),
            trace=ExecutionTrace(),
            exact_value=0,
        )
        assert result.relative_error == float("inf")
