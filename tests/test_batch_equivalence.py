"""Batch execution must be bit-identical to the sequential per-query loop.

The batch engine's contract: for the same seed, ``execute_batch([q1..qn])``
produces exactly the results of ``[execute(qi) for qi in ...]`` run on a
fresh system built with the same seed — value for value, report for report —
on every clustering policy, with and without SMC combination, and with the
provider fan-out parallelised or not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    ParallelismConfig,
    PrivacyConfig,
    SamplingConfig,
    SystemConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.query.model import RangeQuery
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


def _table(num_rows: int = 6000) -> Table:
    rng = np.random.default_rng(41)
    schema = Schema(
        (
            Dimension("age", 0, 99),
            Dimension("hours", 0, 49),
            Dimension("dept", 0, 9),
        )
    )
    return Table(
        schema,
        {
            "age": rng.integers(0, 100, num_rows),
            "hours": np.minimum(49, rng.poisson(12, num_rows)),
            "dept": rng.integers(0, 10, num_rows),
        },
    )


def _system(
    policy: str, *, parallel: bool = False, use_smc: bool = False
) -> FederatedAQPSystem:
    config = SystemConfig(
        cluster_size=150,
        num_providers=4,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        parallelism=ParallelismConfig(enabled=parallel),
        use_smc_for_result=use_smc,
        seed=97,
    )
    return FederatedAQPSystem.from_table(
        _table(),
        config=config,
        clustering_policy=policy,
        sort_by="age" if policy == "sorted" else None,
    )


WORKLOAD = [
    RangeQuery.count({"age": (10, 80)}),
    RangeQuery.count({"age": (0, 35), "dept": (2, 6)}),
    RangeQuery.sum({"hours": (5, 25)}),
    # Narrow range: triggers the exact (N^Q < N_min) path on sorted layouts.
    RangeQuery.count({"age": (0, 2)}),
    RangeQuery.count({"hours": (0, 40), "age": (20, 90), "dept": (0, 9)}),
]


def _assert_equivalent(sequential, batch):
    assert len(sequential) == len(batch)
    for expected, actual in zip(sequential, batch):
        assert actual.value == expected.value
        assert actual.noise_injected == expected.noise_injected
        assert actual.used_smc == expected.used_smc
        assert actual.provider_reports == expected.provider_reports
        assert actual.trace.rows_scanned == expected.trace.rows_scanned
        assert actual.trace.clusters_scanned == expected.trace.clusters_scanned
        assert actual.trace.messages_sent == expected.trace.messages_sent
        assert actual.trace.bytes_sent == expected.trace.bytes_sent


class TestBatchSequentialEquivalence:
    @pytest.mark.parametrize("policy", ["sequential", "sorted"])
    def test_batch_matches_sequential_loop(self, policy):
        sequential_system = _system(policy)
        sequential = [
            sequential_system.execute(query, compute_exact=False) for query in WORKLOAD
        ]
        batch_system = _system(policy)
        batch = batch_system.execute_batch(WORKLOAD, compute_exact=False)
        _assert_equivalent(sequential, batch.results)

    @pytest.mark.parametrize("policy", ["sequential", "sorted"])
    def test_batch_matches_sequential_loop_with_smc(self, policy):
        sequential_system = _system(policy, use_smc=True)
        sequential = [
            sequential_system.execute(query, compute_exact=False) for query in WORKLOAD
        ]
        batch_system = _system(policy, use_smc=True)
        batch = batch_system.execute_batch(WORKLOAD, compute_exact=False)
        _assert_equivalent(sequential, batch.results)

    def test_parallel_fanout_is_bit_identical(self):
        serial_batch = _system("sequential").execute_batch(WORKLOAD, compute_exact=False)
        parallel_batch = _system("sequential", parallel=True).execute_batch(
            WORKLOAD, compute_exact=False
        )
        _assert_equivalent(serial_batch.results, parallel_batch.results)

    def test_batch_exact_values_match_baseline(self):
        system = _system("sequential")
        batch = system.execute_batch(WORKLOAD, compute_exact=True)
        for query, result in zip(WORKLOAD, batch.results):
            assert result.exact_value == system.exact_baseline(query).value

    def test_batch_aggregates(self):
        system = _system("sequential")
        batch = system.execute_batch(WORKLOAD, compute_exact=False)
        assert batch.num_queries == len(WORKLOAD)
        assert batch.epsilon_spent == pytest.approx(len(WORKLOAD) * 1.0)
        assert batch.total_rows_scanned == sum(
            result.trace.rows_scanned for result in batch.results
        )
        assert batch.wall_seconds > 0
        assert batch.queries_per_second > 0

    def test_execute_is_a_batch_of_one(self):
        one = _system("sequential").execute(WORKLOAD[0], compute_exact=False)
        batch = _system("sequential").execute_batch([WORKLOAD[0]], compute_exact=False)
        _assert_equivalent([one], batch.results)
