"""Tests for the Naive Bayes attack, budgeting regimes, and the runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.budgeting import AttackBudgetRegime, per_query_delta, per_query_epsilon
from repro.attacks.nbc import NaiveBayesAttacker, attack_query_count
from repro.attacks.runner import AttackRunner
from repro.config import PrivacyConfig, SamplingConfig, SystemConfig
from repro.core.system import FederatedAQPSystem
from repro.errors import AttackError
from repro.query.executor import execute_on_table
from repro.query.model import Aggregation
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


@pytest.fixture
def correlated_table() -> Table:
    """A table whose sensitive attribute is strongly predictable from QI."""
    rng = np.random.default_rng(0)
    n = 4000
    qi_a = rng.integers(0, 4, n)
    qi_b = rng.integers(0, 3, n)
    # The sensitive value is a deterministic function of the QIs plus noise,
    # so an unimpeded attacker should predict it far better than chance.
    sensitive = (3 * qi_a + qi_b + rng.integers(0, 2, n)) % 10
    schema = Schema(
        (
            Dimension("sa", 0, 9),
            Dimension("qi_a", 0, 3),
            Dimension("qi_b", 0, 2),
        )
    )
    return Table(schema, {"sa": sensitive, "qi_a": qi_a, "qi_b": qi_b})


class TestBudgeting:
    def test_query_count_formula(self, correlated_table):
        schema = correlated_table.schema
        expected = 1 + 10 + 10 * (4 + 3)
        assert attack_query_count(schema, "sa", ["qi_a", "qi_b"]) == expected

    def test_sequential_budget(self):
        assert per_query_epsilon(AttackBudgetRegime.SEQUENTIAL, 10.0, 100, 1e-6) == pytest.approx(0.1)

    def test_advanced_exceeds_sequential_for_large_n(self):
        sequential = per_query_epsilon(AttackBudgetRegime.SEQUENTIAL, 10.0, 5000, 1e-6)
        advanced = per_query_epsilon(AttackBudgetRegime.ADVANCED, 10.0, 5000, 1e-6)
        assert advanced > sequential

    def test_coalition_gets_full_budget(self):
        assert per_query_epsilon(AttackBudgetRegime.COALITION, 7.0, 1000, 1e-6) == pytest.approx(7.0)

    def test_delta_split(self):
        assert per_query_delta(AttackBudgetRegime.SEQUENTIAL, 1e-4, 100) == pytest.approx(1e-6)
        assert per_query_delta(AttackBudgetRegime.COALITION, 1e-4, 100) == pytest.approx(1e-4)

    def test_invalid_inputs(self):
        with pytest.raises(AttackError):
            per_query_epsilon(AttackBudgetRegime.SEQUENTIAL, 10.0, 0, 1e-6)
        with pytest.raises(AttackError):
            per_query_epsilon(AttackBudgetRegime.SEQUENTIAL, -1.0, 10, 1e-6)


class TestNaiveBayesAttacker:
    def test_configuration_validation(self, correlated_table):
        schema = correlated_table.schema
        with pytest.raises(AttackError):
            NaiveBayesAttacker(schema=schema, sensitive="sa", quasi_identifiers=[])
        with pytest.raises(AttackError):
            NaiveBayesAttacker(schema=schema, sensitive="sa", quasi_identifiers=["sa"])

    def test_training_query_count_matches_formula(self, correlated_table):
        attacker = NaiveBayesAttacker(
            schema=correlated_table.schema, sensitive="sa", quasi_identifiers=["qi_a", "qi_b"]
        )
        assert len(attacker.training_queries()) == attacker.num_queries()

    def test_predict_before_train_raises(self, correlated_table):
        attacker = NaiveBayesAttacker(
            schema=correlated_table.schema, sensitive="sa", quasi_identifiers=["qi_a"]
        )
        with pytest.raises(AttackError):
            attacker.predict({"qi_a": 0})

    def test_attack_succeeds_against_exact_oracle(self, correlated_table):
        """Against un-noised answers the NBC learns the correlation (sanity
        check that the attack implementation actually has teeth)."""
        attacker = NaiveBayesAttacker(
            schema=correlated_table.schema, sensitive="sa", quasi_identifiers=["qi_a", "qi_b"]
        )
        issued = attacker.train(lambda query: execute_on_table(correlated_table, query))
        assert issued == attacker.num_queries()
        accuracy = attacker.accuracy(correlated_table, max_rows=400)
        assert accuracy > 0.4  # chance level is 0.1

    def test_attack_fails_against_heavily_noised_oracle(self, correlated_table):
        """With noise far larger than any count the attack collapses to chance."""
        rng = np.random.default_rng(1)
        attacker = NaiveBayesAttacker(
            schema=correlated_table.schema, sensitive="sa", quasi_identifiers=["qi_a", "qi_b"]
        )
        attacker.train(
            lambda query: execute_on_table(correlated_table, query)
            + float(rng.laplace(0, 50_000))
        )
        accuracy = attacker.accuracy(correlated_table, max_rows=400)
        assert accuracy < 0.3

    def test_negative_answers_clamped(self, correlated_table):
        attacker = NaiveBayesAttacker(
            schema=correlated_table.schema, sensitive="sa", quasi_identifiers=["qi_a"]
        )
        attacker.train(lambda _query: -5.0)
        # All counts collapse to zero; prediction still returns a legal value.
        assert 0 <= attacker.predict({"qi_a": 1}) <= 9


class TestAttackRunner:
    def test_attack_against_protected_system_is_near_chance(self, correlated_table):
        config = SystemConfig(
            cluster_size=200,
            num_providers=4,
            privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
            sampling=SamplingConfig(sampling_rate=0.3, min_clusters_for_approximation=2),
            seed=5,
        )
        system = FederatedAQPSystem.from_table(correlated_table, config=config)
        runner = AttackRunner(
            system=system,
            original_table=correlated_table,
            sensitive="sa",
            quasi_identifiers=("qi_a", "qi_b"),
            evaluation_rows=150,
        )
        outcome = runner.run(AttackBudgetRegime.SEQUENTIAL, Aggregation.COUNT, total_epsilon=1.0)
        assert outcome.num_queries == 1 + 10 + 10 * 7
        assert outcome.per_query_epsilon == pytest.approx(1.0 / outcome.num_queries)
        assert outcome.chance_accuracy == pytest.approx(0.1)
        # The protected system should keep the attacker near chance level.
        assert outcome.accuracy <= 0.3
