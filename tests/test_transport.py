"""Transport layer: codec round-trips, framer robustness, socket smoke.

Three concerns, in order of how the wire can betray you:

1. **Codec losslessness** — Hypothesis round-trip properties for *every*
   protocol message class (``ALL_MESSAGE_TYPES`` is iterated, so a new
   message cannot be added without a property here failing to cover it),
   plus the value types they carry (queries, budgets, reports, degraded
   local answers) and whole phase payloads including empty batches.
2. **Framer robustness** — partial-frame reads, truncated streams, garbage
   bytes, and hostile length prefixes must produce buffered waits or typed
   errors, never hangs or unbounded allocation.
3. **Socket smoke** — a real localhost federation over the socket
   transport, small rows, exercising connect/frame/dispatch/reply and the
   stats counters end to end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import SamplingConfig, SystemConfig, TransportConfig
from repro.core.accounting import QueryBudget
from repro.core.result import ProviderReport
from repro.core.system import FederatedAQPSystem
from repro.errors import ConfigurationError, ProtocolError, TransportError
from repro.federation.messages import (
    ALL_MESSAGE_TYPES,
    AllocationMessage,
    EstimateMessage,
    IngestAck,
    IngestRequest,
    QueryRequest,
    SummaryMessage,
)
from repro.federation.provider import LocalAnswer
from repro.federation.transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    InProcessTransport,
    LoopbackTransport,
    SocketTransport,
    WIRE_MAGIC,
    create_transport,
    deserialize,
    encode_frame,
    serialize,
)
from repro.query.model import Aggregation, Interval, RangeQuery
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

# -- strategies -----------------------------------------------------------------

_ids = st.integers(min_value=0, max_value=2**53 - 1)
_provider_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x10FF), max_size=12
)
# json round-trips every finite double exactly via repr; NaN/inf ride the
# non-strict tokens.  allow_nan exercises them too (compared via repr).
_floats = st.floats(allow_nan=False)


@st.composite
def _queries(draw):
    names = draw(
        st.lists(
            st.sampled_from(["age", "hours", "dept"]), min_size=1, max_size=3, unique=True
        )
    )
    ranges = {}
    for name in names:
        low = draw(st.integers(min_value=0, max_value=90))
        ranges[name] = Interval(low, draw(st.integers(min_value=low, max_value=99)))
    aggregation = draw(st.sampled_from(list(Aggregation)))
    return RangeQuery(aggregation, ranges)


@st.composite
def _query_requests(draw):
    seed_material = draw(
        st.none()
        | st.tuples()
        | st.lists(_ids, min_size=1, max_size=6).map(tuple)
    )
    return QueryRequest(
        query_id=draw(_ids),
        query=draw(_queries()),
        sampling_rate=draw(st.floats(min_value=1e-6, max_value=1.0 - 1e-6)),
        seed_material=seed_material,
    )


_summaries = st.builds(
    SummaryMessage,
    query_id=_ids,
    provider_id=_provider_ids,
    noisy_cluster_count=_floats,
    noisy_avg_proportion=_floats,
)
_allocations = st.builds(
    AllocationMessage, query_id=_ids, provider_id=_provider_ids, sample_size=_ids
)
_estimates = st.builds(
    EstimateMessage,
    query_id=_ids,
    provider_id=_provider_ids,
    value=_floats,
    smooth_sensitivity=_floats,
    approximated=st.booleans(),
)
_ingest_requests = st.builds(
    IngestRequest, provider_id=_provider_ids, num_rows=_ids, num_columns=_ids
)
_ingest_acks = st.builds(
    IngestAck,
    provider_id=_provider_ids,
    delta_watermark=_ids,
    layout_epoch=_ids,
    compacted=st.booleans(),
)

_MESSAGE_STRATEGIES = {
    QueryRequest: _query_requests(),
    SummaryMessage: _summaries,
    AllocationMessage: _allocations,
    EstimateMessage: _estimates,
    IngestRequest: _ingest_requests,
    IngestAck: _ingest_acks,
}

# Degraded local answers: a provider that approximated nothing (zero
# allocation, zero sampled clusters) still serialises exactly.
_reports = st.builds(
    ProviderReport,
    provider_id=_provider_ids,
    covering_clusters=_ids,
    allocation=_ids,
    sampled_clusters=_ids,
    approximated=st.booleans(),
    local_estimate=_floats,
    local_noise=_floats,
    smooth_sensitivity=_floats,
    rows_scanned=_ids,
    rows_available=_ids,
    exact_local_answer=st.none() | st.integers(min_value=-(2**53), max_value=2**53),
)
_local_answers = st.builds(LocalAnswer, message=_estimates, report=_reports)
_budgets = st.builds(
    QueryBudget,
    epsilon_allocation=st.floats(min_value=0.0, max_value=10.0),
    epsilon_sampling=st.floats(min_value=0.0, max_value=10.0),
    epsilon_estimation=st.floats(min_value=0.0, max_value=10.0),
    delta=st.floats(min_value=0.0, max_value=1.0),
)


def _wire_roundtrip(value):
    """serialize → frame → deframe → deserialize, asserting frame hygiene."""
    framed = encode_frame(serialize(value))
    frames = FrameDecoder().feed(framed)
    assert len(frames) == 1
    return deserialize(frames[0])


# -- 1. codec round-trips -------------------------------------------------------


def test_every_message_class_has_a_roundtrip_strategy():
    """The registry and the property coverage cannot drift apart."""
    assert set(_MESSAGE_STRATEGIES) == set(ALL_MESSAGE_TYPES)


@pytest.mark.parametrize(
    "message_type", ALL_MESSAGE_TYPES, ids=[cls.__name__ for cls in ALL_MESSAGE_TYPES]
)
def test_message_roundtrip_identity(message_type):
    @given(_MESSAGE_STRATEGIES[message_type])
    def check(message):
        assert _wire_roundtrip(message) == message

    check()


@given(st.lists(_query_requests(), max_size=5), _budgets)
def test_summary_phase_payload_roundtrip(requests, budget):
    # The actual summary-phase envelope, empty batches included.
    payload = {"requests": requests, "epsilon": budget.epsilon_allocation}
    assert _wire_roundtrip(payload) == payload


@given(st.lists(_local_answers, max_size=4), _budgets)
def test_answer_phase_payload_roundtrip(answers, budget):
    # Reply shape of the answer phase — degraded answers (approximated
    # False, zero allocations) and the empty batch included.
    payload = {"answers": answers, "reuse": [False] * len(answers), "budget": budget}
    decoded = _wire_roundtrip(payload)
    assert decoded == payload
    for original, restored in zip(answers, decoded["answers"]):
        assert type(restored) is LocalAnswer
        assert repr(restored.message.value) == repr(original.message.value)


@given(st.floats(allow_nan=False, allow_infinity=True))
def test_float_roundtrip_is_bitexact(value):
    decoded = _wire_roundtrip({"x": value})["x"]
    assert np.array([decoded]).tobytes() == np.array([value]).tobytes()


def test_nan_roundtrips_as_nan():
    # JSON's NaN token carries no payload bits, so the claim for NaN is
    # value-level (still-a-NaN), not bit-level like every other double.
    decoded = _wire_roundtrip({"x": float("nan")})["x"]
    assert np.isnan(decoded)


def test_numpy_arrays_and_tuples_survive_with_types():
    payload = {
        "positions": np.arange(7, dtype=np.int64),
        "weights": np.linspace(0.0, 1.0, 5),
        "key": (1, "a", (2.5, None)),
    }
    decoded = _wire_roundtrip(payload)
    assert isinstance(decoded["key"], tuple)
    assert decoded["key"] == payload["key"]
    for name in ("positions", "weights"):
        assert decoded[name].dtype == payload[name].dtype
        assert np.array_equal(decoded[name], payload[name])


def test_unserialisable_values_raise_typed_errors():
    with pytest.raises(TransportError):
        serialize(object())
    with pytest.raises(TransportError):
        serialize({"__dc__": "reserved key"})
    with pytest.raises(TransportError):
        deserialize(b"not json at all {{{")
    with pytest.raises(TransportError):
        deserialize(serialize({"x": 1}).replace(b"x", b"\xff"))


# -- 2. framer robustness -------------------------------------------------------


def test_partial_frames_buffer_until_complete():
    payload = serialize({"hello": list(range(50))})
    framed = encode_frame(payload)
    decoder = FrameDecoder()
    for position in range(len(framed) - 1):
        assert decoder.feed(framed[position : position + 1]) == []
    assert decoder.feed(framed[-1:]) == [payload]
    assert decoder.pending_bytes == 0


def test_back_to_back_frames_split_at_arbitrary_boundaries():
    payloads = [serialize({"i": i, "pad": "x" * i}) for i in range(6)]
    stream = b"".join(encode_frame(p) for p in payloads)
    rng = np.random.default_rng(7)
    for _ in range(25):
        cuts = sorted(rng.integers(0, len(stream) + 1, size=4))
        chunks = [stream[a:b] for a, b in zip([0, *cuts], [*cuts, len(stream)])]
        decoder = FrameDecoder()
        collected = [frame for chunk in chunks for frame in decoder.feed(chunk)]
        assert collected == payloads
        assert decoder.pending_bytes == 0


def test_garbage_stream_raises_immediately_not_hangs():
    decoder = FrameDecoder()
    with pytest.raises(TransportError, match="magic"):
        decoder.feed(b"GET / HTTP/1.1\r\n\r\n")
    # Poisoned: the stream lost sync, later feeds must not pretend otherwise.
    with pytest.raises(TransportError):
        decoder.feed(b"")


def test_truncated_garbage_after_valid_frame():
    payload = serialize([1, 2, 3])
    decoder = FrameDecoder()
    assert decoder.feed(encode_frame(payload) + b"junk")[0] == payload
    with pytest.raises(TransportError, match="magic"):
        decoder.feed(b"kjunkjunk")


def test_oversized_frame_rejected_on_both_sides():
    with pytest.raises(TransportError, match="ceiling"):
        encode_frame(b"x" * 2049, max_frame_bytes=2048)
    # A hostile length prefix is rejected from the header alone — no
    # buffering of data that will never fit.
    import struct

    hostile = WIRE_MAGIC + struct.pack("!I", 2**31)
    decoder = FrameDecoder(max_frame_bytes=2048)
    with pytest.raises(TransportError, match="ceiling"):
        decoder.feed(hostile)


def test_header_shorter_than_magic_waits():
    decoder = FrameDecoder()
    assert decoder.feed(WIRE_MAGIC[:2]) == []
    assert decoder.pending_bytes == 2


# -- 3. transports against a live federation ------------------------------------

_SCHEMA = Schema(
    (Dimension("age", 0, 99), Dimension("hours", 0, 49), Dimension("dept", 0, 9))
)


def _table(rows: int = 600) -> Table:
    rng = np.random.default_rng(5)
    return Table(
        _SCHEMA,
        {
            "age": rng.integers(0, 100, rows),
            "hours": np.minimum(49, rng.poisson(12, rows)),
            "dept": rng.integers(0, 10, rows),
        },
    )


def _config(**transport_kwargs) -> SystemConfig:
    return SystemConfig(
        cluster_size=50,
        num_providers=2,
        sampling=SamplingConfig(sampling_rate=0.3, min_clusters_for_approximation=3),
        transport=TransportConfig(**transport_kwargs),
        seed=11,
    )


_QUERIES = [
    RangeQuery.count({"age": (10, 70)}),
    RangeQuery.count({"age": (0, 99), "hours": (5, 25)}),
]


def test_socket_smoke_localhost():
    """End-to-end over real TCP: answers match in-process, wire stats move."""
    with FederatedAQPSystem.from_table(_table(), config=_config()) as reference:
        expected = reference.execute_batch(_QUERIES, compute_exact=False).values
        assert reference.transport_stats().messages == 0
    with FederatedAQPSystem.from_table(
        _table(), config=_config(kind="socket")
    ) as system:
        assert isinstance(system.aggregator.transport, SocketTransport)
        first = system.execute_batch(_QUERIES, compute_exact=False).values
        stats = system.transport_stats()
        assert first == expected
        # summary + answer + forget, one request and one reply frame each,
        # for each of the two providers.
        assert stats.messages == 12
        assert stats.bytes_sent > 24 * len(WIRE_MAGIC)
        assert stats.frames_duplicated == 0
        # The connections stay up across batches.
        second = system.execute_batch(_QUERIES, compute_exact=False)
        assert system.transport_stats().messages == 24
        assert second.num_queries == len(_QUERIES)
    # close() is idempotent and final.
    system.aggregator.transport.close()
    system.aggregator.transport.close()


def test_socket_transport_call_after_close_raises():
    table = _table(200)
    with FederatedAQPSystem.from_table(
        table, config=_config(kind="socket")
    ) as system:
        transport = system.aggregator.transport
        system.execute_batch(_QUERIES[:1], compute_exact=False)
    with pytest.raises(TransportError):
        transport.forget_batch(0, [999])


def test_loopback_surfaces_provider_errors_typed():
    """An exception on the provider side crosses the wire as its own type."""
    with FederatedAQPSystem.from_table(
        _table(200), config=_config(kind="loopback")
    ) as system:
        transport = system.aggregator.transport
        assert isinstance(transport, LoopbackTransport)
        with pytest.raises(ProtocolError):
            transport.answer_batch(
                0,
                [AllocationMessage(query_id=424242, provider_id="provider-0", sample_size=3)],
                QueryBudget(1.0, 1.0, 1.0, 1e-3),
                False,
            )


def test_create_transport_dispatch_and_validation():
    providers = FederatedAQPSystem.from_table(_table(200), config=_config()).providers
    assert isinstance(create_transport(None, providers), InProcessTransport)
    assert isinstance(
        create_transport(TransportConfig(kind="loopback"), providers), LoopbackTransport
    )
    with pytest.raises(ConfigurationError):
        TransportConfig(kind="carrier-pigeon")
    with pytest.raises(ConfigurationError):
        TransportConfig(shard_workers=0)
    with pytest.raises(ConfigurationError):
        TransportConfig(max_frame_bytes=16)


def test_transport_config_rejects_process_backend_combination():
    from repro.config import ParallelismConfig

    with pytest.raises(ConfigurationError, match="process"):
        SystemConfig(
            transport=TransportConfig(kind="loopback"),
            parallelism=ParallelismConfig(enabled=True, backend="process"),
        )


def test_default_max_frame_fits_protocol_payloads():
    # A whole summary-phase request batch stays far below the frame ceiling.
    requests = [
        QueryRequest(query_id=i, query=_QUERIES[i % 2], sampling_rate=0.2)
        for i in range(100)
    ]
    frame = encode_frame(serialize({"requests": requests, "epsilon": 0.5}))
    assert len(frame) < DEFAULT_MAX_FRAME_BYTES // 100
