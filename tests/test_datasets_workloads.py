"""Tests for the synthetic dataset generators and workload generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.adult import (
    ADULT_DIMENSIONS,
    ADULT_TENSOR_DIMENSIONS,
    AdultSyntheticGenerator,
)
from repro.datasets.amazon import (
    AMAZON_DIMENSIONS,
    AMAZON_TENSOR_DIMENSIONS,
    AmazonReviewSyntheticGenerator,
)
from repro.datasets.distributions import mixture_integers, skewed_integers, zipf_integers
from repro.errors import DatasetError, WorkloadError
from repro.query.model import Aggregation
from repro.workloads.generator import Workload, WorkloadGenerator


class TestDistributions:
    def test_zipf_within_domain_and_skewed(self):
        values = zipf_integers(0, 9, 20_000, rng=0)
        assert values.min() >= 0 and values.max() <= 9
        counts = np.bincount(values, minlength=10)
        assert counts[0] > counts[5] > 0

    def test_mixture_within_domain(self):
        values = mixture_integers(10, 99, 5_000, num_modes=3, rng=1)
        assert values.min() >= 10 and values.max() <= 99

    def test_dispatch(self):
        for kind in ("zipf", "mixture", "uniform"):
            values = skewed_integers(0, 9, 100, kind=kind, rng=2)
            assert values.shape == (100,)

    def test_invalid_inputs(self):
        with pytest.raises(DatasetError):
            zipf_integers(5, 1, 10)
        with pytest.raises(DatasetError):
            zipf_integers(0, 9, 10, exponent=0)
        with pytest.raises(DatasetError):
            mixture_integers(0, 9, 10, num_modes=0)
        with pytest.raises(DatasetError):
            skewed_integers(0, 9, 10, kind="lognormal")

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_domains_respected_property(self, a, b):
        low, high = min(a, b), max(a, b)
        values = skewed_integers(low, high, 200, kind="zipf", rng=0)
        assert values.min() >= low
        assert values.max() <= high


class TestAdultGenerator:
    def test_schema_has_fifteen_attributes(self):
        assert len(ADULT_DIMENSIONS) == 15

    def test_table_respects_domains(self):
        table = AdultSyntheticGenerator(num_rows=2_000, seed=1).table()
        assert table.num_rows == 2_000
        for dimension in table.schema:
            column = table.column(dimension.name)
            assert column.min() >= dimension.low
            assert column.max() <= dimension.high

    def test_reproducible_with_seed(self):
        a = AdultSyntheticGenerator(num_rows=500, seed=9).table()
        b = AdultSyntheticGenerator(num_rows=500, seed=9).table()
        np.testing.assert_array_equal(a.column("age"), b.column("age"))

    def test_count_tensor_keeps_requested_dimensions(self):
        tensor = AdultSyntheticGenerator(num_rows=3_000, seed=2).count_tensor()
        assert tensor.schema.dimension_names == ADULT_TENSOR_DIMENSIONS
        assert tensor.schema.has_measure
        assert tensor.total_measure() == 3_000

    def test_rejects_zero_rows(self):
        with pytest.raises(DatasetError):
            AdultSyntheticGenerator(num_rows=0)


class TestAmazonGenerator:
    def test_schema_has_six_dimensions(self):
        assert len(AMAZON_DIMENSIONS) == 6

    def test_ratings_skewed_towards_five(self):
        table = AmazonReviewSyntheticGenerator(num_rows=20_000, seed=3).table()
        ratings = table.column("rating")
        assert (ratings == 5).sum() > (ratings == 1).sum()
        assert ratings.min() >= 1 and ratings.max() <= 5

    def test_count_tensor(self):
        tensor = AmazonReviewSyntheticGenerator(num_rows=5_000, seed=4).count_tensor()
        assert tensor.schema.dimension_names == AMAZON_TENSOR_DIMENSIONS
        assert tensor.total_measure() == 5_000


class TestWorkloadGenerator:
    def test_generates_distinct_queries_with_requested_shape(self, small_schema):
        generator = WorkloadGenerator(schema=small_schema, rng=0)
        workload = generator.generate(15, 2, Aggregation.COUNT)
        assert len(workload) == 15
        assert len({query.to_sql() for query in workload}) == 15
        assert all(query.num_dimensions == 2 for query in workload)
        assert all(query.aggregation is Aggregation.COUNT for query in workload)

    def test_ranges_lie_within_domains(self, small_schema):
        generator = WorkloadGenerator(schema=small_schema, rng=1)
        for query in generator.generate(20, 3, Aggregation.SUM):
            for name, interval in query.ranges.items():
                dimension = small_schema.dimension(name)
                assert dimension.low <= interval.low <= interval.high <= dimension.high

    def test_coverage_bounds_respected(self, small_schema):
        generator = WorkloadGenerator(
            schema=small_schema, min_coverage=0.5, max_coverage=0.5, rng=2
        )
        query = generator.random_query(1, Aggregation.COUNT)
        (interval,) = query.ranges.values()
        dimension = small_schema.dimension(query.dimensions[0])
        assert interval.width == pytest.approx(0.5 * dimension.domain_size, abs=1)

    def test_accept_predicate_filters(self, small_schema):
        generator = WorkloadGenerator(schema=small_schema, rng=3)
        workload = generator.generate(
            5, 1, Aggregation.COUNT, accept=lambda query: "age" in query.ranges
        )
        assert all("age" in query.ranges for query in workload)

    def test_impossible_predicate_raises(self, small_schema):
        generator = WorkloadGenerator(schema=small_schema, rng=4)
        with pytest.raises(WorkloadError):
            generator.generate(
                3, 1, Aggregation.COUNT, accept=lambda _q: False, max_attempts_per_query=5
            )

    def test_dimension_subset_respected(self, small_schema):
        generator = WorkloadGenerator(schema=small_schema, dimensions=("age", "hours"), rng=5)
        workload = generator.generate(10, 2, Aggregation.COUNT)
        for query in workload:
            assert set(query.dimensions) <= {"age", "hours"}

    def test_too_many_dimensions_rejected(self, small_schema):
        generator = WorkloadGenerator(schema=small_schema, rng=6)
        with pytest.raises(WorkloadError):
            generator.random_query(4, Aggregation.COUNT)

    def test_reproducible_with_seed(self, small_schema):
        first = WorkloadGenerator(schema=small_schema, rng=7).generate(5, 2)
        second = WorkloadGenerator(schema=small_schema, rng=7).generate(5, 2)
        assert [q.to_sql() for q in first] == [q.to_sql() for q in second]

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="empty", queries=())

    def test_invalid_coverage_rejected(self, small_schema):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(schema=small_schema, min_coverage=0.9, max_coverage=0.1)
