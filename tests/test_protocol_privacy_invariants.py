"""Protocol-level privacy and consistency invariants.

These tests assert the properties Section 5.4 argues for: what leaves a
provider is never the raw local answer, the per-query charge matches the
``hp`` split regardless of the number of providers, repeated executions of
the same query produce different randomness (the mechanisms are actually
random), and the SMC path injects exactly one noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PrivacyConfig, SamplingConfig, SystemConfig
from repro.core.accounting import QueryBudget, query_spend
from repro.core.system import FederatedAQPSystem
from repro.query.model import RangeQuery


@pytest.fixture
def system(small_table):
    config = SystemConfig(
        cluster_size=100,
        num_providers=4,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.3, min_clusters_for_approximation=3),
        seed=101,
    )
    return FederatedAQPSystem.from_table(small_table, config=config)


QUERY = RangeQuery.count({"age": (10, 80)})


class TestReleasesAreNoised:
    def test_released_values_differ_from_local_exact_answers(self, system):
        result = system.execute(QUERY)
        for provider, report in zip(system.providers, result.provider_reports):
            local_exact = provider.exact_answer(QUERY).value
            # The value put on the wire is the noised estimate, which should
            # essentially never equal the exact local answer.
            assert report.released_value != local_exact

    def test_approximated_providers_do_not_scan_everything(self, system):
        result = system.execute(QUERY, sampling_rate=0.2)
        for report in result.provider_reports:
            if report.approximated:
                assert report.rows_scanned < report.rows_available

    def test_randomness_differs_across_repetitions(self, system):
        values = {round(system.execute(QUERY, compute_exact=False).value, 6) for _ in range(5)}
        assert len(values) > 1

    def test_noise_scale_grows_when_epsilon_shrinks(self, system):
        small_eps = [
            abs(system.execute(QUERY, epsilon=0.05, compute_exact=False).noise_injected)
            for _ in range(6)
        ]
        large_eps = [
            abs(system.execute(QUERY, epsilon=5.0, compute_exact=False).noise_injected)
            for _ in range(6)
        ]
        assert np.mean(large_eps) < np.mean(small_eps)


class TestBudgetAccounting:
    def test_query_charge_is_independent_of_provider_count(self):
        budget = QueryBudget(0.1, 0.1, 0.8, 1e-3)
        assert query_spend(budget, 1).epsilon == pytest.approx(query_spend(budget, 8).epsilon)

    def test_epsilon_override_is_reflected_in_result(self, system):
        result = system.execute(QUERY, epsilon=0.3, compute_exact=False)
        assert result.epsilon_spent == pytest.approx(0.3)
        assert result.delta_spent == pytest.approx(1e-3)

    def test_each_execution_charges_the_end_user_once(self, small_table):
        config = SystemConfig(
            cluster_size=100,
            num_providers=4,
            privacy=PrivacyConfig(epsilon=0.5, delta=1e-3),
            sampling=SamplingConfig(sampling_rate=0.3, min_clusters_for_approximation=3),
            seed=5,
        )
        system = FederatedAQPSystem.from_table(
            small_table, config=config, total_epsilon=5.0, total_delta=1.0
        )
        for expected_remaining in (4.5, 4.0, 3.5):
            system.execute(QUERY, compute_exact=False)
            assert system.remaining_budget()[0] == pytest.approx(expected_remaining)


class TestSMCPath:
    def test_smc_injects_single_noise_at_aggregator(self, system):
        result = system.execute(QUERY, use_smc=True, compute_exact=False)
        assert result.used_smc
        # Providers do not add local noise in the SMC configuration.
        assert all(report.local_noise == 0.0 for report in result.provider_reports)
        assert result.noise_injected != 0.0

    def test_smc_and_plain_paths_agree_up_to_noise(self, system):
        plain = system.execute(QUERY, use_smc=False)
        smc = system.execute(QUERY, use_smc=True)
        exact = plain.exact_value
        assert smc.exact_value == exact
        # Both estimates should live in the same neighbourhood of the truth.
        assert abs(plain.value - exact) < 1.5 * exact + 2000
        assert abs(smc.value - exact) < 1.5 * exact + 2000

    def test_smc_noise_variance_not_larger_than_sum_of_provider_noises(self, system):
        """The point of the SMC option: one calibrated noise instead of four."""
        smc_noise = [
            abs(system.execute(QUERY, use_smc=True, compute_exact=False).noise_injected)
            for _ in range(8)
        ]
        plain_noise = [
            abs(system.execute(QUERY, use_smc=False, compute_exact=False).noise_injected)
            for _ in range(8)
        ]
        assert np.mean(smc_noise) <= 2.0 * np.mean(plain_noise)


class TestTraceConsistency:
    def test_rows_scanned_bounded_by_rows_available(self, system):
        for sampling_rate in (0.1, 0.3, 0.6):
            result = system.execute(QUERY, sampling_rate=sampling_rate, compute_exact=False)
            assert result.trace.rows_scanned <= result.trace.rows_available
            assert result.trace.clusters_scanned <= result.trace.clusters_available

    def test_message_count_matches_protocol_shape(self, system):
        result = system.execute(QUERY, compute_exact=False)
        providers = system.num_providers
        # 1 broadcast (per provider) + summary + allocation + estimate per
        # provider = 4 messages per provider for the plain path.
        assert result.trace.messages_sent == 4 * providers

    def test_provider_reports_cover_every_provider(self, system):
        result = system.execute(QUERY, compute_exact=False)
        assert {report.provider_id for report in result.provider_reports} == {
            provider.provider_id for provider in system.providers
        }
