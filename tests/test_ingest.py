"""Streaming ingestion: delta stores, snapshot isolation, compaction.

The equivalence gates of the subsystem (see ``docs/ingestion.md``):

(a) **compact-then-query ≡ fresh rebuild** — after a compaction, layout,
    metadata, and DP answers are bit-identical to a provider/system built
    from scratch on the union of rows, across the serial, thread, and
    process backends;
(b) **snapshot isolation** — a batch whose sessions opened before an ingest
    returns bit-identical answers whether or not the ingest ran between its
    protocol phases;

plus the satellite behaviours: eager process-pool invalidation on layout
rebuilds, the ``ingest`` network traffic class, selective cache retention
across compactions, empty-born providers, and the scheduler's ingest queue.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    IngestConfig,
    ParallelismConfig,
    ServiceConfig,
    SystemConfig,
)
from repro.core.accounting import split_query_budget
from repro.core.system import FederatedAQPSystem
from repro.errors import IngestError, ProtocolError, ServiceOverloadedError
from repro.federation.messages import QueryRequest
from repro.federation.provider import DataProvider
from repro.ingest import CompactionPolicy, Compactor, DeltaStore
from repro.query.model import RangeQuery
from repro.service import SessionScheduler, TenantRegistry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

SCHEMA = Schema((Dimension("a", 0, 49), Dimension("b", 0, 19)))
BUDGET = split_query_budget(SystemConfig().privacy)


def make_table(num_rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "a": rng.integers(0, 50, num_rows),
            "b": rng.integers(0, 20, num_rows),
        },
    )


def make_provider(table: Table, **kwargs) -> DataProvider:
    kwargs.setdefault("cluster_size", 8)
    kwargs.setdefault("rng", 11)
    return DataProvider(provider_id="p0", table=table, **kwargs)


def keyed_requests(queries, base: int = 0):
    return [
        QueryRequest(
            query_id=base + index,
            query=query,
            sampling_rate=0.2,
            seed_material=(7, index),
        )
        for index, query in enumerate(queries)
    ]


def run_protocol(provider: DataProvider, queries, *, ingest_between: Table | None = None):
    """Drive summary -> (optional ingest) -> answer with keyed streams."""
    requests = keyed_requests(queries)
    summaries = provider.prepare_summary_batch(requests, BUDGET.epsilon_allocation)
    if ingest_between is not None:
        provider.ingest_rows(ingest_between, auto_compact=False)
    from repro.federation.messages import AllocationMessage

    allocations = [
        AllocationMessage(query_id=request.query_id, provider_id="p0", sample_size=2)
        for request in requests
    ]
    answers = provider.answer_batch(allocations, BUDGET)
    provider.forget_batch([request.query_id for request in requests])
    return summaries, answers


QUERIES = [
    RangeQuery.count({"a": (5, 30)}),
    RangeQuery.count({"b": (3, 9)}),
    RangeQuery.count({"a": (0, 49), "b": (0, 19)}),
]


class TestDeltaStore:
    def test_watermark_advances_and_resets(self):
        store = DeltaStore(SCHEMA)
        assert store.watermark == 0
        assert store.append(make_table(5, 1)) == 5
        assert store.append(make_table(3, 2)) == 8
        drained = store.take_all()
        assert drained.num_rows == 8
        assert store.watermark == 0

    def test_append_validates_schema_and_domain(self):
        store = DeltaStore(SCHEMA)
        other = Schema((Dimension("a", 0, 49),))
        with pytest.raises(IngestError):
            store.append(Table(other, {"a": np.array([1])}))
        with pytest.raises(IngestError):
            store.append(
                Table(SCHEMA, {"a": np.array([999]), "b": np.array([1])})
            )

    def test_query_values_matches_brute_force(self):
        store = DeltaStore(SCHEMA)
        chunks = [make_table(7, 3), make_table(5, 4), make_table(9, 5)]
        for chunk in chunks:
            store.append(chunk)
        full = Table.concat(chunks)
        for watermark in (0, 4, 7, 12, 21):
            values, scanned = store.query_values(QUERIES, [watermark] * len(QUERIES))
            visible = full.slice(0, watermark)
            for index, query in enumerate(QUERIES):
                mask = np.ones(visible.num_rows, dtype=bool)
                for name, interval in query.ranges.items():
                    column = visible.column(name)
                    mask &= (column >= interval.low) & (column <= interval.high)
                assert values[index] == int(mask.sum())
            assert np.all(scanned <= watermark)

    def test_mini_zone_maps_skip_disjoint_chunks(self):
        store = DeltaStore(SCHEMA)
        low_rows = Table(SCHEMA, {"a": np.arange(5), "b": np.arange(5) % 20})
        store.append(low_rows)
        query = RangeQuery.count({"a": (40, 49)})
        values, scanned = store.query_values([query], [5])
        assert values[0] == 0
        assert scanned[0] == 0  # zone map pruned the only chunk

    def test_rows_upto_slices_mid_chunk(self):
        store = DeltaStore(SCHEMA)
        store.append(make_table(6, 1))
        store.append(make_table(6, 2))
        assert store.rows_upto(0).num_rows == 0
        assert store.rows_upto(4).num_rows == 4
        assert store.rows_upto(9).num_rows == 9
        assert store.rows_upto(12).num_rows == 12


class TestIngestValidation:
    def test_aggregator_ingest_is_all_or_nothing(self):
        """A bad partition must not leave the federation half-applied."""
        config = SystemConfig(cluster_size=8, num_providers=2, seed=3)
        system = FederatedAQPSystem.from_table(make_table(64, 1), config=config)
        good = make_table(5, 2)
        bad = Table(SCHEMA, {"a": np.array([999]), "b": np.array([1])})
        with pytest.raises(IngestError):
            system.aggregator.ingest([good, bad])
        # Provider 0's buffer was never touched despite its valid partition.
        assert system.total_delta_rows == 0
        assert system.aggregator.network.stats.ingest_messages == 0

    def test_scheduler_rejects_malformed_ingest_at_submit(self):
        config = SystemConfig(cluster_size=8, num_providers=2, seed=3)
        system = FederatedAQPSystem.from_table(make_table(64, 1), config=config)
        registry = TenantRegistry()
        registry.register("t1", total_epsilon=10.0)
        scheduler = SessionScheduler(system, registry)
        bad = Table(SCHEMA, {"a": np.array([999]), "b": np.array([1])})
        with pytest.raises(IngestError):
            scheduler.submit_ingest(bad, tenant_id="t1")
        # Nothing queued, nothing attributed: the drain is unaffected.
        assert scheduler.num_pending_ingest == 0
        assert registry.get("t1").rows_ingested == 0
        assert scheduler.drain() == []


class TestSnapshotIsolation:
    def test_pre_ingest_batch_is_bit_identical_under_concurrent_ingest(self):
        """Gate (b): ingest between phases never changes pinned answers."""
        base = make_table(120, 1)
        extra = make_table(60, 2)
        quiet = make_provider(base)
        busy = make_provider(base)
        summaries_a, answers_a = run_protocol(quiet, QUERIES)
        summaries_b, answers_b = run_protocol(busy, QUERIES, ingest_between=extra)
        assert summaries_a == summaries_b
        assert [a.message for a in answers_a] == [a.message for a in answers_b]
        assert [a.report for a in answers_a] == [a.report for a in answers_b]
        # The ingest did land: the next batch sees the new watermark.
        assert busy.delta_watermark == 60
        _, later = run_protocol(busy, QUERIES)
        assert later[2].report.rows_available == 180

    def test_sessions_pin_watermark_at_summary_time(self):
        provider = make_provider(make_table(64, 1))
        provider.ingest_rows(make_table(10, 2), auto_compact=False)
        requests = keyed_requests(QUERIES)
        provider.prepare_summary_batch(requests, BUDGET.epsilon_allocation)
        assert all(
            session.delta_watermark == 10
            for session in provider._sessions.values()
        )
        provider.forget_batch([request.query_id for request in requests])

    def test_delta_rows_change_post_snapshot_answers(self):
        provider = make_provider(make_table(64, 1))
        full_box = [RangeQuery.count({"a": (0, 49)})]
        _, before = run_protocol(provider, full_box)
        provider.ingest_rows(make_table(30, 2), auto_compact=False)
        _, after = run_protocol(provider, full_box)
        # Same keyed noise stream, 30 more represented individuals exactly.
        assert after[0].report.rows_available - before[0].report.rows_available == 30

    def test_compact_refuses_open_sessions(self):
        provider = make_provider(make_table(64, 1))
        provider.ingest_rows(make_table(5, 2), auto_compact=False)
        requests = keyed_requests(QUERIES[:1])
        provider.prepare_summary_batch(requests, BUDGET.epsilon_allocation)
        with pytest.raises(ProtocolError):
            provider.compact()
        provider.forget_batch([requests[0].query_id])
        assert provider.compact().rows_folded == 5


class TestCompactionEquivalence:
    @pytest.mark.parametrize(
        "policy,intra",
        [
            ("sequential", None),
            ("sequential", "b"),
            ("sorted", None),
            ("sorted", "a"),
            ("sorted", "b"),  # ineligible: full-rebuild fallback path
        ],
    )
    def test_provider_equals_fresh_union_provider(self, policy, intra):
        """Gate (a), provider level, incremental and fallback paths."""
        base = make_table(100, 1)
        deltas = [make_table(17, 2), make_table(23, 3)]
        grown = make_provider(
            base, clustering_policy=policy, intra_sort_by=intra, rng=5
        )
        for delta in deltas:
            grown.ingest_rows(delta, auto_compact=False)
        report = grown.compact()
        assert report.rows_folded == 40
        fresh = make_provider(
            Table.concat([base] + deltas),
            clustering_policy=policy,
            intra_sort_by=intra,
            rng=5,
        )
        assert grown.num_clusters == fresh.num_clusters
        for mine, theirs in zip(grown.clustered.clusters, fresh.clustered.clusters):
            assert mine.cluster_id == theirs.cluster_id
            for name in SCHEMA.column_names:
                assert np.array_equal(
                    mine.rows.column(name), theirs.rows.column(name)
                )
        mine_layout, theirs_layout = grown.clustered.layout(), fresh.clustered.layout()
        for name in mine_layout.columns:
            assert mine_layout.columns[name].dtype == theirs_layout.columns[name].dtype
            assert np.array_equal(
                mine_layout.columns[name], theirs_layout.columns[name]
            )
        assert np.array_equal(mine_layout.segment_sums, theirs_layout.segment_sums)
        # Identical keyed-stream protocol answers (same rng seed => same
        # stream entropy for both providers).
        _, answers_grown = run_protocol(grown, QUERIES)
        _, answers_fresh = run_protocol(fresh, QUERIES)
        assert [a.message for a in answers_grown] == [a.message for a in answers_fresh]
        if policy == "sorted" and intra == "b":
            assert not report.incremental
        else:
            assert report.incremental

    def test_incremental_fold_reuses_untouched_prefix(self):
        base = make_table(96, 1)  # 12 full clusters of 8
        grown = make_provider(base)
        before = grown.clustered.clusters
        grown.ingest_rows(make_table(10, 2), auto_compact=False)
        report = grown.compact()
        assert report.incremental
        assert report.first_affected_position == 12
        # Prefix Cluster objects are shared, not copied.
        assert grown.clustered.clusters[:12] == before[:12]
        assert all(
            mine is theirs
            for mine, theirs in zip(grown.clustered.clusters[:12], before[:12])
        )

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_system_level_equivalence_across_backends(self, backend):
        """Gate (a), system level: ingest+auto-compact vs union build."""
        parallelism = (
            ParallelismConfig()
            if backend == "serial"
            else ParallelismConfig(enabled=True, backend=backend)
        )
        config = SystemConfig(
            cluster_size=8,
            num_providers=3,
            seed=7,
            ingest=IngestConfig(max_delta_rows=10),
            parallelism=parallelism,
        )
        base, delta = make_table(150, 1), make_table(60, 2)
        tokens = [(1, index) for index in range(len(QUERIES))]
        warm = [RangeQuery.count({"a": (0, 4)})]
        with FederatedAQPSystem.from_table(base, config=config) as grown:
            grown.execute_batch(warm, seed_tokens=[(9, 9)])
            receipts = grown.ingest(delta)
            assert all(receipt.compacted for receipt in receipts)
            result_grown = grown.execute_batch(QUERIES, seed_tokens=tokens)
            unions = [provider.table for provider in grown.providers]
        with FederatedAQPSystem.from_partitions(unions, config=config) as fresh:
            fresh.execute_batch(warm, seed_tokens=[(9, 9)])
            result_fresh = fresh.execute_batch(QUERIES, seed_tokens=tokens)
        assert [r.value for r in result_grown.results] == [
            r.value for r in result_fresh.results
        ]
        assert [r.exact_value for r in result_grown.results] == [
            r.exact_value for r in result_fresh.results
        ]

    def test_epoch_bumps_and_watermark_resets(self):
        provider = make_provider(make_table(50, 1))
        assert provider.snapshot() == (0, 0)
        provider.ingest_rows(make_table(5, 2), auto_compact=False)
        assert provider.snapshot() == (0, 5)
        provider.compact()
        assert provider.snapshot() == (1, 0)
        provider.rebuild_layout()
        assert provider.snapshot() == (2, 0)

    def test_rebuild_layout_folds_pending_deltas(self):
        provider = make_provider(make_table(50, 1))
        provider.ingest_rows(make_table(14, 2), auto_compact=False)
        provider.rebuild_layout()
        assert provider.delta_watermark == 0
        assert provider.num_rows == 64
        assert provider.table.num_rows == 64


class TestCompactionPolicy:
    def test_thresholds(self):
        policy = CompactionPolicy(max_delta_rows=100, max_delta_fraction=0.5)
        assert not policy.due(0, 1000)
        assert not policy.due(99, 1000)
        assert policy.due(100, 1000)
        assert policy.due(60, 100)  # fraction trigger
        assert not policy.due(40, 100)

    def test_auto_compact_trips_on_threshold(self):
        provider = make_provider(
            make_table(40, 1), ingest_config=IngestConfig(max_delta_rows=20)
        )
        first = provider.ingest_rows(make_table(12, 2))
        assert not first.compacted and first.delta_watermark == 12
        second = provider.ingest_rows(make_table(12, 3))
        assert second.compacted and second.delta_watermark == 0
        assert second.layout_epoch == 1
        assert provider.num_rows == 64

    def test_compactor_helper(self):
        provider = make_provider(make_table(40, 1))
        compactor = Compactor(CompactionPolicy(max_delta_rows=8))
        assert compactor.maybe_compact(provider) is None
        provider.ingest_rows(make_table(9, 2), auto_compact=False)
        report = compactor.maybe_compact(provider)
        assert report is not None and report.rows_folded == 9


class TestCacheRetention:
    def _cached_provider(self):
        provider = make_provider(
            Table(
                SCHEMA,
                {
                    # Two well-separated value regions on "a".
                    "a": np.concatenate([np.full(40, 5), np.full(40, 45)]),
                    "b": np.tile(np.arange(20), 4),
                },
            ),
            cache_config=CacheConfig(enabled=True),
        )
        return provider

    def test_compaction_retains_disjoint_entries_and_purges_overlapping(self):
        provider = self._cached_provider()
        low = RangeQuery.count({"a": (0, 9)})
        high = RangeQuery.count({"a": (40, 49)})
        requests = keyed_requests([low, high])
        first = provider.prepare_summary_batch(requests, BUDGET.epsilon_allocation)
        provider.forget_batch([request.query_id for request in requests])
        # Ingest rows only in the high region; compaction re-clusters the
        # tail, whose changed bounds cannot reach the low region.
        provider.ingest_rows(
            Table(SCHEMA, {"a": np.full(10, 44), "b": np.arange(10)}),
            auto_compact=False,
        )
        report = provider.compact()
        assert report.cache_entries_retained >= 1
        assert report.cache_entries_purged >= 1
        requests = keyed_requests([low, high], base=100)
        reuse: list[bool] = []
        second = provider.prepare_summary_batch(
            requests, BUDGET.epsilon_allocation, reuse_out=reuse
        )
        provider.forget_batch([request.query_id for request in requests])
        # The low-region summary survived the epoch bump byte for byte...
        assert reuse[0] is True
        assert second[0].noisy_cluster_count == first[0].noisy_cluster_count
        assert second[0].noisy_avg_proportion == first[0].noisy_avg_proportion
        # ...and the overlapping one was genuinely stale and re-released.
        assert reuse[1] is False

    def test_retained_entries_match_fresh_union_provider_semantics(self):
        """A retained release is exactly what a fresh release would serve."""
        provider = self._cached_provider()
        low = RangeQuery.count({"a": (0, 9)})
        requests = keyed_requests([low])
        provider.prepare_summary_batch(requests, BUDGET.epsilon_allocation)
        provider.forget_batch([requests[0].query_id])
        provider.ingest_rows(
            Table(SCHEMA, {"a": np.full(10, 44), "b": np.arange(10)}),
            auto_compact=False,
        )
        provider.compact()
        # The covering set and proportions of the retained query are
        # untouched by the fold: recompute them fresh and compare.
        positions = provider.metadata.covering_positions_batch([low.range_tuples()])[0]
        fresh = make_provider(provider.table.slice(0, provider.table.num_rows))
        expected = fresh.metadata.covering_positions_batch([low.range_tuples()])[0]
        assert np.array_equal(positions, expected)

    def test_rebuild_layout_still_purges_everything(self):
        provider = self._cached_provider()
        requests = keyed_requests([RangeQuery.count({"a": (0, 9)})])
        provider.prepare_summary_batch(requests, BUDGET.epsilon_allocation)
        provider.forget_batch([requests[0].query_id])
        assert len(provider.cache) == 1
        provider.rebuild_layout()
        assert len(provider.cache) == 0


class TestEagerPoolInvalidation:
    def test_rebuild_while_pool_open_tears_workers_down_eagerly(self):
        """Satellite regression: rebuild_layout invalidates shared blocks now."""
        config = SystemConfig(
            cluster_size=8,
            num_providers=2,
            seed=3,
            parallelism=ParallelismConfig(enabled=True, backend="process"),
        )
        with FederatedAQPSystem.from_table(make_table(100, 1), config=config) as system:
            system.execute_batch([QUERIES[0]], seed_tokens=[(0, 0)])
            assert system.aggregator._process_pool is not None
            system.providers[0].rebuild_layout()
            # Eager: the pool is gone *now*, not on the next batch.
            assert system.aggregator._process_pool is None
            # And the next batch rebuilds it and still answers correctly.
            result = system.execute_batch([QUERIES[2]], seed_tokens=[(0, 1)])
            assert result.results[0].exact_value == 100

    def test_compaction_while_pool_open_tears_workers_down_eagerly(self):
        config = SystemConfig(
            cluster_size=8,
            num_providers=2,
            seed=3,
            ingest=IngestConfig(max_delta_rows=4),
            parallelism=ParallelismConfig(enabled=True, backend="process"),
        )
        with FederatedAQPSystem.from_table(make_table(64, 1), config=config) as system:
            system.execute_batch([QUERIES[0]], seed_tokens=[(0, 0)])
            assert system.aggregator._process_pool is not None
            receipts = system.ingest(make_table(20, 2))
            assert all(receipt.compacted for receipt in receipts)
            assert system.aggregator._process_pool is None
            result = system.execute_batch([QUERIES[2]], seed_tokens=[(0, 1)])
            assert result.results[0].exact_value == 84

    def test_pool_ships_pending_deltas_to_workers(self):
        config = SystemConfig(
            cluster_size=8,
            num_providers=2,
            seed=3,
            ingest=IngestConfig(max_delta_rows=10**6),
            parallelism=ParallelismConfig(enabled=True, backend="process"),
        )
        serial = SystemConfig(
            cluster_size=8, num_providers=2, seed=3,
            ingest=IngestConfig(max_delta_rows=10**6),
        )
        base, delta = make_table(64, 1), make_table(20, 2)
        with FederatedAQPSystem.from_table(base, config=config) as pooled:
            # Ingest BEFORE the pool exists: the pool construction must ship
            # the pending delta to the workers.
            pooled.ingest(delta)
            assert pooled.total_delta_rows == 20
            result_pooled = pooled.execute_batch(QUERIES, seed_tokens=[(2, i) for i in range(3)])
        with FederatedAQPSystem.from_table(base, config=serial) as plain:
            plain.ingest(delta)
            result_plain = plain.execute_batch(QUERIES, seed_tokens=[(2, i) for i in range(3)])
        assert [r.value for r in result_pooled.results] == [
            r.value for r in result_plain.results
        ]

    def test_mid_stream_ingest_mirrors_to_open_pool(self):
        config = SystemConfig(
            cluster_size=8,
            num_providers=2,
            seed=3,
            ingest=IngestConfig(max_delta_rows=10**6),
            parallelism=ParallelismConfig(enabled=True, backend="process"),
        )
        serial = SystemConfig(
            cluster_size=8, num_providers=2, seed=3,
            ingest=IngestConfig(max_delta_rows=10**6),
        )
        base, delta = make_table(64, 1), make_table(20, 2)
        tokens = [(2, index) for index in range(3)]
        with FederatedAQPSystem.from_table(base, config=config) as pooled:
            pooled.execute_batch([QUERIES[0]], seed_tokens=[(0, 0)])  # builds pool
            pooled.ingest(delta)  # mirrored onto live workers
            result_pooled = pooled.execute_batch(QUERIES, seed_tokens=tokens)
        with FederatedAQPSystem.from_table(base, config=serial) as plain:
            plain.execute_batch([QUERIES[0]], seed_tokens=[(0, 0)])
            plain.ingest(delta)
            result_plain = plain.execute_batch(QUERIES, seed_tokens=tokens)
        assert [r.value for r in result_pooled.results] == [
            r.value for r in result_plain.results
        ]


class TestNetworkAccounting:
    def test_ingest_traffic_is_classed_separately(self):
        config = SystemConfig(cluster_size=8, num_providers=2, seed=3)
        system = FederatedAQPSystem.from_table(make_table(64, 1), config=config)
        stats = system.aggregator.network.stats
        assert stats.ingest_messages == 0
        system.execute_batch([QUERIES[0]])
        after_query = system.aggregator.network.snapshot()
        assert after_query.ingest_messages == 0
        assert after_query.query_messages == after_query.messages > 0
        system.ingest(make_table(10, 2))
        after_ingest = system.aggregator.network.snapshot()
        # One request + one ack per provider that received rows.
        assert after_ingest.ingest_messages == 4
        assert after_ingest.ingest_bytes_sent > 0
        # The split always sums back to the totals.
        assert (
            after_ingest.query_messages + after_ingest.ingest_messages
            == after_ingest.messages
        )
        assert (
            after_ingest.query_bytes_sent + after_ingest.ingest_bytes_sent
            == after_ingest.bytes_sent
        )
        # Query-side counters did not move.
        assert after_ingest.query_messages == after_query.query_messages

    def test_ingest_request_payload_scales_with_rows(self):
        from repro.federation.messages import IngestRequest

        small = IngestRequest(provider_id="p", num_rows=10, num_columns=2)
        large = IngestRequest(provider_id="p", num_rows=1000, num_columns=2)
        assert large.payload_bytes() > small.payload_bytes() > 0

    def test_stats_merge_preserves_split(self):
        from repro.federation.network import NetworkStats

        merged = NetworkStats(
            messages=5, bytes_sent=100, simulated_seconds=1.0,
            ingest_messages=2, ingest_bytes_sent=60, ingest_simulated_seconds=0.5,
        ).merge(NetworkStats(messages=3, bytes_sent=30, simulated_seconds=0.1))
        assert merged.messages == 8
        assert merged.ingest_messages == 2
        assert merged.query_messages == 6
        assert merged.query_bytes_sent == 70


class TestEmptyBornProvider:
    def test_from_table_accepts_empty_table(self):
        from repro.storage.clustered_table import ClusteredTable

        clustered = ClusteredTable.from_table(Table.empty(SCHEMA), 8)
        assert clustered.num_rows == 0
        assert clustered.num_clusters == 1  # the empty placeholder

    @pytest.mark.parametrize("dense", [True, False])
    def test_empty_table_kernels(self, dense):
        from repro.config import ExecutionConfig
        from repro.query.batch import QueryBatch
        from repro.storage.clustered_table import ClusteredTable

        execution = ExecutionConfig.dense() if dense else ExecutionConfig()
        layout = ClusteredTable.from_table(Table.empty(SCHEMA), 8).layout()
        batch = QueryBatch(tuple(QUERIES))
        values = layout.cluster_values(batch, execution=execution)
        assert values.shape == (3, 1) and not values.any()
        masks = layout.row_masks(batch, execution=execution)
        assert masks.shape == (3, 0)
        per_query = layout.query_cluster_values(
            batch, [np.array([0])] * 3, execution=execution
        )
        assert all(int(values.sum()) == 0 for values in per_query)

    def test_provider_born_empty_bootstrapped_by_ingest(self):
        """Satellite: a provider can start with zero rows and grow."""
        empty = make_provider(Table.empty(SCHEMA), rng=4)
        assert empty.num_rows == 0
        assert empty.exact_answer(QUERIES[2]).value == 0
        _, answers = run_protocol(empty, QUERIES)
        assert all(answer.report.rows_available == 0 for answer in answers)
        rows = make_table(30, 2)
        empty.ingest_rows(rows, auto_compact=False)
        assert empty.exact_answer(QUERIES[2]).value == 30
        report = empty.compact()
        assert report.rows_folded == 30
        # The empty placeholder cluster is gone; structure matches a fresh
        # provider built from the same rows.
        fresh = make_provider(rows, rng=4)
        assert empty.num_clusters == fresh.num_clusters
        _, mine = run_protocol(empty, QUERIES)
        _, theirs = run_protocol(fresh, QUERIES)
        assert [a.message for a in mine] == [a.message for a in theirs]

    def test_empty_system_end_to_end(self):
        config = SystemConfig(cluster_size=8, num_providers=2, seed=5)
        system = FederatedAQPSystem.from_partitions(
            [Table.empty(SCHEMA), Table.empty(SCHEMA)], config=config
        )
        result = system.execute(QUERIES[0])
        assert result.exact_value == 0
        system.ingest(make_table(40, 1))
        assert system.total_delta_rows == 40
        result = system.execute(QUERIES[2])
        assert result.exact_value == 40


class TestSchedulerIngest:
    def _scheduler(self, *, max_pending_ingest=8, max_delta_rows=10**6, seed=3):
        config = SystemConfig(
            cluster_size=8,
            num_providers=2,
            seed=seed,
            ingest=IngestConfig(max_delta_rows=max_delta_rows),
        )
        system = FederatedAQPSystem.from_table(make_table(80, 1), config=config)
        registry = TenantRegistry()
        registry.register("t1", total_epsilon=1000.0)
        registry.register("t2", total_epsilon=1000.0)
        scheduler = SessionScheduler(
            system,
            registry,
            config=ServiceConfig(max_pending_ingest=max_pending_ingest),
        )
        return scheduler, registry

    def test_ingest_applies_on_drain_with_stats(self):
        scheduler, registry = self._scheduler(max_delta_rows=16)
        scheduler.submit("t1", [QUERIES[0]])
        scheduler.submit_ingest(make_table(40, 9), tenant_id="t2")
        answers = scheduler.drain()
        assert len(answers) == 1
        assert scheduler.num_pending_ingest == 0
        assert scheduler.stats.ingest_requests == 1
        assert scheduler.stats.rows_ingested == 40
        assert scheduler.stats.compactions == 2  # one per provider
        assert registry.get("t2").rows_ingested == 40

    def test_ingest_only_drain(self):
        scheduler, _ = self._scheduler()
        scheduler.submit_ingest(make_table(12, 9))
        assert scheduler.drain() == []
        assert scheduler.stats.rows_ingested == 12
        assert scheduler.system.total_delta_rows == 12

    def test_backpressure_on_full_ingest_queue(self):
        scheduler, _ = self._scheduler(max_pending_ingest=2)
        scheduler.submit_ingest(make_table(1, 1))
        scheduler.submit_ingest(make_table(1, 2))
        with pytest.raises(ServiceOverloadedError):
            scheduler.submit_ingest(make_table(1, 3))
        scheduler.drain()
        scheduler.submit_ingest(make_table(1, 4))  # queue drained: accepted

    def test_ingest_lands_between_batches_not_before_queries(self):
        """Queries drained alongside an ingest keep their pre-ingest data."""
        run_a, _ = self._scheduler()
        run_a.submit("t1", [QUERIES[2]])
        receipt_values = run_a.drain()[0].values
        run_b, _ = self._scheduler()
        run_b.submit("t1", [QUERIES[2]])
        run_b.submit_ingest(make_table(50, 9))
        interleaved_values = run_b.drain()[0].values
        # Identical seed tokens, identical data snapshot: bit-identical.
        assert interleaved_values == receipt_values
        # But the ingest did apply, after the batch.
        assert run_b.system.total_delta_rows == 50
        follow_up = run_b.submit("t1", [QUERIES[2]])
        assert follow_up.status == "queued"
