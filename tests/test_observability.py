"""Observability layer: tracing, metrics, and the DP budget audit ledger.

Three acceptance surfaces:

* **bit-identity off** — with ``ObservabilityConfig(enabled=False)`` (the
  default) the answers and charges are bit-identical to a default-config
  run, across the engine-mode equivalence matrix (the tracing/ledger hooks
  must consume no randomness and change no arithmetic);
* **ledger reconciliation** — for *any* workload, including fault-injected
  degraded drains and cache-reuse zero charges, replaying one owner's
  ledger events equals the accountant's and wallet's live state exactly
  (a hypothesis property);
* **one trace per drain** — a socket-transported, sharded, fault-injected
  degraded drain lands as ONE trace whose spans cover admission, chunking,
  every provider phase call (client and server side), the retry attempts,
  and settlement.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    ObservabilityConfig,
    ParallelismConfig,
    PrivacyConfig,
    ResilienceConfig,
    SamplingConfig,
    SystemConfig,
    TransportConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.obs import BudgetAuditLedger, MetricsRegistry, Tracer
from repro.query.model import RangeQuery
from repro.service import SessionScheduler, TenantRegistry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table
from repro.testing import FaultSchedule, FaultSpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import trace_report  # noqa: E402  (tools/ has no package)

QUERIES = (
    RangeQuery.count({"age": (20, 60)}),
    RangeQuery.count({"hours": (5, 20)}),
    RangeQuery.count({"age": (0, 30), "hours": (0, 15)}),
)


def _table(rows: int = 600) -> Table:
    schema = Schema((Dimension("age", 0, 99), Dimension("hours", 0, 49)))
    rng = np.random.default_rng(123)
    return Table(
        schema,
        {
            "age": rng.integers(0, 100, rows),
            "hours": np.minimum(49, rng.poisson(12, rows)),
        },
    )


def _config(
    *,
    observability: bool = True,
    transport: str | None = None,
    shard_workers: int = 1,
    faults: FaultSchedule | None = None,
    resilience: ResilienceConfig | None = None,
    cache: bool = False,
    num_providers: int = 2,
    seed: int = 7,
    cluster_size: int = 1000,
) -> SystemConfig:
    config = SystemConfig(
        num_providers=num_providers,
        seed=seed,
        cluster_size=cluster_size,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2),
        parallelism=ParallelismConfig(enabled=False, injected_faults=faults),
        resilience=resilience or ResilienceConfig(),
        cache=CacheConfig(enabled=cache),
        observability=ObservabilityConfig(enabled=observability),
    )
    if transport is not None:
        config = config.with_transport(
            TransportConfig(kind=transport, shard_workers=shard_workers)
        )
    return config


@pytest.fixture
def obs_trace(request):
    """Register traced systems; dump their span JSONL on failure (CI artifact).

    Mirrors the ``chaos_trace`` fixture in ``test_chaos.py``: a red run in
    the chaos-smoke job uploads these dumps alongside the fault-injector
    schedules, so the failing drain replays locally with its waterfall.
    """
    systems: list[FederatedAQPSystem] = []
    yield systems.append
    report = getattr(request.node, "rep_call", None)
    directory = os.environ.get("REPRO_CHAOS_TRACE_DIR")
    if report is not None and report.failed and directory:
        os.makedirs(directory, exist_ok=True)
        for index, system in enumerate(systems):
            tracer = system.obs.tracer
            if tracer is not None:
                tracer.export_jsonl(
                    os.path.join(directory, f"{request.node.name}-{index}.jsonl")
                )


def _values(batch) -> list[tuple[float, float, float]]:
    return [
        (result.value, result.epsilon_spent, result.delta_spent)
        for result in batch.results
    ]


# -- disabled observability is bit-identical ------------------------------------


def test_disabled_observability_is_bit_identical_to_default_config():
    """The seed path: an explicit enabled=False config IS the default path."""
    table = _table()
    default = FederatedAQPSystem.from_table(
        table, config=_config(observability=False)
    )
    assert not default.obs.enabled and default.obs.tracer is None
    explicit = FederatedAQPSystem.from_table(
        table, config=_config(observability=False)
    )
    enabled = FederatedAQPSystem.from_table(table, config=_config(observability=True))
    baseline = _values(default.execute_batch(QUERIES, compute_exact=False))
    assert _values(explicit.execute_batch(QUERIES, compute_exact=False)) == baseline
    # Tracing and the ledger consume no randomness and change no float op:
    # an *enabled* run still answers and charges bit-identically.
    assert _values(enabled.execute_batch(QUERIES, compute_exact=False)) == baseline
    assert len(enabled.obs.tracer.spans()) > 0


def test_disabled_observability_matches_equivalence_matrix_modes():
    """Ride the PR-9 engine-mode matrix: obs on/off per mode, same bits."""
    from test_engine_equivalence import EXECUTION_MODES

    table = _table()
    for name in ("pruned", "pruned+sorted"):
        execution = EXECUTION_MODES[name]
        off = FederatedAQPSystem.from_table(
            table, config=_config(observability=False).with_execution(execution)
        )
        on = FederatedAQPSystem.from_table(
            table, config=_config(observability=True).with_execution(execution)
        )
        assert _values(on.execute_batch(QUERIES, compute_exact=False)) == _values(
            off.execute_batch(QUERIES, compute_exact=False)
        ), f"observability changed answers under mode {name!r}"


def test_disabled_observability_keeps_wire_bytes_identical():
    """Loopback frames carry no trace payload when tracing is off."""
    table = _table()
    system = FederatedAQPSystem.from_table(
        table, config=_config(observability=False, transport="loopback")
    )
    system.execute_batch(QUERIES[:1], compute_exact=False)
    # No active span → the envelope payloads never grew a "trace" key, so
    # the byte counters match a pre-observability build exactly.  (The
    # enabled path is allowed to differ — that's the point of the flag.)
    reference = FederatedAQPSystem.from_table(
        table, config=SystemConfig(
            num_providers=2,
            seed=7,
            privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
            sampling=SamplingConfig(sampling_rate=0.2),
            parallelism=ParallelismConfig(enabled=False),
            transport=TransportConfig(kind="loopback"),
        )
    )
    reference.execute_batch(QUERIES[:1], compute_exact=False)
    assert (
        system.transport_stats().bytes_sent == reference.transport_stats().bytes_sent
    )


# -- ledger reconciliation ------------------------------------------------------


def _drain_and_reconcile(
    *,
    faults: FaultSchedule | None,
    resilience: ResilienceConfig | None,
    cache: bool,
    workloads: dict[str, list[RangeQuery]],
    rounds: int = 1,
    seed: int = 7,
) -> None:
    system = FederatedAQPSystem.from_table(
        _table(),
        config=_config(
            faults=faults, resilience=resilience, cache=cache, seed=seed
        ),
    )
    registry = TenantRegistry()
    for tenant_id in workloads:
        registry.register(tenant_id, total_epsilon=1e6)
    scheduler = SessionScheduler(system, registry)
    for _ in range(rounds):
        for tenant_id, queries in workloads.items():
            scheduler.submit(tenant_id, queries)
        scheduler.drain()
    ledger = system.obs.ledger
    assert ledger is not None
    assert set(workloads) <= set(ledger.owners())
    for tenant_id in workloads:
        report = ledger.reconcile(tenant_id, registry.get(tenant_id).budget)
        assert report.exact, (
            f"ledger does not reconcile for {tenant_id}: "
            f"charged {report.charged} vs accountant {report.accountant_spent}, "
            f"reserved ({report.reserved_epsilon}, {report.reserved_delta}) vs "
            f"wallet ({report.wallet_reserved_epsilon}, "
            f"{report.wallet_reserved_delta})"
        )


def test_ledger_reconciles_on_clean_drain():
    _drain_and_reconcile(
        faults=None,
        resilience=None,
        cache=False,
        workloads={"acme": list(QUERIES[:2]), "zeta": list(QUERIES[2:])},
    )


def test_ledger_reconciles_on_degraded_drain_with_partial_charges():
    faults = FaultSchedule.of(
        FaultSpec(kind="drop_provider", provider_index=1, phase="answer", repeat=8)
    )
    _drain_and_reconcile(
        faults=faults,
        resilience=ResilienceConfig(enabled=True, max_retries=1, min_providers=1),
        workloads={"acme": list(QUERIES)},
        cache=False,
    )


def test_ledger_records_cache_reuse_as_zero_charge_events():
    system = FederatedAQPSystem.from_table(
        _table(), config=_config(cache=True), total_epsilon=100.0
    )
    first = system.execute_batch(QUERIES, compute_exact=False)
    again = system.execute_batch(QUERIES, compute_exact=False)
    assert [r.value for r in again.results] == [r.value for r in first.results]
    ledger = system.obs.ledger
    events = ledger.events("system")
    reused = [event for event in events if event.cache_reuse]
    assert len(reused) == len(QUERIES)
    assert all(
        event.epsilon == 0.0 and event.delta == 0.0 and event.kind == "charge"
        for event in reused
    )
    assert ledger.reconcile("system", system.end_user_budget).exact


if HAVE_HYPOTHESIS:

    @st.composite
    def _workload_cases(draw):
        num_tenants = draw(st.integers(1, 2))
        workloads = {}
        for index in range(num_tenants):
            count = draw(st.integers(1, 3))
            workloads[f"tenant-{index}"] = [
                QUERIES[draw(st.integers(0, len(QUERIES) - 1))]
                for _ in range(count)
            ]
        fault = draw(
            st.sampled_from(["none", "answer_drop", "summary_drop", "flaky_heal"])
        )
        cache = draw(st.booleans())
        rounds = draw(st.integers(1, 2))
        seed = draw(st.integers(0, 5))
        return workloads, fault, cache, rounds, seed

    _FAULTS = {
        "none": (None, None),
        "answer_drop": (
            FaultSchedule.of(
                FaultSpec(
                    kind="drop_provider", provider_index=1, phase="answer", repeat=99
                )
            ),
            ResilienceConfig(enabled=True, max_retries=1, min_providers=1),
        ),
        "summary_drop": (
            FaultSchedule.of(
                FaultSpec(
                    kind="drop_provider", provider_index=0, phase="summary", repeat=99
                )
            ),
            ResilienceConfig(enabled=True, max_retries=1, min_providers=1),
        ),
        "flaky_heal": (
            FaultSchedule.of(
                FaultSpec(kind="drop_provider", provider_index=0, phase="answer")
            ),
            ResilienceConfig(enabled=True, max_retries=2, min_providers=1),
        ),
    }

    @settings(max_examples=25, deadline=None)
    @given(case=_workload_cases())
    def test_ledger_reconciliation_property(case):
        """Any workload — faults, degraded drains, reuse — reconciles exactly."""
        workloads, fault, cache, rounds, seed = case
        faults, resilience = _FAULTS[fault]
        _drain_and_reconcile(
            faults=faults,
            resilience=resilience,
            cache=cache,
            workloads=workloads,
            rounds=rounds,
            seed=seed,
        )


# -- one trace per drain --------------------------------------------------------


def test_degraded_sharded_socket_drain_is_one_reconciled_trace(tmp_path, obs_trace):
    """The headline acceptance: socket wire + shards + faults → ONE trace."""
    faults = FaultSchedule.of(
        FaultSpec(kind="disconnect", provider_index=1, phase="answer", repeat=99)
    )
    system = FederatedAQPSystem.from_table(
        _table(),
        config=_config(
            transport="socket",
            shard_workers=2,
            cluster_size=50,
            faults=faults,
            resilience=ResilienceConfig(enabled=True, max_retries=1, min_providers=1),
        ),
    )
    obs_trace(system)
    registry = TenantRegistry()
    registry.register("acme", total_epsilon=1e6)
    registry.register("zeta", total_epsilon=1e6)
    scheduler = SessionScheduler(system, registry)
    scheduler.submit("acme", list(QUERIES[:2]))
    scheduler.submit("zeta", list(QUERIES[2:]))
    answers = scheduler.drain()
    assert len(answers) == 2
    assert any(result.degraded for answer in answers for result in answer.results)

    spans = system.obs.tracer.spans()
    drain_roots = [span for span in spans if span.name == "drain"]
    assert len(drain_roots) == 1
    trace_id = drain_roots[0].trace_id
    drain_spans = [span for span in spans if span.trace_id == trace_id]
    names = {span.name for span in drain_spans}
    # The drain trace covers scheduling, every protocol phase on both sides
    # of the wire, and the sharded provider's data passes.
    assert {
        "drain",
        "drain.admission",
        "drain.chunking",
        "drain.chunk",
        "batch.allocation",
        "batch.local_answering",
        "batch.combination",
        "attempt.summary",
        "attempt.answer",
        "rpc.summary",
        "rpc.answer",
        "provider.summary",
        "provider.answer",
        "provider.summary_batch",
        "provider.answer_batch",
        "shard.metadata_pass",
        "shard.scan",
    } <= names
    # Retries are visible: the injected disconnect fails attempt 1 against
    # provider-1 and the retry (attempt 2) is its own span in the same trace.
    answer_attempts = {
        (span.tags.get("provider"), span.tags.get("attempt"))
        for span in drain_spans
        if span.name == "rpc.answer"
    }
    assert ("provider-1", 1) in answer_attempts
    assert ("provider-1", 2) in answer_attempts
    errors = [span for span in drain_spans if "error" in span.tags]
    assert errors, "the severed attempts must carry error tags"
    # Every provider phase call in the trace belongs to this ONE trace —
    # nothing leaked into a second trace.
    assert all(
        span.trace_id == trace_id
        for span in spans
        if span.name.startswith(("rpc.", "provider.", "attempt.", "shard."))
    )
    # And the ledger reconciles against the tenants' final wallet state.
    ledger = system.obs.ledger
    degraded_events = [
        event for event in ledger.events() if event.kind == "charge" and event.degraded
    ]
    assert degraded_events, "degraded partial charges must be flagged in the ledger"
    for tenant_id in ("acme", "zeta"):
        assert ledger.reconcile(tenant_id, registry.get(tenant_id).budget).exact

    # The dump renders as a waterfall (the tools/ report over real output).
    dump = tmp_path / "trace.jsonl"
    system.obs.tracer.export_jsonl(str(dump))
    report = trace_report.render_report(
        trace_report.load_spans(dump.read_text().splitlines()), trace_id=trace_id
    )
    assert report.startswith(f"trace {trace_id}")
    assert "rpc.answer" in report and "drain.chunk" in report


# -- metrics registry -----------------------------------------------------------


def test_metrics_snapshot_unifies_all_stats_groups():
    system = FederatedAQPSystem.from_table(_table(), config=_config())
    system.execute_batch(QUERIES[:1], compute_exact=False)
    snapshot = system.observability()
    assert snapshot["enabled"] is True
    groups = snapshot["metrics"]["groups"]
    assert {
        "network",
        "transport",
        "cache",
        "resilience",
        "procpool",
        "kernel",
    } <= set(groups)
    assert groups["network"]["messages"] > 0
    rendered = system.obs.metrics.render_prometheus()
    assert "# TYPE repro_network_messages gauge" in rendered
    assert "repro_network_messages" in rendered


def test_metrics_registry_counters_and_prometheus_escaping():
    registry = MetricsRegistry()
    registry.counter("frames_total").inc(3)
    registry.gauge("depth").set(2.5)
    registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    text = registry.render_prometheus()
    assert "repro_frames_total 3" in text
    assert "repro_depth 2.5" in text
    snapshot = registry.snapshot()
    assert snapshot["counters"]["frames_total"] == 3


def test_trace_sampling_is_deterministic_and_rng_free():
    sampled = Tracer(sample_rate=0.5)
    again = Tracer(sample_rate=0.5)
    decisions = []
    for tracer in (sampled, again):
        row = []
        for _ in range(32):
            ctx = tracer.begin_trace("t")
            row.append(ctx is not None)
            tracer.end_span(ctx)
        decisions.append(row)
    assert decisions[0] == decisions[1]
    assert any(decisions[0]) and not all(decisions[0])


def test_ledger_export_jsonl_round_trips(tmp_path):
    ledger = BudgetAuditLedger()
    ledger.record("acme", "reserve", 1.0, 1e-3)
    ledger.record("acme", "charge", 0.5, 1e-3, label="q0")
    ledger.record("acme", "release", 1.0, 1e-3)
    path = tmp_path / "ledger.jsonl"
    ledger.export_jsonl(str(path))
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [entry["kind"] for entry in lines] == ["reserve", "charge", "release"]
    assert lines[1]["epsilon"] == 0.5
