"""Tests for the paper-specific sensitivities, allocation, and accounting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PrivacyConfig
from repro.core.accounting import (
    EndUserBudget,
    QueryBudget,
    query_spend,
    split_query_budget,
)
from repro.core.allocation import AllocationProblem, solve_allocation
from repro.core.sensitivity import (
    ClusterSensitivityInputs,
    avg_proportion_sensitivity,
    delta_r,
    dominant_scenario,
    estimator_noise_scale,
    estimator_smooth_sensitivity,
    local_sensitivity_at_k,
)
from repro.errors import AllocationError, BudgetExhaustedError, SensitivityError


class TestDeltaR:
    def test_formula(self):
        assert delta_r(100, 3) == pytest.approx(1 - (1 - 0.01) ** 3)

    def test_monotone_in_dimensions(self):
        assert delta_r(100, 5) > delta_r(100, 2)

    def test_monotone_in_cluster_size(self):
        assert delta_r(10, 2) > delta_r(1000, 2)

    def test_bounded_by_one(self):
        assert delta_r(1, 10) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(SensitivityError):
            delta_r(0, 1)
        with pytest.raises(SensitivityError):
            delta_r(10, 0)

    @given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_always_in_unit_interval(self, cluster_size, dims):
        value = delta_r(cluster_size, dims)
        assert 0 < value <= 1


class TestAvgProportionSensitivity:
    def test_takes_maximum_of_two_terms(self):
        # With a tiny cluster size ΔR -> 1 so the first term dominates.
        assert avg_proportion_sensitivity(1, 1, 4) == pytest.approx(1 / 4)
        # With a large cluster size ΔR is tiny so the second term dominates.
        assert avg_proportion_sensitivity(10_000, 1, 4) == pytest.approx(1 / 5)

    def test_theorem_5_1_shape(self):
        cluster_size, dims, n_min = 500, 3, 6
        expected = max(delta_r(cluster_size, dims) / n_min, 1 / (n_min + 1))
        assert avg_proportion_sensitivity(cluster_size, dims, n_min) == pytest.approx(expected)

    def test_invalid_n_min(self):
        with pytest.raises(SensitivityError):
            avg_proportion_sensitivity(100, 2, 0)


class TestDominantScenario:
    def test_threshold(self):
        # Q(C) > sum(R) / ΔR -> scenario 1, otherwise scenario 4.
        assert dominant_scenario(1000.0, 5.0, 0.01) == 1
        assert dominant_scenario(10.0, 5.0, 0.01) == 4

    def test_invalid_inputs(self):
        with pytest.raises(SensitivityError):
            dominant_scenario(1.0, 1.0, 0.0)
        with pytest.raises(SensitivityError):
            dominant_scenario(-1.0, 1.0, 0.1)


class TestLocalSensitivityAtK:
    def test_scenario_1_linear_in_k(self):
        ls1 = local_sensitivity_at_k(
            1, 1, cluster_value=10, proportion=0.5, probability=0.1, delta_r_value=0.05
        )
        ls3 = local_sensitivity_at_k(
            3, 1, cluster_value=10, proportion=0.5, probability=0.1, delta_r_value=0.05
        )
        assert ls3 == pytest.approx(3 * ls1)
        assert ls1 == pytest.approx(10 * 0.05 / 0.5)

    def test_scenario_4_is_k_over_p(self):
        assert local_sensitivity_at_k(
            5, 4, cluster_value=10, proportion=0.5, probability=0.2, delta_r_value=0.05
        ) == pytest.approx(25.0)

    def test_invalid_scenario(self):
        with pytest.raises(SensitivityError):
            local_sensitivity_at_k(
                1, 2, cluster_value=1, proportion=0.5, probability=0.5, delta_r_value=0.1
            )

    def test_zero_at_distance_zero(self):
        assert local_sensitivity_at_k(
            0, 4, cluster_value=1, proportion=0.5, probability=0.5, delta_r_value=0.1
        ) == 0.0


class TestEstimatorSmoothSensitivity:
    def test_positive_and_finite(self):
        value = estimator_smooth_sensitivity(
            ClusterSensitivityInputs(cluster_value=50.0, proportion=0.2, probability=0.05),
            sum_proportions=4.0,
            delta_r_value=0.01,
            epsilon=0.8,
            delta=1e-3,
        )
        assert math.isfinite(value)
        assert value > 0

    def test_zero_proportion_does_not_crash(self):
        value = estimator_smooth_sensitivity(
            ClusterSensitivityInputs(cluster_value=5.0, proportion=0.0, probability=0.0),
            sum_proportions=1.0,
            delta_r_value=0.01,
            epsilon=0.8,
            delta=1e-3,
        )
        assert math.isfinite(value)

    def test_noise_scale_is_twice_average_over_epsilon(self):
        scale = estimator_noise_scale([10.0, 20.0, 30.0], epsilon=0.5)
        assert scale == pytest.approx(2 * 20.0 / 0.5)

    def test_noise_scale_rejects_empty(self):
        with pytest.raises(SensitivityError):
            estimator_noise_scale([], epsilon=0.5)


class TestAllocation:
    def test_budget_respected(self):
        problems = [
            AllocationProblem("a", 50, 0.9),
            AllocationProblem("b", 50, 0.1),
            AllocationProblem("c", 50, 0.5),
        ]
        results = solve_allocation(problems, 0.2)
        total = sum(result.sample_size for result in results)
        assert total == round(0.2 * 150)
        by_id = {result.provider_id: result.sample_size for result in results}
        # The provider with the largest average proportion gets the most.
        assert by_id["a"] >= by_id["c"] >= by_id["b"]

    def test_every_provider_gets_at_least_min_allocation(self):
        problems = [AllocationProblem("a", 100, 0.99), AllocationProblem("b", 100, 0.01)]
        results = solve_allocation(problems, 0.1, min_allocation=2)
        assert all(result.sample_size >= 2 for result in results)

    def test_allocation_never_exceeds_capacity(self):
        problems = [AllocationProblem("a", 5, 1.0), AllocationProblem("b", 100, 0.0)]
        results = solve_allocation(problems, 0.5)
        by_id = {result.provider_id: result.sample_size for result in results}
        assert by_id["a"] <= 5

    def test_noisy_negative_counts_are_clamped(self):
        problems = [AllocationProblem("a", -3.0, 0.5), AllocationProblem("b", 10.0, 0.5)]
        results = solve_allocation(problems, 0.3)
        assert all(result.sample_size >= 1 for result in results)

    def test_greedy_is_optimal_for_linear_objective(self):
        """The waterfill solution maximises sum(avgR_i * s_i) over the box."""
        problems = [
            AllocationProblem("a", 10, 0.8),
            AllocationProblem("b", 10, 0.6),
            AllocationProblem("c", 10, 0.1),
        ]
        results = solve_allocation(problems, 0.5)
        sizes = {result.provider_id: result.sample_size for result in results}
        objective = 0.8 * sizes["a"] + 0.6 * sizes["b"] + 0.1 * sizes["c"]
        # Exhaustive search over the feasible integer box with the same total.
        total = sum(sizes.values())
        best = 0.0
        for sa in range(1, 11):
            for sb in range(1, 11):
                sc = total - sa - sb
                if not 1 <= sc <= 10:
                    continue
                best = max(best, 0.8 * sa + 0.6 * sb + 0.1 * sc)
        assert objective == pytest.approx(best)

    def test_invalid_inputs(self):
        with pytest.raises(AllocationError):
            solve_allocation([], 0.2)
        with pytest.raises(AllocationError):
            solve_allocation([AllocationProblem("a", 10, 0.5)], 1.5)
        with pytest.raises(AllocationError):
            solve_allocation([AllocationProblem("a", 10, 0.5)], 0.2, min_allocation=0)


class TestAccounting:
    def test_split_matches_config(self):
        budget = split_query_budget(PrivacyConfig(epsilon=2.0, delta=1e-4))
        assert budget.epsilon_allocation == pytest.approx(0.2)
        assert budget.epsilon_sampling == pytest.approx(0.2)
        assert budget.epsilon_estimation == pytest.approx(1.6)
        assert budget.epsilon_total == pytest.approx(2.0)
        assert budget.delta == pytest.approx(1e-4)

    def test_query_spend_is_parallel_across_providers(self):
        budget = QueryBudget(0.1, 0.1, 0.8, 1e-3)
        spend_one = query_spend(budget, 1)
        spend_four = query_spend(budget, 4)
        # Disjoint data -> the end-user charge does not grow with providers.
        assert spend_four.epsilon == pytest.approx(spend_one.epsilon) == pytest.approx(1.0)
        assert spend_four.delta == pytest.approx(1e-3)

    def test_end_user_budget_charging_and_exhaustion(self):
        budget = QueryBudget(0.1, 0.1, 0.8, 1e-3)
        user = EndUserBudget.create(xi=2.5, psi=1e-2)
        assert user.queries_remaining(budget, 4) == 2
        user.charge_query(budget, 4)
        user.charge_query(budget, 4)
        with pytest.raises(BudgetExhaustedError):
            user.charge_query(budget, 4)
        assert user.remaining_epsilon == pytest.approx(0.5)
