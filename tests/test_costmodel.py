"""Cost model and work packing: estimation fidelity, calibration, chunking.

Three layers under test:

* :meth:`~repro.storage.metadata.MetadataStore.cost_stats_batch` — the
  zone-map-derived covered-vs-straddler statistics, checked against a
  brute-force pass over the global metadata entries (dense and scalar
  paths must agree with it and with each other).
* :class:`~repro.service.costmodel.CostModel` — unit totals respect the
  execution backend (a pruning executor pays straddler rows only, a
  non-pruning one every covering row) and the EWMA calibration converges
  toward observed chunk timings while recording prediction error.
* :func:`~repro.federation.partitioning.work_balanced_chunks` — greedy
  order-preserving packing: budget respected, nothing dropped or
  reordered, oversized items isolated, equal costs degenerate to count
  chunking exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExecutionConfig, SystemConfig
from repro.core.system import FederatedAQPSystem
from repro.errors import FederationError
from repro.federation.partitioning import work_balanced_chunks
from repro.query.model import RangeQuery
from repro.service.costmodel import (
    DEFAULT_SECONDS_PER_UNIT,
    UNITS_PER_CLUSTER,
    UNITS_PER_QUERY,
    UNITS_PER_ROW,
    CostModel,
)
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

WORKLOAD = [
    {"age": (10, 60)},
    {"hours": (5, 30)},
    {"age": (0, 99)},  # whole domain on one dimension
    {"age": (20, 80), "hours": (0, 20)},
    {"dept": (3, 3)},
]


def _brute_force_stats(metadata, ranges):
    """Covered/straddler split straight from the global entries."""
    touched = covered = straddler_rows = covered_rows = 0
    for entry in metadata.global_entries:
        if entry.num_rows == 0 or not entry.overlaps(ranges):
            continue
        touched += 1
        inside = all(
            name not in entry.bounds
            or (entry.bounds[name][0] >= low and entry.bounds[name][1] <= high)
            for name, (low, high) in ranges.items()
        )
        if inside:
            covered += 1
            covered_rows += entry.num_rows
        else:
            straddler_rows += entry.num_rows
    return touched, covered, straddler_rows, covered_rows


def test_cost_stats_batch_matches_brute_force(metadata):
    stats = metadata.cost_stats_batch(WORKLOAD)
    assert len(stats) == len(WORKLOAD)
    for ranges, stat in zip(WORKLOAD, stats):
        touched, covered, straddler_rows, covered_rows = _brute_force_stats(
            metadata, ranges
        )
        assert stat.clusters_touched == touched
        assert stat.clusters_covered == covered
        assert stat.clusters_straddling == touched - covered
        assert stat.straddler_rows == straddler_rows
        assert stat.covered_rows == covered_rows


def test_cost_stats_scalar_path_agrees_with_dense(metadata):
    dense = metadata.cost_stats_batch(WORKLOAD)
    object.__setattr__(metadata, "dense_index", None)
    scalar = metadata.cost_stats_batch(WORKLOAD)
    assert scalar == dense


def test_cost_stats_empty_workload(metadata):
    assert metadata.cost_stats_batch([]) == []


def _small_system(execution: ExecutionConfig | None = None) -> FederatedAQPSystem:
    rng = np.random.default_rng(42)
    schema = Schema((Dimension("age", 0, 99), Dimension("hours", 0, 49)))
    table = Table(
        schema,
        {"age": rng.integers(0, 100, 1600), "hours": rng.integers(0, 50, 1600)},
    )
    config = SystemConfig(cluster_size=100, num_providers=2, seed=3)
    if execution is not None:
        config = config.with_execution(execution)
    return FederatedAQPSystem.from_table(table, config=config)


def test_cost_model_units_follow_structural_stats():
    system = _small_system()
    model = CostModel(system)
    query = RangeQuery.count({"age": (10, 60)})
    (estimate,) = model.estimate([query])
    expected = 0.0
    for provider in system.providers:
        (stats,) = provider.cost_stats_batch([query])
        expected += (
            UNITS_PER_QUERY
            + UNITS_PER_CLUSTER * stats.clusters_touched
            + UNITS_PER_ROW * (stats.straddler_rows + provider.delta_rows)
        )
    assert estimate.units == pytest.approx(expected)
    assert estimate.clusters_touched > 0


def test_cost_model_backend_changes_row_volume():
    # A non-pruning executor scans covered clusters row by row: its
    # estimate must charge covered rows too, not just straddlers.
    pruned = CostModel(_small_system())
    full = CostModel(_small_system(ExecutionConfig.dense()))
    query = RangeQuery.count({"age": (0, 99)})  # wide: many covered clusters
    (cheap,) = pruned.estimate([query])
    (expensive,) = full.estimate([query])
    assert cheap.clusters_covered > 0
    assert expensive.units > cheap.units


def test_cost_model_layout_signature_tracks_ingest_and_compaction():
    system = _small_system()
    model = CostModel(system)
    before = model.layout_signature()
    rng = np.random.default_rng(9)
    rows = Table(
        system.providers[0].table.schema,
        {"age": rng.integers(0, 100, 64), "hours": rng.integers(0, 50, 64)},
    )
    system.ingest(rows)
    after_ingest = model.layout_signature()
    assert after_ingest != before
    system.compact()
    assert model.layout_signature() != after_ingest


def test_cost_model_calibration_converges_and_tracks_error():
    model = CostModel(_small_system())
    assert model.seconds_per_unit == DEFAULT_SECONDS_PER_UNIT
    assert model.prediction_error == 0.0 and model.observations == 0
    true_scale = 5e-6  # machine is 25x slower than the prior
    for _ in range(40):
        model.observe(1000.0, 1000.0 * true_scale)
    assert model.observations == 40
    assert model.seconds_per_unit == pytest.approx(true_scale, rel=1e-3)
    # Once calibrated, predictions are near-exact and the error EWMA decays.
    assert model.prediction_error < 0.1
    assert model.predicted_seconds(2000.0) == pytest.approx(
        2000.0 * model.seconds_per_unit
    )


def test_cost_model_observe_ignores_degenerate_samples():
    model = CostModel(_small_system())
    model.observe(0.0, 1.0)
    model.observe(-5.0, 1.0)
    model.observe(100.0, -1.0)
    assert model.observations == 0
    assert model.seconds_per_unit == DEFAULT_SECONDS_PER_UNIT


# -- work packing -----------------------------------------------------------------


def test_work_balanced_chunks_respects_budget_and_order():
    items = list("abcdefg")
    costs = [3.0, 4.0, 2.0, 6.0, 1.0, 1.0, 5.0]
    chunks = work_balanced_chunks(items, costs, 7.0)
    assert [item for chunk in chunks for item in chunk] == items  # nothing lost
    position = 0
    for chunk in chunks:
        chunk_cost = sum(costs[position : position + len(chunk)])
        assert chunk_cost <= 7.0 or len(chunk) == 1
        position += len(chunk)
    assert chunks == [["a", "b"], ["c"], ["d", "e"], ["f", "g"]]


def test_work_balanced_chunks_oversized_item_gets_own_chunk():
    chunks = work_balanced_chunks(["x", "y", "z"], [1.0, 50.0, 1.0], 10.0)
    assert chunks == [["x"], ["y"], ["z"]]


def test_work_balanced_chunks_equal_costs_degenerate_to_count_chunking():
    items = list(range(23))
    for size in (1, 4, 7, 23, 30):
        budget = size * 2.5
        chunks = work_balanced_chunks(items, [2.5] * len(items), budget)
        expected = [items[i : i + size] for i in range(0, len(items), size)]
        assert chunks == expected


def test_work_balanced_chunks_max_size_caps_cheap_runs():
    chunks = work_balanced_chunks(list(range(10)), [0.0] * 10, 100.0, max_size=4)
    assert [len(chunk) for chunk in chunks] == [4, 4, 2]


def test_work_balanced_chunks_validation():
    with pytest.raises(FederationError):
        work_balanced_chunks(["a"], [1.0, 2.0], 5.0)  # misaligned
    with pytest.raises(FederationError):
        work_balanced_chunks(["a"], [1.0], 0.0)  # non-positive budget
    with pytest.raises(FederationError):
        work_balanced_chunks(["a"], [-1.0], 5.0)  # negative cost
    with pytest.raises(FederationError):
        work_balanced_chunks(["a"], [1.0], 5.0, max_size=0)
    assert work_balanced_chunks([], [], 5.0) == []
