"""Chaos tests: deterministic fault injection on the federated drain path.

Every test scripts its failures through a
:class:`~repro.testing.faults.FaultSchedule` riding on
:attr:`~repro.config.ParallelismConfig.injected_faults`, so each run is
bit-replayable from the (system seed, fault seed) pair:

* **replay** — the same schedule produces the same failure trace and the
  same answers, twice in a row;
* **recovery** — a crashed or hung process-pool worker is respawned from
  the existing shared-memory blocks and the retried phase produces answers
  bit-identical to a run with no faults at all;
* **degradation** — a provider that stays down is dropped from the batch:
  answers carry ``degraded`` + ``providers_missing``, survivors are charged
  exactly, and repeated failures quarantine the provider;
* **resource safety** — an injected crash leaks no shared-memory blocks
  (the satellite regression for the abnormal-exit path) and never wedges
  the aggregator: the next batch rebuilds the pool and answers;
* **accounting** — a degraded multi-tenant drain settles partial answers
  with exact per-tenant epsilon actuals and fully returned reservations;
* **transport faults** — severed connections, slow frames, and duplicate
  deliveries on a real wire (loopback and socket transports) degrade or
  heal exactly like provider faults: retries replay bit-identically,
  duplicates are discarded by sequence number, and a degraded drain over
  sockets still returns every reservation.

Set ``REPRO_CHAOS_TRACE_DIR`` to a directory to get each failing test's
fault schedule + failure trace as a JSON artifact (the CI chaos-smoke job
uploads them on red).
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.config import (
    ParallelismConfig,
    PrivacyConfig,
    ResilienceConfig,
    SamplingConfig,
    SystemConfig,
    TransportConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.errors import ConfigurationError, InjectedFaultError, ProtocolError
from repro.federation.network import SimulatedNetwork
from repro.query.model import RangeQuery
from repro.service import SessionScheduler, TenantRegistry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table
from repro.testing import FaultInjector, FaultSchedule, FaultSpec

QUERIES = (
    RangeQuery.count({"age": (20, 60)}),
    RangeQuery.count({"hours": (5, 20)}),
    RangeQuery.count({"age": (0, 30), "hours": (0, 15)}),
)


def _table(rows: int = 900) -> Table:
    schema = Schema((Dimension("age", 0, 99), Dimension("hours", 0, 49)))
    rng = np.random.default_rng(123)
    return Table(
        schema,
        {
            "age": rng.integers(0, 100, rows),
            "hours": np.minimum(49, rng.poisson(12, rows)),
        },
    )


def _system(
    backend: str,
    schedule: FaultSchedule | None = None,
    resilience: ResilienceConfig | None = None,
    *,
    num_providers: int = 3,
    seed: int = 7,
) -> FederatedAQPSystem:
    config = SystemConfig(
        num_providers=num_providers,
        seed=seed,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2),
        parallelism=ParallelismConfig(
            enabled=backend != "serial",
            backend=backend if backend != "serial" else "thread",
            max_workers=num_providers,
            injected_faults=schedule,
        ),
        resilience=resilience or ResilienceConfig(),
    )
    return FederatedAQPSystem.from_table(_table(), config=config)


@pytest.fixture
def chaos_trace(request):
    """Register injectors; dump their traces on failure (CI artifact)."""
    injectors: list[FaultInjector] = []
    yield injectors.append
    report = getattr(request.node, "rep_call", None)
    directory = os.environ.get("REPRO_CHAOS_TRACE_DIR")
    if report is not None and report.failed and directory:
        for index, injector in enumerate(injectors):
            injector.dump_trace(
                os.path.join(directory, f"{request.node.name}-{index}.json")
            )


# -- schedule / injector units --------------------------------------------------


def test_fault_schedule_from_seed_is_deterministic():
    shapes = dict(num_providers=4, num_batches=3, num_faults=5)
    assert FaultSchedule.from_seed(11, **shapes) == FaultSchedule.from_seed(11, **shapes)
    assert FaultSchedule.from_seed(11, **shapes) != FaultSchedule.from_seed(12, **shapes)


def test_fault_spec_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="meteor_strike")
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="drop_provider", phase="allocation")
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="drop_provider", repeat=0)


def test_injector_consumes_repeat_firings_per_attempt():
    schedule = FaultSchedule.of(
        FaultSpec(kind="drop_provider", provider_index=0, phase="summary", repeat=2)
    )
    injector = FaultInjector(schedule)
    injector.begin_batch(0)
    assert injector.take_call_fault("summary", 0, 1) is not None
    assert injector.take_call_fault("summary", 0, 2) is not None
    assert injector.take_call_fault("summary", 0, 3) is None
    assert injector.fired == 2


def test_dump_trace_writes_schedule_and_trace(tmp_path):
    schedule = FaultSchedule.of(FaultSpec(kind="drop_provider", provider_index=1))
    injector = FaultInjector(schedule)
    injector.begin_batch(0)
    injector.take_call_fault("summary", 1, 1)
    path = tmp_path / "artifacts" / "trace.json"
    injector.dump_trace(str(path))
    import json

    payload = json.loads(path.read_text())
    assert payload["schedule"][0]["kind"] == "drop_provider"
    assert payload["trace"][0]["provider_index"] == 1


# -- network message faults (satellite: dropped/retried counters) ---------------


def test_network_drop_charges_and_counts_query_class():
    network = SimulatedNetwork()
    network.fault_injector = FaultInjector(
        FaultSchedule.of(
            FaultSpec(kind="drop_message", message_class="query", message_index=1)
        )
    )
    network.send(100)
    cost_dropped = network.send(100)  # hit: one copy lost + one retransmit
    network.send(100, message_class="ingest")
    stats = network.stats
    assert stats.messages_dropped == 1 and stats.messages_retried == 1
    assert stats.query_messages_dropped == 1 and stats.query_messages_retried == 1
    assert stats.ingest_messages_dropped == 0 and stats.ingest_messages_retried == 0
    # The lost copy and its retry both crossed the wire: totals include them
    # and the per-class split still sums back.
    assert stats.messages == 4 and stats.query_messages == 3
    assert stats.bytes_sent == 400
    assert cost_dropped == pytest.approx(2 * network.config.transfer_cost(100))


def test_network_drop_counts_ingest_class_separately():
    network = SimulatedNetwork()
    network.fault_injector = FaultInjector(
        FaultSchedule.of(
            FaultSpec(kind="drop_message", message_class="ingest", message_index=0)
        )
    )
    network.send(50, message_class="ingest")
    network.send(50)
    stats = network.stats
    assert stats.ingest_messages_dropped == 1 and stats.ingest_messages_retried == 1
    assert stats.query_messages_dropped == 0 and stats.query_messages_retried == 0
    assert stats.ingest_messages == 2 and stats.messages == 3


def test_network_delay_adds_simulated_latency_only():
    plain = SimulatedNetwork()
    baseline = plain.send(100)
    delayed = SimulatedNetwork()
    delayed.fault_injector = FaultInjector(
        FaultSchedule.of(
            FaultSpec(kind="delay_message", message_class="query", delay_seconds=0.25)
        )
    )
    cost = delayed.send(100)
    assert cost == pytest.approx(baseline + 0.25)
    assert delayed.stats.messages == 1 and delayed.stats.messages_dropped == 0
    assert delayed.stats.merge(plain.stats).messages == 2


# -- deterministic replay -------------------------------------------------------


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_same_fault_seed_replays_identical_trace_and_answers(backend, chaos_trace):
    schedule = FaultSchedule.from_seed(
        5, num_providers=3, num_batches=2, num_faults=3, repeat=3
    )
    resilience = ResilienceConfig(enabled=True, max_retries=1, min_providers=1)

    def run():
        system = _system(backend, schedule, resilience)
        values = []
        for _ in range(2):
            values.extend(
                system.execute_batch(QUERIES, compute_exact=False).values
            )
        injector = system.aggregator.fault_injector
        chaos_trace(injector)
        return values, injector.signature()

    values_a, trace_a = run()
    values_b, trace_b = run()
    assert trace_a == trace_b
    assert values_a == values_b
    assert len(trace_a) > 0


def test_injected_fault_raises_without_resilience_on_serial_backend():
    schedule = FaultSchedule.of(
        FaultSpec(kind="drop_provider", provider_index=0, phase="summary")
    )
    system = _system("serial", schedule)  # resilience disabled
    with pytest.raises(InjectedFaultError):
        system.execute_batch(QUERIES, compute_exact=False)


# -- graceful degradation (serial/thread) ---------------------------------------


def test_answer_phase_drop_degrades_with_bit_identical_survivors(chaos_trace):
    baseline = _system("serial").execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(kind="drop_provider", provider_index=1, phase="answer", repeat=8)
    )
    system = _system(
        "serial", schedule, ResilienceConfig(enabled=True, max_retries=1)
    )
    degraded = system.execute_batch(QUERIES, compute_exact=False)
    chaos_trace(system.aggregator.fault_injector)
    assert degraded.degraded and degraded.degraded_queries == len(QUERIES)
    assert degraded.providers_missing == ("provider-1",)
    baseline_reports = {
        (index, report.provider_id): report.released_value
        for index, result in enumerate(baseline.results)
        for report in result.provider_reports
    }
    for index, result in enumerate(degraded.results):
        assert {report.provider_id for report in result.provider_reports} == {
            "provider-0",
            "provider-2",
        }
        for report in result.provider_reports:
            # Answer-phase faults leave the summary phase (and therefore the
            # coupled allocation solve) untouched, so every surviving
            # provider's released answer is bit-identical to the no-fault run.
            assert report.released_value == baseline_reports[(index, report.provider_id)]
        # Survivors delivered both phases fresh: the parallel-composition
        # charge is the full per-query budget, exactly.
        assert result.epsilon_spent == pytest.approx(1.0)
        assert result.delta_spent == pytest.approx(1e-3)


def test_summary_phase_loss_charges_nothing_for_missing_provider(chaos_trace):
    schedule = FaultSchedule.of(
        FaultSpec(kind="drop_provider", provider_index=0, phase="summary", repeat=8)
    )
    system = _system(
        "serial", schedule, ResilienceConfig(enabled=True, max_retries=1)
    )
    result = system.execute_batch(QUERIES, compute_exact=False)
    chaos_trace(system.aggregator.fault_injector)
    assert result.providers_missing == ("provider-0",)
    # The missing provider released nothing; the survivors still spend the
    # full budget, so the (max-composed) charge stays the full price.
    assert result.results[0].epsilon_spent == pytest.approx(1.0)
    stats = system.aggregator.resilience_stats
    assert stats.provider_failures == 1 and stats.degraded_batches == 1


def test_quarantine_after_consecutive_failures_and_reinstate(chaos_trace):
    schedule = FaultSchedule.of(
        FaultSpec(
            kind="drop_provider", provider_index=2, phase="summary",
            batch=None, repeat=100,
        )
    )
    system = _system(
        "serial",
        schedule,
        ResilienceConfig(enabled=True, max_retries=0, quarantine_after=2),
    )
    aggregator = system.aggregator
    chaos_trace(aggregator.fault_injector)
    first = system.execute_batch(QUERIES, compute_exact=False)
    assert first.degraded and aggregator.quarantined_providers == ()
    second = system.execute_batch(QUERIES, compute_exact=False)
    assert second.degraded and aggregator.quarantined_providers == ("provider-2",)
    fired_before = aggregator.fault_injector.fired
    third = system.execute_batch(QUERIES, compute_exact=False)
    # Quarantined providers are pre-failed: still degraded, but the provider
    # is never contacted, so the (armed) fault cannot fire again.
    assert third.degraded and third.providers_missing == ("provider-2",)
    assert aggregator.fault_injector.fired == fired_before
    assert aggregator.resilience_stats.providers_quarantined == 1
    aggregator.reinstate("provider-2")
    assert aggregator.quarantined_providers == ()
    fourth = system.execute_batch(QUERIES, compute_exact=False)
    # Reinstated and the fault is still armed: contacted, fails, degrades.
    assert fourth.degraded
    assert aggregator.fault_injector.fired == fired_before + 1


def test_min_providers_floor_fails_the_batch():
    schedule = FaultSchedule.of(
        FaultSpec(kind="drop_provider", provider_index=0, phase="summary", repeat=8),
        FaultSpec(kind="drop_provider", provider_index=1, phase="summary", repeat=8),
    )
    system = _system(
        "serial",
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, min_providers=2),
        num_providers=3,
    )
    with pytest.raises(ProtocolError, match="minimum 2"):
        system.execute_batch(QUERIES, compute_exact=False)


# -- process backend: crash / hang / respawn ------------------------------------


def test_worker_crash_recovers_bit_identical_after_retry(chaos_trace):
    baseline = _system("serial").execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(kind="crash_worker", provider_index=2, phase="answer", repeat=1)
    )
    with _system(
        "process",
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, provider_timeout_seconds=30.0),
    ) as system:
        result = system.execute_batch(QUERIES, compute_exact=False)
        chaos_trace(system.aggregator.fault_injector)
        stats = system.aggregator.resilience_stats
    # The respawned worker replayed the summary from the phase-entry RNG
    # checkpoint, so the retried answer — and the whole batch — is
    # bit-identical to a run with no fault at all.
    assert result.values == baseline.values
    assert not result.degraded
    assert stats.workers_respawned >= 1 and stats.provider_retries >= 1


def test_worker_respawn_resumes_mid_workload_bit_identical(chaos_trace):
    def run(schedule, resilience):
        with _system("process", schedule, resilience) as system:
            values = []
            for _ in range(3):
                values.extend(
                    system.execute_batch(QUERIES, compute_exact=False).values
                )
            if system.aggregator.fault_injector is not None:
                chaos_trace(system.aggregator.fault_injector)
        return values

    healthy = run(None, None)
    schedule = FaultSchedule.of(
        FaultSpec(kind="crash_worker", provider_index=1, phase="summary", batch=1)
    )
    chaotic = run(
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, provider_timeout_seconds=30.0),
    )
    # The crash lands mid-workload (batch 1 of 3); the worker is respawned
    # from the shared blocks and the run resumes with bit-identical answers
    # for the remaining batches too.
    assert chaotic == healthy


def test_kill_connection_recovers_on_retry(chaos_trace):
    baseline = _system("serial").execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(kind="kill_connection", provider_index=0, phase="answer", repeat=1)
    )
    with _system(
        "process",
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, provider_timeout_seconds=30.0),
    ) as system:
        result = system.execute_batch(QUERIES, compute_exact=False)
        chaos_trace(system.aggregator.fault_injector)
    assert result.values == baseline.values and not result.degraded


def test_hang_worker_trips_timeout_then_recovers(chaos_trace):
    baseline = _system("serial").execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(
            kind="hang_worker", provider_index=1, phase="summary",
            repeat=1, hang_seconds=20.0,
        )
    )
    with _system(
        "process",
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, provider_timeout_seconds=0.5),
    ) as system:
        result = system.execute_batch(QUERIES, compute_exact=False)
        chaos_trace(system.aggregator.fault_injector)
        stats = system.aggregator.resilience_stats
    assert stats.worker_timeouts >= 1 and stats.workers_respawned >= 1
    # Hung worker killed before its reply was read; the respawned worker
    # re-runs the phase from the checkpoint: same draws, same answers.
    assert result.values == baseline.values and not result.degraded


def test_permanent_crash_degrades_batch_then_next_batch_heals(chaos_trace):
    schedule = FaultSchedule.of(
        FaultSpec(kind="crash_worker", provider_index=0, phase="summary", repeat=10)
    )
    with _system(
        "process",
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, provider_timeout_seconds=30.0),
    ) as system:
        first = system.execute_batch(QUERIES, compute_exact=False)
        chaos_trace(system.aggregator.fault_injector)
        assert first.degraded and first.providers_missing == ("provider-0",)
        # The fault is pinned to batch 0: the worker is respawned at the
        # next batch's entry and the federation heals without a rebuild.
        second = system.execute_batch(QUERIES, compute_exact=False)
        assert not second.degraded
        assert len(second.results[0].provider_reports) == 3


# -- resource safety (satellite: shm leak regression) ---------------------------


def _live_blocks(names) -> list[str]:
    alive = []
    for name in names:
        try:
            block = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        block.close()
        alive.append(name)
    return alive


def test_injected_crash_without_resilience_leaks_no_shared_memory():
    schedule = FaultSchedule.of(
        FaultSpec(kind="crash_worker", provider_index=1, phase="summary", batch=1)
    )
    system = _system("process", schedule)  # resilience disabled: crash is fatal
    try:
        system.execute_batch(QUERIES, compute_exact=False)  # batch 0: healthy
        names = system.aggregator._process_pool.shared_block_names()
        assert names and _live_blocks(names) == list(names)
        with pytest.raises(ProtocolError, match="worker died"):
            system.execute_batch(QUERIES, compute_exact=False)  # batch 1: crash
        # The abnormal-exit path closed the pool before the error propagated:
        # every shared block must already be unlinked (the leak regression),
        # *before* anyone calls system.close().
        assert _live_blocks(names) == []
    finally:
        system.close()


def test_failed_batch_does_not_wedge_later_batches():
    schedule = FaultSchedule.of(
        FaultSpec(kind="crash_worker", provider_index=0, phase="answer", batch=0)
    )
    system = _system("process", schedule)  # no resilience: batch 0 dies
    try:
        with pytest.raises(ProtocolError):
            system.execute_batch(QUERIES, compute_exact=False)
        # The closed pool must not be handed out again (wedge regression):
        # the next batch builds a fresh pool and answers normally.
        result = system.execute_batch(QUERIES, compute_exact=False)
        assert len(result.results) == len(QUERIES)
        assert not result.degraded
    finally:
        system.close()


def test_close_unlinks_every_shared_block():
    with _system("process") as system:
        system.execute_batch(QUERIES, compute_exact=False)
        names = system.aggregator._process_pool.shared_block_names()
        assert names and _live_blocks(names) == list(names)
    assert _live_blocks(names) == []


# -- acceptance: degraded multi-tenant drain ------------------------------------


def _wire_system(
    kind: str,
    schedule: FaultSchedule | None = None,
    resilience: ResilienceConfig | None = None,
    *,
    num_providers: int = 3,
    seed: int = 7,
) -> FederatedAQPSystem:
    """A serial-backend system whose phase calls cross a real transport."""
    config = SystemConfig(
        num_providers=num_providers,
        seed=seed,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2),
        transport=TransportConfig(kind=kind),
        parallelism=ParallelismConfig(enabled=False, injected_faults=schedule),
        resilience=resilience or ResilienceConfig(),
    )
    return FederatedAQPSystem.from_table(_table(), config=config)


@pytest.mark.parametrize("kind", ["loopback", "socket"])
def test_transport_disconnect_mid_answer_degrades_with_exact_actuals(kind, chaos_trace):
    baseline = _wire_system(kind).execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(kind="disconnect", provider_index=1, phase="answer", repeat=2)
    )
    system = _wire_system(
        kind, schedule, ResilienceConfig(enabled=True, max_retries=1, min_providers=1)
    )
    degraded = system.execute_batch(QUERIES, compute_exact=False)
    chaos_trace(system.aggregator.fault_injector)
    assert degraded.degraded and degraded.providers_missing == ("provider-1",)
    baseline_values = {
        (index, report.provider_id): report.released_value
        for index, result in enumerate(baseline.results)
        for report in result.provider_reports
    }
    for index, result in enumerate(degraded.results):
        for report in result.provider_reports:
            # The disconnect fires on the aggregator side, before the
            # provider consumes any randomness: survivors' released answers
            # are bit-identical to the no-fault run over the same wire.
            assert report.released_value == baseline_values[(index, report.provider_id)]
        # Honest charging under degradation: the survivors delivered both
        # phases, so the max-composed actual is the full per-query price.
        assert result.epsilon_spent == pytest.approx(1.0)
        assert result.delta_spent == pytest.approx(1e-3)
    assert system.aggregator.resilience_stats.degraded_batches == 1


@pytest.mark.parametrize("kind", ["loopback", "socket"])
def test_transport_disconnect_heals_on_retry_bit_identical(kind, chaos_trace):
    baseline = _wire_system(kind).execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(kind="disconnect", provider_index=1, phase="answer", repeat=1)
    )
    system = _wire_system(
        kind, schedule, ResilienceConfig(enabled=True, max_retries=1)
    )
    result = system.execute_batch(QUERIES, compute_exact=False)
    chaos_trace(system.aggregator.fault_injector)
    # One severed connection, one retry over a fresh connection.  The fault
    # fires before the provider runs, so the retried call replays the exact
    # same draws: the whole batch is bit-identical to the healthy run.
    assert not result.degraded
    assert result.values == baseline.values
    assert system.aggregator.fault_injector.fired == 1


def test_transport_slow_frame_changes_nothing_but_latency(chaos_trace):
    baseline = _wire_system("socket").execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(
            kind="delay_frame", provider_index=0, phase="summary",
            repeat=1, delay_seconds=0.2,
        )
    )
    system = _wire_system("socket", schedule)
    result = system.execute_batch(QUERIES, compute_exact=False)
    chaos_trace(system.aggregator.fault_injector)
    assert result.values == baseline.values and not result.degraded
    assert system.aggregator.fault_injector.fired == 1
    # A slow frame is not a lost frame: nothing dropped, nothing duplicated.
    stats = system.transport_stats()
    assert stats.messages_dropped == 0 and stats.frames_duplicated == 0


@pytest.mark.parametrize("kind", ["loopback", "socket"])
def test_transport_duplicate_delivery_is_discarded_by_seq(kind, chaos_trace):
    baseline = _wire_system(kind).execute_batch(QUERIES, compute_exact=False)
    schedule = FaultSchedule.of(
        FaultSpec(kind="duplicate_frame", provider_index=2, phase="answer", repeat=1)
    )
    system = _wire_system(kind, schedule)
    result = system.execute_batch(QUERIES, compute_exact=False)
    chaos_trace(system.aggregator.fault_injector)
    # At-least-once delivery must not become at-least-once execution: the
    # duplicated reply is matched by sequence number and discarded, counted.
    assert result.values == baseline.values and not result.degraded
    assert system.transport_stats().frames_duplicated == 1


def test_transport_fault_without_resilience_is_fatal():
    from repro.errors import TransportError

    schedule = FaultSchedule.of(
        FaultSpec(kind="drop_frame", provider_index=0, phase="summary")
    )
    system = _wire_system("loopback", schedule)  # resilience disabled
    with pytest.raises(TransportError):
        system.execute_batch(QUERIES, compute_exact=False)
    assert system.transport_stats().messages_dropped == 1


@pytest.mark.parametrize("kind", ["loopback", "socket"])
def test_fatal_transport_failure_does_not_wedge_later_batches(kind):
    from repro.errors import TransportError

    schedule = FaultSchedule.of(
        FaultSpec(kind="disconnect", provider_index=1, phase="answer", batch=0)
    )
    with _wire_system(kind, schedule) as system:  # no resilience: batch 0 dies
        with pytest.raises(TransportError):
            system.execute_batch(QUERIES, compute_exact=False)
        messages_at_failure = system.transport_stats().messages
        for provider in system.providers:
            assert provider.num_open_sessions == 0
        # The abnormal-exit path tore the wire down with the rest of the
        # aggregator's resources; the next batch must rebuild the transport
        # (the wedge regression, transport edition) and answer normally,
        # with the wire counters carried forward cumulatively.  (Bit-identity
        # of healed answers belongs to the retry test above: a *fatal* batch
        # already consumed its summary-phase draws.)
        result = system.execute_batch(QUERIES, compute_exact=False)
        assert len(result.results) == len(QUERIES)
        assert not result.degraded
        stats = system.transport_stats()
        assert stats.messages > messages_at_failure
        assert stats.messages_dropped == 0  # disconnects sever, they don't drop


def test_degraded_drain_over_socket_leaks_no_reservations(chaos_trace):
    schedule = FaultSchedule.of(
        FaultSpec(
            kind="disconnect", provider_index=2, phase="answer",
            batch=None, repeat=50,
        )
    )
    system = _wire_system(
        "socket",
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, min_providers=1),
    )
    registry = TenantRegistry()
    for tenant_id in ("alice", "bob"):
        registry.register(tenant_id, total_epsilon=50.0, total_delta=0.5)
    scheduler = SessionScheduler(system, registry)
    try:
        scheduler.submit("alice", list(QUERIES))
        scheduler.submit("bob", list(QUERIES[:2]))
        answers = scheduler.drain()
        chaos_trace(system.aggregator.fault_injector)
    finally:
        system.close()
    assert {answer.tenant_id for answer in answers} == {"alice", "bob"}
    for answer in answers:
        assert answer.degraded
        assert answer.providers_missing == ("provider-2",)
        tenant = registry.get(answer.tenant_id)
        # PR 7's settlement guarantee holds over a real wire: reservations
        # fully returned, wallets debited the exact delivered actuals.
        assert tenant.budget.reserved_epsilon == 0.0
        assert tenant.budget.reserved_delta == 0.0
        charged = sum(result.epsilon_spent for result in answer.results)
        assert answer.epsilon_charged == pytest.approx(charged)
        assert tenant.remaining_epsilon == pytest.approx(50.0 - charged)
    assert scheduler.stats.degraded_queries == 5


def test_degraded_drain_settles_exact_actuals_and_returns_reservations(chaos_trace):
    schedule = FaultSchedule.of(
        FaultSpec(
            kind="crash_worker", provider_index=2, phase="answer",
            batch=None, repeat=50,
        )
    )
    system = _system(
        "process",
        schedule,
        ResilienceConfig(enabled=True, max_retries=1, provider_timeout_seconds=30.0),
    )
    registry = TenantRegistry()
    for tenant_id in ("alice", "bob"):
        registry.register(tenant_id, total_epsilon=50.0, total_delta=0.5)
    scheduler = SessionScheduler(system, registry)
    try:
        scheduler.submit("alice", list(QUERIES))
        scheduler.submit("bob", list(QUERIES[:2]))
        answers = scheduler.drain()
        chaos_trace(system.aggregator.fault_injector)
        names = system.aggregator._process_pool.shared_block_names()
        assert _live_blocks(names) == list(names)
    finally:
        system.close()
    assert {answer.tenant_id for answer in answers} == {"alice", "bob"}
    for answer in answers:
        assert answer.degraded
        assert answer.providers_missing == ("provider-2",)
        tenant = registry.get(answer.tenant_id)
        # Partial answers settle through the honest-charging path: the
        # admission reservation is fully returned and the wallet debits
        # exactly the per-query actuals of the delivered releases.
        assert tenant.budget.reserved_epsilon == 0.0
        assert tenant.budget.reserved_delta == 0.0
        charged = sum(result.epsilon_spent for result in answer.results)
        assert answer.epsilon_charged == pytest.approx(charged)
        assert tenant.remaining_epsilon == pytest.approx(50.0 - charged)
        assert tenant.degraded_queries == answer.num_queries
        for result in answer.results:
            # Surviving providers answered fresh; the missing provider at
            # the answer phase still spent only its summary share, so the
            # max-composed charge is the full per-query price, exactly.
            assert result.epsilon_spent == pytest.approx(1.0)
    assert scheduler.stats.degraded_queries == 5
    # Zero leaked shared blocks after close.
    assert _live_blocks(names) == []
