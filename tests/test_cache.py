"""Unit tests for the release-cache store, keys, and policy.

The store is exercised directly (no federation): LRU capacity, TTL by
protocol round, layout-epoch staleness, epsilon-aware admission, stats
accounting, and the non-mutating peek used by the reuse planner.
"""

from __future__ import annotations

import pytest

from repro.cache.key import answer_key, query_fingerprint, summary_key
from repro.cache.store import CacheStats, ReleaseCache
from repro.config import CacheConfig
from repro.core.accounting import QueryBudget
from repro.errors import ConfigurationError
from repro.query.model import RangeQuery


def _cache(**kwargs) -> ReleaseCache:
    return ReleaseCache(CacheConfig(enabled=True, **kwargs))


BUDGET = QueryBudget(0.1, 0.1, 0.8, 1e-3)


class TestKeys:
    def test_fingerprint_is_predicate_order_independent(self):
        first = RangeQuery.count({"age": (10, 20), "dept": (1, 3)})
        second = RangeQuery.count({"dept": (1, 3), "age": (10, 20)})
        assert query_fingerprint(first) == query_fingerprint(second)

    def test_fingerprint_separates_aggregations_and_ranges(self):
        count = RangeQuery.count({"age": (10, 20)})
        assert query_fingerprint(count) != query_fingerprint(
            RangeQuery.sum({"age": (10, 20)})
        )
        assert query_fingerprint(count) != query_fingerprint(
            RangeQuery.count({"age": (10, 21)})
        )

    def test_summary_key_is_epsilon_aware(self):
        query = RangeQuery.count({"age": (10, 20)})
        assert summary_key(query, 0.1) != summary_key(query, 0.2)
        assert summary_key(query, 0.1) == summary_key(query, 0.1)

    def test_answer_key_includes_sample_size_and_budget(self):
        query = RangeQuery.count({"age": (10, 20)})
        assert answer_key(query, BUDGET, 3) != answer_key(query, BUDGET, 4)
        other = QueryBudget(0.1, 0.2, 0.7, 1e-3)
        assert answer_key(query, BUDGET, 3) != answer_key(query, other, 3)


class TestReleaseCacheStore:
    def test_disabled_cache_is_a_no_op(self):
        cache = ReleaseCache(CacheConfig(enabled=False))
        cache.put("k", "v", epoch=0, epsilon=1.0)
        assert cache.get("k", epoch=0) is None
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_hit_returns_stored_value(self):
        cache = _cache()
        cache.put("k", ("release",), epoch=0, epsilon=1.0)
        assert cache.get("k", epoch=0) == ("release",)
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 1.0

    def test_lru_eviction_beyond_capacity(self):
        cache = _cache(max_entries=2)
        cache.put("a", 1, epoch=0, epsilon=1.0)
        cache.put("b", 2, epoch=0, epsilon=1.0)
        assert cache.get("a", epoch=0) == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3, epoch=0, epsilon=1.0)
        assert cache.get("b", epoch=0) is None
        assert cache.get("a", epoch=0) == 1
        assert cache.get("c", epoch=0) == 3
        assert cache.stats.evicted_capacity == 1

    def test_stale_epoch_evicts_and_misses(self):
        cache = _cache()
        cache.put("k", 1, epoch=0, epsilon=1.0)
        assert cache.get("k", epoch=1) is None
        assert cache.stats.evicted_stale == 1
        # The stale entry is gone even for its original epoch.
        assert cache.get("k", epoch=0) is None

    def test_purge_stale_drops_old_epochs_eagerly(self):
        cache = _cache()
        cache.put("a", 1, epoch=0, epsilon=1.0)
        cache.put("b", 2, epoch=1, epsilon=1.0)
        assert cache.purge_stale(1) == 1
        assert len(cache) == 1
        assert cache.get("b", epoch=1) == 2

    def test_ttl_expires_after_configured_rounds(self):
        cache = _cache(ttl_rounds=2)
        cache.advance_round()
        cache.put("k", 1, epoch=0, epsilon=1.0)
        cache.advance_round()
        assert cache.get("k", epoch=0) == 1  # age 1 < 2
        cache.advance_round()
        assert cache.get("k", epoch=0) is None  # age 2 >= 2
        assert cache.stats.evicted_expired == 1

    def test_epsilon_admission_floor(self):
        cache = _cache(min_epsilon=0.5)
        cache.put("low", 1, epoch=0, epsilon=0.4)
        cache.put("high", 2, epoch=0, epsilon=0.5)
        assert cache.get("low", epoch=0) is None
        assert cache.get("high", epoch=0) == 2
        assert cache.stats.rejected == 1

    def test_peek_does_not_mutate_or_count(self):
        cache = _cache(ttl_rounds=1)
        cache.put("k", 1, epoch=0, epsilon=1.0)
        assert cache.peek("k", epoch=0) == 1
        # One round ahead the entry will have expired — peek predicts that
        # without evicting it.
        assert cache.peek("k", epoch=0, rounds_ahead=1) is None
        assert len(cache) == 1
        assert cache.stats.lookups == 0

    def test_clear_preserves_stats(self):
        cache = _cache()
        cache.put("k", 1, epoch=0, epsilon=1.0)
        assert cache.get("k", epoch=0) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_stats_merge(self):
        first = CacheStats(lookups=2, hits=1, misses=1)
        second = CacheStats(lookups=3, hits=3, insertions=4)
        merged = CacheStats.merged([first, second])
        assert merged.lookups == 5
        assert merged.hits == 4
        assert merged.insertions == 4
        assert merged.hit_rate == pytest.approx(4 / 5)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(max_entries=0)
        with pytest.raises(ConfigurationError):
            CacheConfig(ttl_rounds=0)
        with pytest.raises(ConfigurationError):
            CacheConfig(min_epsilon=-0.1)
