"""Regression tests: providers must never leak per-query session state.

The seed implementation only released sessions on the success path, so any
error between the summary and answer phases (a failing provider, an
allocation error) left ``DataProvider._sessions`` growing forever.  The
aggregator now releases every session in a ``finally`` block, batch-aware.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PrivacyConfig, SamplingConfig, SystemConfig
from repro.core.accounting import split_query_budget
from repro.core.system import FederatedAQPSystem
from repro.query.model import RangeQuery
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table


@pytest.fixture
def system() -> FederatedAQPSystem:
    rng = np.random.default_rng(5)
    schema = Schema((Dimension("age", 0, 99), Dimension("dept", 0, 9)))
    table = Table(
        schema,
        {"age": rng.integers(0, 100, 3000), "dept": rng.integers(0, 10, 3000)},
    )
    config = SystemConfig(
        cluster_size=100,
        num_providers=3,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
        seed=3,
    )
    return FederatedAQPSystem.from_table(table, config=config)


QUERIES = [
    RangeQuery.count({"age": (10, 80)}),
    RangeQuery.count({"age": (20, 60), "dept": (1, 8)}),
    RangeQuery.sum({"dept": (0, 5)}),
]


def _open_sessions(system: FederatedAQPSystem) -> list[int]:
    return [provider.num_open_sessions for provider in system.providers]


class TestSessionRelease:
    def test_success_path_releases_all_sessions(self, system):
        system.execute_batch(QUERIES, compute_exact=False)
        assert _open_sessions(system) == [0, 0, 0]

    def test_sequential_loop_releases_all_sessions(self, system):
        for query in QUERIES:
            system.execute(query, compute_exact=False)
        assert _open_sessions(system) == [0, 0, 0]

    def test_failure_between_summary_and_answer_releases_sessions(
        self, monkeypatch
    ):
        rng = np.random.default_rng(5)
        schema = Schema((Dimension("age", 0, 99), Dimension("dept", 0, 9)))
        table = Table(
            schema,
            {"age": rng.integers(0, 100, 3000), "dept": rng.integers(0, 10, 3000)},
        )
        config = SystemConfig(
            cluster_size=100,
            num_providers=3,
            privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
            sampling=SamplingConfig(sampling_rate=0.2, min_clusters_for_approximation=3),
            seed=3,
        )
        system = FederatedAQPSystem.from_table(
            table, config=config, total_epsilon=100.0, total_delta=0.5
        )
        provider = system.providers[-1]

        def explode(*args, **kwargs):
            raise RuntimeError("provider crashed mid-protocol")

        monkeypatch.setattr(provider, "answer_batch", explode)
        with pytest.raises(RuntimeError):
            system.execute_batch(QUERIES, compute_exact=False)
        # Every provider — including the ones that answered successfully and
        # the crashed one itself — must have dropped its per-query state.
        assert _open_sessions(system) == [0, 0, 0]
        # A batch that failed mid-protocol returned no answers, so it must
        # not have consumed any of the end user's budget either.
        assert system.remaining_budget() == (100.0, 0.5)

    def test_failure_during_combination_releases_sessions(self, system, monkeypatch):
        aggregator = system.aggregator

        def explode(*args, **kwargs):
            raise RuntimeError("combination failed")

        monkeypatch.setattr(aggregator, "_combine", explode)
        with pytest.raises(RuntimeError):
            system.execute_batch(QUERIES, compute_exact=False)
        assert _open_sessions(system) == [0, 0, 0]

    def test_repeated_failures_do_not_accumulate_state(self, system, monkeypatch):
        provider = system.providers[0]

        def explode(*args, **kwargs):
            raise RuntimeError("flaky provider")

        monkeypatch.setattr(provider, "answer_batch", explode)
        for _ in range(5):
            with pytest.raises(RuntimeError):
                system.execute_batch(QUERIES, compute_exact=False)
        assert _open_sessions(system) == [0, 0, 0]

    def test_budget_is_charged_before_any_session_is_created(self):
        rng = np.random.default_rng(5)
        schema = Schema((Dimension("age", 0, 99),))
        table = Table(schema, {"age": rng.integers(0, 100, 500)})
        config = SystemConfig(
            cluster_size=50,
            num_providers=2,
            privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
            seed=3,
        )
        system = FederatedAQPSystem.from_partitions(
            [table, table], config=config, total_epsilon=1.5, total_delta=1e-2
        )
        budget = split_query_budget(config.privacy)
        assert budget.epsilon_total == pytest.approx(1.0)
        with pytest.raises(Exception):
            # Two queries cost 2.0 epsilon > 1.5 total: batch admission is
            # all-or-nothing, so the batch is rejected before any charge and
            # no provider session may linger.
            system.execute_batch(
                [RangeQuery.count({"age": (0, 50)}), RangeQuery.count({"age": (10, 60)})],
                compute_exact=False,
            )
        assert _open_sessions(system) == [0, 0]
        # The rejected batch consumed no budget at all.
        assert system.remaining_budget()[0] == pytest.approx(1.5)
        # An affordable single query still goes through afterwards.
        result = system.execute(RangeQuery.count({"age": (0, 50)}), compute_exact=False)
        assert result.epsilon_spent == pytest.approx(1.0)
        assert system.remaining_budget()[0] == pytest.approx(0.5)
