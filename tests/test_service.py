"""Multi-tenant serving layer: scheduling, isolation, determinism, admission.

The load-bearing guarantees under test:

* **Interleaving invariance** — under a fixed seed, a tenant's answers are
  bit-identical whether its submissions run alone or coalesced with other
  tenants' traffic, in any submission order, across the serial, thread, and
  process provider backends (per-tenant noise streams + canonical
  coalescing order).
* **Budget isolation** — tenants hold separate wallets; admission prices
  with the reuse planner's sound bound, reserves it, and settles exact
  actuals; one tenant exhausting its budget never affects another.
* **Budget-exhaustion edges** — at exactly zero remaining budget a fully
  cached workload is admitted and charged zero; a partially cached workload
  is rejected atomically (nothing queued, reserved, or charged).
* **Backpressure** — the bounded pending queue sheds load instead of
  growing without bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    ParallelismConfig,
    PrivacyConfig,
    ServiceConfig,
    SystemConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServiceError,
    ServiceOverloadedError,
    UnknownTenantError,
)
from repro.query.model import RangeQuery
from repro.service import SessionScheduler, TenantRegistry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

QA = RangeQuery.count({"age": (10, 60)})
QB = RangeQuery.count({"hours": (5, 30)})
QC = RangeQuery.sum({"age": (0, 40)})
QD = RangeQuery.count({"age": (20, 80), "hours": (0, 20)})


def make_table() -> Table:
    rng = np.random.default_rng(123)
    n = 2000
    schema = Schema((Dimension("age", 0, 99), Dimension("hours", 0, 49)))
    return Table(
        schema,
        {"age": rng.integers(0, 100, n), "hours": rng.integers(0, 50, n)},
    )


def make_system(
    *, backend: str | None = None, cache: bool = False, seed: int = 7
) -> FederatedAQPSystem:
    config = SystemConfig(cluster_size=100, num_providers=4, seed=seed)
    if backend is not None:
        config = config.with_parallelism(
            ParallelismConfig(enabled=True, backend=backend)
        )
    if cache:
        config = config.with_cache(CacheConfig(enabled=True))
    return FederatedAQPSystem.from_table(make_table(), config=config)


def registry_for(*tenant_ids: str, epsilon: float = 50.0) -> TenantRegistry:
    registry = TenantRegistry()
    for tenant_id in tenant_ids:
        registry.register(tenant_id, total_epsilon=epsilon, total_delta=0.5)
    return registry


# -- determinism under interleaving ----------------------------------------------

TENANT_WORKLOADS = {
    "alice": [[QA, QC], [QD]],
    "bob": [[QB], [QC, QA]],
    "carol": [[QD, QB, QC]],
}


def _serve_interleaved(backend, order):
    """All tenants through one scheduler, submissions in the given order."""
    system = make_system(backend=backend)
    try:
        scheduler = SessionScheduler(
            system,
            registry_for(*TENANT_WORKLOADS),
            config=ServiceConfig(max_batch_size=4),
        )
        for tenant_id, submission_index in order:
            scheduler.submit(tenant_id, TENANT_WORKLOADS[tenant_id][submission_index])
        answers = scheduler.drain()
    finally:
        system.close()
    per_tenant: dict[str, list[tuple[float, ...]]] = {}
    charges: dict[str, float] = {}
    for answer in answers:
        per_tenant.setdefault(answer.tenant_id, []).append(answer.values)
        charges[answer.tenant_id] = (
            charges.get(answer.tenant_id, 0.0) + answer.epsilon_charged
        )
    return per_tenant, charges


def _serve_serially(backend):
    """Each tenant alone on a fresh identical system."""
    per_tenant: dict[str, list[tuple[float, ...]]] = {}
    charges: dict[str, float] = {}
    for tenant_id, submissions in TENANT_WORKLOADS.items():
        system = make_system(backend=backend)
        try:
            scheduler = SessionScheduler(system, registry_for(tenant_id))
            for queries in submissions:
                scheduler.submit(tenant_id, queries)
            answers = scheduler.drain()
        finally:
            system.close()
        per_tenant[tenant_id] = [answer.values for answer in answers]
        charges[tenant_id] = sum(answer.epsilon_charged for answer in answers)
    return per_tenant, charges


ROUND_ROBIN = [
    ("alice", 0),
    ("bob", 0),
    ("carol", 0),
    ("alice", 1),
    ("bob", 1),
]
SCRAMBLED = [
    ("carol", 0),
    ("bob", 0),
    ("bob", 1),
    ("alice", 0),
    ("alice", 1),
]


@pytest.mark.parametrize("backend", [None, "thread", "process"])
def test_interleaved_equals_serial_per_tenant(backend):
    serial_values, serial_charges = _serve_serially(backend)
    for order in (ROUND_ROBIN, SCRAMBLED):
        values, charges = _serve_interleaved(backend, order)
        assert values == serial_values
        assert charges == serial_charges


def test_backends_are_bit_identical_through_the_scheduler():
    baseline, _ = _serve_interleaved(None, ROUND_ROBIN)
    for backend in ("thread", "process"):
        values, _ = _serve_interleaved(backend, ROUND_ROBIN)
        assert values == baseline


def test_coalescing_batches_cross_tenants():
    system = make_system()
    scheduler = SessionScheduler(
        system,
        registry_for("alice", "bob", "carol"),
        config=ServiceConfig(max_batch_size=8),
    )
    scheduler.submit("bob", [QB, QC])
    scheduler.submit("alice", [QA])
    scheduler.submit("carol", [QD, QA])
    answers = scheduler.drain()
    assert scheduler.stats.batches_dispatched == 1
    assert scheduler.stats.cross_tenant_batches == 1
    assert scheduler.stats.queries_dispatched == 5
    # Canonical routing: answers come back per submission in
    # (tenant, submission order), each sized like its submission.
    assert [(a.tenant_id, a.num_queries) for a in answers] == [
        ("alice", 1),
        ("bob", 2),
        ("carol", 2),
    ]


def test_drain_respects_max_batch_size():
    system = make_system()
    scheduler = SessionScheduler(
        system, registry_for("alice"), config=ServiceConfig(max_batch_size=2)
    )
    scheduler.submit("alice", [QA, QB, QC, QD, QA])
    answers = scheduler.drain()
    assert scheduler.stats.batches_dispatched == 3
    assert answers[0].num_queries == 5


# -- admission, isolation, and accounting ----------------------------------------


def test_unknown_tenant_is_refused():
    scheduler = SessionScheduler(make_system(), registry_for("alice"))
    with pytest.raises(UnknownTenantError):
        scheduler.submit("mallory", [QA])


def test_system_with_own_budget_is_refused():
    config = SystemConfig(cluster_size=100, num_providers=4, seed=7)
    system = FederatedAQPSystem.from_partitions(
        [make_table()], config=config, total_epsilon=5.0
    )
    with pytest.raises(ServiceError):
        SessionScheduler(system, registry_for("alice"))


def test_empty_submission_is_refused():
    scheduler = SessionScheduler(make_system(), registry_for("alice"))
    with pytest.raises(ServiceError):
        scheduler.submit("alice", [])


def test_backpressure_sheds_load():
    scheduler = SessionScheduler(
        make_system(), registry_for("alice"), config=ServiceConfig(max_pending=2)
    )
    scheduler.submit("alice", [QA])
    scheduler.submit("alice", [QB])
    with pytest.raises(ServiceOverloadedError):
        scheduler.submit("alice", [QC])
    scheduler.drain()
    scheduler.submit("alice", [QC])  # queue drained: accepted again


def test_budget_isolation_between_tenants():
    registry = TenantRegistry()
    registry.register("poor", total_epsilon=1.0, total_delta=0.01)
    registry.register("rich", total_epsilon=100.0, total_delta=0.5)
    scheduler = SessionScheduler(make_system(), registry)
    scheduler.submit("poor", [QA])
    scheduler.drain()
    assert registry.remaining_budget("poor")[0] == pytest.approx(0.0)
    with pytest.raises(AdmissionError):
        scheduler.submit("poor", [QB])
    # The sibling tenant is untouched by the rejection and keeps serving.
    receipt = scheduler.submit("rich", [QB, QC])
    assert receipt.status == "queued"
    answers = scheduler.drain()
    assert len(answers) == 1 and answers[0].tenant_id == "rich"
    assert registry.remaining_budget("rich")[0] == pytest.approx(98.0)


def test_rejection_is_atomic():
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=1.5, total_delta=0.01)
    scheduler = SessionScheduler(make_system(), registry)
    tenant = registry.get("alice")
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QA, QB])  # needs 2.0
    assert scheduler.num_pending == 0
    assert tenant.budget.reserved_epsilon == 0.0
    assert len(tenant.budget.accountant) == 0
    assert tenant.sequence == 0  # no stream tokens consumed either
    assert scheduler.stats.submissions_rejected == 1


def test_reservations_gate_concurrent_submissions():
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=1.0, total_delta=0.01)
    scheduler = SessionScheduler(make_system(), registry)
    scheduler.submit("alice", [QA])  # reserves the whole wallet
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QB])  # individually affordable, jointly not
    answers = scheduler.drain()
    assert [a.epsilon_charged for a in answers] == [pytest.approx(1.0)]
    # After settlement the reservation is gone and the wallet reads its
    # true remaining value.
    assert registry.get("alice").budget.reserved_epsilon == 0.0


def test_charges_match_bounds_without_cache():
    scheduler = SessionScheduler(make_system(), registry_for("alice"))
    receipt = scheduler.submit("alice", [QA, QB, QC])
    assert receipt.bound_epsilon == pytest.approx(3.0)
    (answer,) = scheduler.drain()
    assert answer.epsilon_charged == pytest.approx(receipt.bound_epsilon)
    assert answer.delta_charged == pytest.approx(receipt.bound_delta)
    assert scheduler.stats.epsilon_by_tenant["alice"] == pytest.approx(3.0)


# -- budget-exhaustion edge cases (cache-aware admission) ------------------------


def test_zero_budget_fully_cached_workload_succeeds():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=2.0, total_delta=0.01)
    scheduler = SessionScheduler(system, registry)
    first = scheduler.serve([("alice", [QA, QB])])[0]
    assert first.epsilon_charged == pytest.approx(2.0)
    assert registry.remaining_budget("alice")[0] == pytest.approx(0.0)
    # Exactly zero budget left; the same predicates are now cached on every
    # provider, so the repeat prices (and costs) zero — and is re-served
    # byte-for-byte.
    receipt = scheduler.submit("alice", [QA, QB])
    assert receipt.status == "queued"
    assert receipt.bound_epsilon == 0.0
    (repeat,) = scheduler.drain()
    assert repeat.epsilon_charged == 0.0
    assert repeat.delta_charged == 0.0
    assert repeat.values == first.values


def test_zero_budget_partially_cached_workload_rejected_atomically():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=2.0, total_delta=0.01)
    scheduler = SessionScheduler(system, registry)
    scheduler.serve([("alice", [QA, QB])])
    tenant = registry.get("alice")
    ledger_before = len(tenant.budget.accountant)
    sequence_before = tenant.sequence
    # QC is fresh: the submission's bound is QC's full price, which no longer
    # fits — the whole submission (cached queries included) is refused with
    # no partial execution and no partial charge.
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QA, QC])
    assert len(tenant.budget.accountant) == ledger_before
    assert tenant.budget.reserved_epsilon == 0.0
    assert tenant.sequence == sequence_before
    assert scheduler.num_pending == 0


def test_deferred_submission_admitted_once_cache_makes_it_free():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("poor", total_epsilon=1e-9, total_delta=0.01)
    registry.register("rich", total_epsilon=100.0, total_delta=0.5)
    scheduler = SessionScheduler(
        system, registry, config=ServiceConfig(admission="defer")
    )
    receipt = scheduler.submit("poor", [QA])
    assert receipt.status == "deferred"
    assert scheduler.drain() == []  # still unaffordable: stays parked
    assert scheduler.num_deferred == 1
    # Another tenant's traffic releases the predicate; on the next drain the
    # parked submission re-prices to zero and completes free of charge.
    scheduler.serve([("rich", [QA])])
    assert scheduler.num_deferred == 1
    answers = scheduler.drain()
    assert [a.tenant_id for a in answers] == ["poor"]
    assert answers[0].epsilon_charged == 0.0
    assert scheduler.num_deferred == 0


def test_defer_without_cache_rejects_outright():
    # With the caches off a submission's price can never drop, so "defer"
    # must not park work that would wedge the queue forever.
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=1.0, total_delta=0.01)
    scheduler = SessionScheduler(
        make_system(cache=False),
        registry,
        config=ServiceConfig(admission="defer"),
    )
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QA, QB])
    assert scheduler.num_deferred == 0


def test_deferred_park_is_bounded_separately():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("poor", total_epsilon=1e-9, total_delta=0.01)
    registry.register("rich", total_epsilon=100.0, total_delta=0.5)
    scheduler = SessionScheduler(
        system, registry, config=ServiceConfig(admission="defer", max_pending=2)
    )
    scheduler.submit("poor", [QA])
    scheduler.submit("poor", [QB])
    with pytest.raises(ServiceOverloadedError):
        scheduler.submit("poor", [QC])  # park full
    # The wedged park does not starve admissible tenants...
    scheduler.submit("rich", [QA])
    scheduler.submit("rich", [QB])
    with pytest.raises(ServiceOverloadedError):
        scheduler.submit("rich", [QC])  # ...until the pending bound itself
    # and the park can be cleared explicitly.
    assert scheduler.discard_deferred("poor") == 2
    assert scheduler.num_deferred == 0


def test_failed_drain_charges_completed_queries():
    # Chunk 1 completes (noise released), chunk 2 blows up: the tenant owning
    # chunk 1's queries must still be charged, reservations returned, and the
    # exception propagated.
    system = make_system()
    registry = registry_for("alice", "bob")
    scheduler = SessionScheduler(
        system, registry, config=ServiceConfig(max_batch_size=2, max_in_flight_batches=1)
    )
    real_execute = system.execute_batch
    calls = {"n": 0}

    def flaky_execute(queries, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("provider fell over")
        return real_execute(queries, **kwargs)

    system.execute_batch = flaky_execute
    scheduler.submit("alice", [QA, QB])  # chunk 1 (completes)
    scheduler.submit("bob", [QC, QD])  # chunk 2 (fails)
    with pytest.raises(RuntimeError):
        scheduler.drain()
    alice = registry.get("alice")
    bob = registry.get("bob")
    # alice's two queries ran and are on her ledger; bob ran nothing.
    assert alice.budget.accountant.spent.epsilon == pytest.approx(2.0)
    assert bob.budget.accountant.spent.epsilon == 0.0
    # No reservation survives the failed drain, and the queue is empty.
    assert alice.budget.reserved_epsilon == 0.0
    assert bob.budget.reserved_epsilon == 0.0
    assert scheduler.num_pending == 0
    # The service keeps serving afterwards.
    system.execute_batch = real_execute
    answers = scheduler.serve([("bob", [QA])])
    assert len(answers) == 1


# -- cross-tenant reuse keeps fleet-wide spend sublinear -------------------------


def test_cross_tenant_reuse_prices_repeat_tenants_at_zero():
    system = make_system(cache=True)
    tenant_ids = [f"tenant-{index}" for index in range(6)]
    registry = registry_for(*tenant_ids, epsilon=10.0)
    scheduler = SessionScheduler(system, registry)
    answers = scheduler.serve([(tenant_id, [QA, QB]) for tenant_id in tenant_ids])
    # Canonical order puts tenant-0 first: it pays for the fresh releases;
    # every later tenant re-serves them as post-processing.
    total = sum(answer.epsilon_charged for answer in answers)
    assert answers[0].epsilon_charged == pytest.approx(2.0)
    assert total == pytest.approx(2.0)
    for answer in answers[1:]:
        assert answer.epsilon_charged == 0.0
        assert answer.values == answers[0].values


# -- configuration ----------------------------------------------------------------


def test_service_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_pending=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_in_flight_batches=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(admission="drop")
    assert ServiceConfig().with_admission("defer").admission == "defer"
    assert ServiceConfig().with_max_batch_size(8).max_batch_size == 8
    assert SystemConfig().service == ServiceConfig()


def test_duplicate_tenant_registration_is_refused():
    registry = registry_for("alice")
    with pytest.raises(ServiceError):
        registry.register("alice", total_epsilon=1.0)
    assert "alice" in registry and len(registry) == 1
    assert registry.tenant_ids == ("alice",)
