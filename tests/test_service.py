"""Multi-tenant serving layer: scheduling, isolation, determinism, admission.

The load-bearing guarantees under test:

* **Interleaving invariance** — under a fixed seed, a tenant's answers are
  bit-identical whether its submissions run alone or coalesced with other
  tenants' traffic, in any submission order, across the serial, thread, and
  process provider backends (per-tenant noise streams + canonical
  coalescing order).
* **Budget isolation** — tenants hold separate wallets; admission prices
  with the reuse planner's sound bound, reserves it, and settles exact
  actuals; one tenant exhausting its budget never affects another.
* **Budget-exhaustion edges** — at exactly zero remaining budget a fully
  cached workload is admitted and charged zero; a partially cached workload
  is rejected atomically (nothing queued, reserved, or charged).
* **Backpressure** — the bounded pending queue sheds load instead of
  growing without bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    ParallelismConfig,
    PrivacyConfig,
    ServiceConfig,
    SystemConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServiceError,
    ServiceOverloadedError,
    UnknownTenantError,
)
from repro.query.model import RangeQuery
from repro.service import SessionScheduler, TenantRegistry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

QA = RangeQuery.count({"age": (10, 60)})
QB = RangeQuery.count({"hours": (5, 30)})
QC = RangeQuery.sum({"age": (0, 40)})
QD = RangeQuery.count({"age": (20, 80), "hours": (0, 20)})


def make_table() -> Table:
    rng = np.random.default_rng(123)
    n = 2000
    schema = Schema((Dimension("age", 0, 99), Dimension("hours", 0, 49)))
    return Table(
        schema,
        {"age": rng.integers(0, 100, n), "hours": rng.integers(0, 50, n)},
    )


def make_system(
    *, backend: str | None = None, cache: bool = False, seed: int = 7
) -> FederatedAQPSystem:
    config = SystemConfig(cluster_size=100, num_providers=4, seed=seed)
    if backend is not None:
        config = config.with_parallelism(
            ParallelismConfig(enabled=True, backend=backend)
        )
    if cache:
        config = config.with_cache(CacheConfig(enabled=True))
    return FederatedAQPSystem.from_table(make_table(), config=config)


def registry_for(*tenant_ids: str, epsilon: float = 50.0) -> TenantRegistry:
    registry = TenantRegistry()
    for tenant_id in tenant_ids:
        registry.register(tenant_id, total_epsilon=epsilon, total_delta=0.5)
    return registry


# -- determinism under interleaving ----------------------------------------------

TENANT_WORKLOADS = {
    "alice": [[QA, QC], [QD]],
    "bob": [[QB], [QC, QA]],
    "carol": [[QD, QB, QC]],
}


def _serve_interleaved(backend, order):
    """All tenants through one scheduler, submissions in the given order."""
    system = make_system(backend=backend)
    try:
        scheduler = SessionScheduler(
            system,
            registry_for(*TENANT_WORKLOADS),
            config=ServiceConfig(max_batch_size=4),
        )
        for tenant_id, submission_index in order:
            scheduler.submit(tenant_id, TENANT_WORKLOADS[tenant_id][submission_index])
        answers = scheduler.drain()
    finally:
        system.close()
    per_tenant: dict[str, list[tuple[float, ...]]] = {}
    charges: dict[str, float] = {}
    for answer in answers:
        per_tenant.setdefault(answer.tenant_id, []).append(answer.values)
        charges[answer.tenant_id] = (
            charges.get(answer.tenant_id, 0.0) + answer.epsilon_charged
        )
    return per_tenant, charges


def _serve_serially(backend):
    """Each tenant alone on a fresh identical system."""
    per_tenant: dict[str, list[tuple[float, ...]]] = {}
    charges: dict[str, float] = {}
    for tenant_id, submissions in TENANT_WORKLOADS.items():
        system = make_system(backend=backend)
        try:
            scheduler = SessionScheduler(system, registry_for(tenant_id))
            for queries in submissions:
                scheduler.submit(tenant_id, queries)
            answers = scheduler.drain()
        finally:
            system.close()
        per_tenant[tenant_id] = [answer.values for answer in answers]
        charges[tenant_id] = sum(answer.epsilon_charged for answer in answers)
    return per_tenant, charges


ROUND_ROBIN = [
    ("alice", 0),
    ("bob", 0),
    ("carol", 0),
    ("alice", 1),
    ("bob", 1),
]
SCRAMBLED = [
    ("carol", 0),
    ("bob", 0),
    ("bob", 1),
    ("alice", 0),
    ("alice", 1),
]


@pytest.mark.parametrize("backend", [None, "thread", "process"])
def test_interleaved_equals_serial_per_tenant(backend):
    serial_values, serial_charges = _serve_serially(backend)
    for order in (ROUND_ROBIN, SCRAMBLED):
        values, charges = _serve_interleaved(backend, order)
        assert values == serial_values
        assert charges == serial_charges


def test_backends_are_bit_identical_through_the_scheduler():
    baseline, _ = _serve_interleaved(None, ROUND_ROBIN)
    for backend in ("thread", "process"):
        values, _ = _serve_interleaved(backend, ROUND_ROBIN)
        assert values == baseline


def test_coalescing_batches_cross_tenants():
    system = make_system()
    scheduler = SessionScheduler(
        system,
        registry_for("alice", "bob", "carol"),
        config=ServiceConfig(max_batch_size=8),
    )
    scheduler.submit("bob", [QB, QC])
    scheduler.submit("alice", [QA])
    scheduler.submit("carol", [QD, QA])
    answers = scheduler.drain()
    assert scheduler.stats.batches_dispatched == 1
    assert scheduler.stats.cross_tenant_batches == 1
    assert scheduler.stats.queries_dispatched == 5
    # Canonical routing: answers come back per submission in
    # (tenant, submission order), each sized like its submission.
    assert [(a.tenant_id, a.num_queries) for a in answers] == [
        ("alice", 1),
        ("bob", 2),
        ("carol", 2),
    ]


def test_drain_respects_max_batch_size():
    system = make_system()
    scheduler = SessionScheduler(
        system, registry_for("alice"), config=ServiceConfig(max_batch_size=2)
    )
    scheduler.submit("alice", [QA, QB, QC, QD, QA])
    answers = scheduler.drain()
    assert scheduler.stats.batches_dispatched == 3
    assert answers[0].num_queries == 5


# -- admission, isolation, and accounting ----------------------------------------


def test_unknown_tenant_is_refused():
    scheduler = SessionScheduler(make_system(), registry_for("alice"))
    with pytest.raises(UnknownTenantError):
        scheduler.submit("mallory", [QA])


def test_system_with_own_budget_is_refused():
    config = SystemConfig(cluster_size=100, num_providers=4, seed=7)
    system = FederatedAQPSystem.from_partitions(
        [make_table()], config=config, total_epsilon=5.0
    )
    with pytest.raises(ServiceError):
        SessionScheduler(system, registry_for("alice"))


def test_empty_submission_is_refused():
    scheduler = SessionScheduler(make_system(), registry_for("alice"))
    with pytest.raises(ServiceError):
        scheduler.submit("alice", [])


def test_backpressure_sheds_load():
    scheduler = SessionScheduler(
        make_system(), registry_for("alice"), config=ServiceConfig(max_pending=2)
    )
    scheduler.submit("alice", [QA])
    scheduler.submit("alice", [QB])
    with pytest.raises(ServiceOverloadedError):
        scheduler.submit("alice", [QC])
    scheduler.drain()
    scheduler.submit("alice", [QC])  # queue drained: accepted again


def test_budget_isolation_between_tenants():
    registry = TenantRegistry()
    registry.register("poor", total_epsilon=1.0, total_delta=0.01)
    registry.register("rich", total_epsilon=100.0, total_delta=0.5)
    scheduler = SessionScheduler(make_system(), registry)
    scheduler.submit("poor", [QA])
    scheduler.drain()
    assert registry.remaining_budget("poor")[0] == pytest.approx(0.0)
    with pytest.raises(AdmissionError):
        scheduler.submit("poor", [QB])
    # The sibling tenant is untouched by the rejection and keeps serving.
    receipt = scheduler.submit("rich", [QB, QC])
    assert receipt.status == "queued"
    answers = scheduler.drain()
    assert len(answers) == 1 and answers[0].tenant_id == "rich"
    assert registry.remaining_budget("rich")[0] == pytest.approx(98.0)


def test_rejection_is_atomic():
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=1.5, total_delta=0.01)
    scheduler = SessionScheduler(make_system(), registry)
    tenant = registry.get("alice")
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QA, QB])  # needs 2.0
    assert scheduler.num_pending == 0
    assert tenant.budget.reserved_epsilon == 0.0
    assert len(tenant.budget.accountant) == 0
    assert tenant.sequence == 0  # no stream tokens consumed either
    assert scheduler.stats.submissions_rejected == 1


def test_reservations_gate_concurrent_submissions():
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=1.0, total_delta=0.01)
    scheduler = SessionScheduler(make_system(), registry)
    scheduler.submit("alice", [QA])  # reserves the whole wallet
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QB])  # individually affordable, jointly not
    answers = scheduler.drain()
    assert [a.epsilon_charged for a in answers] == [pytest.approx(1.0)]
    # After settlement the reservation is gone and the wallet reads its
    # true remaining value.
    assert registry.get("alice").budget.reserved_epsilon == 0.0


def test_charges_match_bounds_without_cache():
    scheduler = SessionScheduler(make_system(), registry_for("alice"))
    receipt = scheduler.submit("alice", [QA, QB, QC])
    assert receipt.bound_epsilon == pytest.approx(3.0)
    (answer,) = scheduler.drain()
    assert answer.epsilon_charged == pytest.approx(receipt.bound_epsilon)
    assert answer.delta_charged == pytest.approx(receipt.bound_delta)
    assert scheduler.stats.epsilon_by_tenant["alice"] == pytest.approx(3.0)


# -- budget-exhaustion edge cases (cache-aware admission) ------------------------


def test_zero_budget_fully_cached_workload_succeeds():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=2.0, total_delta=0.01)
    scheduler = SessionScheduler(system, registry)
    first = scheduler.serve([("alice", [QA, QB])])[0]
    assert first.epsilon_charged == pytest.approx(2.0)
    assert registry.remaining_budget("alice")[0] == pytest.approx(0.0)
    # Exactly zero budget left; the same predicates are now cached on every
    # provider, so the repeat prices (and costs) zero — and is re-served
    # byte-for-byte.
    receipt = scheduler.submit("alice", [QA, QB])
    assert receipt.status == "queued"
    assert receipt.bound_epsilon == 0.0
    (repeat,) = scheduler.drain()
    assert repeat.epsilon_charged == 0.0
    assert repeat.delta_charged == 0.0
    assert repeat.values == first.values


def test_zero_budget_partially_cached_workload_rejected_atomically():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=2.0, total_delta=0.01)
    scheduler = SessionScheduler(system, registry)
    scheduler.serve([("alice", [QA, QB])])
    tenant = registry.get("alice")
    ledger_before = len(tenant.budget.accountant)
    sequence_before = tenant.sequence
    # QC is fresh: the submission's bound is QC's full price, which no longer
    # fits — the whole submission (cached queries included) is refused with
    # no partial execution and no partial charge.
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QA, QC])
    assert len(tenant.budget.accountant) == ledger_before
    assert tenant.budget.reserved_epsilon == 0.0
    assert tenant.sequence == sequence_before
    assert scheduler.num_pending == 0


def test_deferred_submission_admitted_once_cache_makes_it_free():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("poor", total_epsilon=1e-9, total_delta=0.01)
    registry.register("rich", total_epsilon=100.0, total_delta=0.5)
    scheduler = SessionScheduler(
        system, registry, config=ServiceConfig(admission="defer")
    )
    receipt = scheduler.submit("poor", [QA])
    assert receipt.status == "deferred"
    assert scheduler.drain() == []  # still unaffordable: stays parked
    assert scheduler.num_deferred == 1
    # Another tenant's traffic releases the predicate; on the next drain the
    # parked submission re-prices to zero and completes free of charge.
    scheduler.serve([("rich", [QA])])
    assert scheduler.num_deferred == 1
    answers = scheduler.drain()
    assert [a.tenant_id for a in answers] == ["poor"]
    assert answers[0].epsilon_charged == 0.0
    assert scheduler.num_deferred == 0


def test_defer_without_cache_rejects_outright():
    # With the caches off a submission's price can never drop, so "defer"
    # must not park work that would wedge the queue forever.
    registry = TenantRegistry()
    registry.register("alice", total_epsilon=1.0, total_delta=0.01)
    scheduler = SessionScheduler(
        make_system(cache=False),
        registry,
        config=ServiceConfig(admission="defer"),
    )
    with pytest.raises(AdmissionError):
        scheduler.submit("alice", [QA, QB])
    assert scheduler.num_deferred == 0


def test_deferred_park_is_bounded_separately():
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("poor", total_epsilon=1e-9, total_delta=0.01)
    registry.register("rich", total_epsilon=100.0, total_delta=0.5)
    scheduler = SessionScheduler(
        system, registry, config=ServiceConfig(admission="defer", max_pending=2)
    )
    scheduler.submit("poor", [QA])
    scheduler.submit("poor", [QB])
    with pytest.raises(ServiceOverloadedError):
        scheduler.submit("poor", [QC])  # park full
    # The wedged park does not starve admissible tenants...
    scheduler.submit("rich", [QA])
    scheduler.submit("rich", [QB])
    with pytest.raises(ServiceOverloadedError):
        scheduler.submit("rich", [QC])  # ...until the pending bound itself
    # and the park can be cleared explicitly.
    assert scheduler.discard_deferred("poor") == 2
    assert scheduler.num_deferred == 0


def test_failed_drain_charges_completed_queries():
    # Chunk 1 completes (noise released), chunk 2 blows up: the tenant owning
    # chunk 1's queries must still be charged, reservations returned, and the
    # exception propagated.
    system = make_system()
    registry = registry_for("alice", "bob")
    scheduler = SessionScheduler(
        system, registry, config=ServiceConfig(max_batch_size=2, max_in_flight_batches=1)
    )
    real_execute = system.execute_batch
    calls = {"n": 0}

    def flaky_execute(queries, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("provider fell over")
        return real_execute(queries, **kwargs)

    system.execute_batch = flaky_execute
    scheduler.submit("alice", [QA, QB])  # chunk 1 (completes)
    scheduler.submit("bob", [QC, QD])  # chunk 2 (fails)
    with pytest.raises(RuntimeError):
        scheduler.drain()
    alice = registry.get("alice")
    bob = registry.get("bob")
    # alice's two queries ran and are on her ledger; bob ran nothing.
    assert alice.budget.accountant.spent.epsilon == pytest.approx(2.0)
    assert bob.budget.accountant.spent.epsilon == 0.0
    # No reservation survives the failed drain, and the queue is empty.
    assert alice.budget.reserved_epsilon == 0.0
    assert bob.budget.reserved_epsilon == 0.0
    assert scheduler.num_pending == 0
    # The service keeps serving afterwards.
    system.execute_batch = real_execute
    answers = scheduler.serve([("bob", [QA])])
    assert len(answers) == 1


# -- cross-tenant reuse keeps fleet-wide spend sublinear -------------------------


def test_cross_tenant_reuse_prices_repeat_tenants_at_zero():
    system = make_system(cache=True)
    tenant_ids = [f"tenant-{index}" for index in range(6)]
    registry = registry_for(*tenant_ids, epsilon=10.0)
    scheduler = SessionScheduler(system, registry)
    answers = scheduler.serve([(tenant_id, [QA, QB]) for tenant_id in tenant_ids])
    # Canonical order puts tenant-0 first: it pays for the fresh releases;
    # every later tenant re-serves them as post-processing.
    total = sum(answer.epsilon_charged for answer in answers)
    assert answers[0].epsilon_charged == pytest.approx(2.0)
    assert total == pytest.approx(2.0)
    for answer in answers[1:]:
        assert answer.epsilon_charged == 0.0
        assert answer.values == answers[0].values


# -- configuration ----------------------------------------------------------------


def test_service_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_pending=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_in_flight_batches=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(admission="drop")
    assert ServiceConfig().with_admission("defer").admission == "defer"
    assert ServiceConfig().with_max_batch_size(8).max_batch_size == 8
    assert SystemConfig().service == ServiceConfig()


def test_duplicate_tenant_registration_is_refused():
    registry = registry_for("alice")
    with pytest.raises(ServiceError):
        registry.register("alice", total_epsilon=1.0)
    assert "alice" in registry and len(registry) == 1
    assert registry.tenant_ids == ("alice",)


# -- cost-model-driven scheduling -------------------------------------------------


def _answers_by_key(answers):
    return {(a.tenant_id, a.submission_id): (a.values, a.epsilon_charged) for a in answers}


def test_budgeted_chunking_answers_bit_identical_to_count_chunking():
    # A drain time budget moves chunk boundaries only; per-tenant noise
    # streams make every answer independent of the chunking.
    def run(service):
        scheduler = SessionScheduler(
            make_system(), registry_for("alice", "bob", "carol"), config=service
        )
        for tenant_id in ("alice", "bob", "carol"):
            scheduler.submit(tenant_id, [QA, QB, QC, QD])
        return scheduler, scheduler.drain()

    base_sched, base = run(ServiceConfig(max_batch_size=6))
    slo_sched, slo = run(
        ServiceConfig(max_batch_size=6, drain_time_budget_ms=0.05)
    )
    assert _answers_by_key(slo) == _answers_by_key(base)
    # The tight budget split the workload finer than the count cap alone.
    assert slo_sched.stats.batches_dispatched > base_sched.stats.batches_dispatched


def test_prediction_error_recorded_under_time_budget():
    scheduler = SessionScheduler(
        make_system(),
        registry_for("alice", "bob"),
        config=ServiceConfig(drain_time_budget_ms=5.0),
    )
    scheduler.submit("alice", [QA, QB, QC])
    scheduler.submit("bob", [QD, QA])
    scheduler.drain()
    stats = scheduler.stats
    # Every executed chunk fed the calibration: predictions and
    # measurements land pairwise, and the error EWMA is exposed.
    assert scheduler.cost_model.observations == stats.batches_dispatched > 0
    assert len(stats.chunk_predicted_seconds) == stats.batches_dispatched
    assert len(stats.chunk_actual_seconds) == stats.batches_dispatched
    assert all(p > 0 for p in stats.chunk_predicted_seconds)
    assert stats.cost_prediction_error == scheduler.cost_model.prediction_error > 0
    assert scheduler.stats.chunk_latency.count == stats.batches_dispatched


def test_overlapped_drain_answers_bit_identical_to_serial():
    def run(service):
        scheduler = SessionScheduler(
            make_system(), registry_for("alice", "bob"), config=service
        )
        scheduler.submit("alice", [QA, QB, QC])
        scheduler.submit("bob", [QD, QA, QB])
        return scheduler.drain()

    serial = run(ServiceConfig(max_batch_size=2))
    overlapped = run(ServiceConfig(max_batch_size=2, overlap_phases=True))
    assert _answers_by_key(overlapped) == _answers_by_key(serial)


def test_overlapped_drain_keeps_ingest_and_compaction_working():
    # Phase-split batches must release their provider sessions before the
    # drain's trailing ingest work items run, or compaction would refuse.
    system = make_system()
    registry = registry_for("alice")
    scheduler = SessionScheduler(
        system,
        registry,
        config=ServiceConfig(max_batch_size=1, overlap_phases=True),
    )
    rng = np.random.default_rng(5)
    rows = Table(
        system.providers[0].table.schema,
        {"age": rng.integers(0, 100, 40), "hours": rng.integers(0, 50, 40)},
    )
    scheduler.submit("alice", [QA, QB, QC])
    scheduler.submit_ingest(rows, tenant_id="alice")
    answers = scheduler.drain()
    assert len(answers) == 1
    assert registry.get("alice").rows_ingested == 40
    system.compact()  # no leaked sessions: compaction is allowed
    assert system.total_delta_rows == 0


def test_weighted_fair_admission_prefers_high_priority_under_cap():
    registry = TenantRegistry()
    registry.register("low", total_epsilon=50.0, priority_class=1)
    registry.register("high", total_epsilon=50.0, priority_class=8)
    scheduler = SessionScheduler(
        make_system(),
        registry,
        config=ServiceConfig(max_queries_per_drain=1),
    )
    scheduler.submit("low", [QA])  # arrives first, sorts first canonically
    scheduler.submit("high", [QB])
    first = scheduler.drain()
    assert [a.tenant_id for a in first] == ["high"]
    assert scheduler.num_pending == 1
    second = scheduler.drain()
    assert [a.tenant_id for a in second] == ["low"]
    assert scheduler.num_pending == 0


def test_starvation_bound_force_admits_within_limit():
    registry = TenantRegistry()
    registry.register("vip", total_epsilon=50.0, priority_class=100)
    registry.register("meek", total_epsilon=50.0, priority_class=1)
    scheduler = SessionScheduler(
        make_system(),
        registry,
        config=ServiceConfig(max_queries_per_drain=1, starvation_limit=3),
    )
    for _ in range(5):
        scheduler.submit("vip", [QA])
    scheduler.submit("meek", [QB])
    served = []
    for _ in range(3):
        served.append([a.tenant_id for a in scheduler.drain()])
    # Outweighed 100:1, "meek" still drains by its third eligible drain —
    # the aging stage admits it unconditionally (cap-exempt).
    assert "meek" not in served[0] and "meek" not in served[1]
    assert "meek" in served[2]
    assert scheduler.stats.submissions_force_admitted >= 1


def test_priorities_do_not_change_answer_values():
    def run(priorities):
        registry = TenantRegistry()
        for tenant_id in ("alice", "bob"):
            registry.register(
                tenant_id, total_epsilon=50.0, priority_class=priorities[tenant_id]
            )
        scheduler = SessionScheduler(
            make_system(),
            registry,
            config=ServiceConfig(max_queries_per_drain=2),
        )
        scheduler.submit("alice", [QA, QB])
        scheduler.submit("bob", [QC, QD])
        answers = []
        while scheduler.num_pending:
            answers.extend(scheduler.drain())
        return _answers_by_key(answers)

    assert run({"alice": 1, "bob": 1}) == run({"alice": 1, "bob": 9})


def test_deferred_resubmission_reestimates_after_compaction():
    # The staleness regression: a submission parked before an ingest +
    # compaction must be packed with costs from the *current* layout, not
    # the zone maps it was priced under when deferred.
    system = make_system(cache=True)
    registry = TenantRegistry()
    registry.register("poor", total_epsilon=1e-9, total_delta=0.01)
    registry.register("rich", total_epsilon=100.0, total_delta=0.5)
    scheduler = SessionScheduler(
        system,
        registry,
        config=ServiceConfig(admission="defer", drain_time_budget_ms=50.0),
    )
    receipt = scheduler.submit("poor", [QA])
    assert receipt.status == "deferred"
    parked = scheduler._deferred[0]
    stale_signature = parked.cost_signature
    assert stale_signature == scheduler.cost_model.layout_signature()
    # The layout moves underneath the parked submission.
    rng = np.random.default_rng(11)
    rows = Table(
        system.providers[0].table.schema,
        {"age": rng.integers(0, 100, 400), "hours": rng.integers(0, 50, 400)},
    )
    system.ingest(rows)
    system.compact()
    fresh_signature = scheduler.cost_model.layout_signature()
    assert fresh_signature != stale_signature
    # Another tenant's traffic makes the parked predicate free; the next
    # drain re-admits it and must re-estimate before packing.
    scheduler.serve([("rich", [QA])])
    answers = scheduler.drain()
    assert [a.tenant_id for a in answers] == ["poor"]
    assert parked.cost_signature == fresh_signature


def test_latency_histogram_percentiles():
    from repro.service import LatencyHistogram

    histogram = LatencyHistogram()
    assert histogram.p50 == histogram.p99 == 0.0 and histogram.count == 0
    samples = [0.010, 0.020, 0.030, 0.040, 0.100]
    for sample in samples:
        histogram.record(sample)
    assert histogram.count == 5
    assert histogram.p50 == pytest.approx(np.percentile(samples, 50))
    assert histogram.p95 == pytest.approx(np.percentile(samples, 95))
    assert histogram.p99 == pytest.approx(np.percentile(samples, 99))
    assert histogram.mean == pytest.approx(float(np.mean(samples)))
    with pytest.raises(ServiceError):
        histogram.percentile(101.0)


def test_drain_records_latency_stats():
    scheduler = SessionScheduler(make_system(), registry_for("alice", "bob"))
    scheduler.submit("alice", [QA])
    scheduler.submit("bob", [QB])
    answers = scheduler.drain()
    assert all(a.latency_seconds > 0 for a in answers)
    stats = scheduler.stats
    assert stats.drain_latency.count == 1
    assert stats.submission_latency.count == 2
    # Settlement latency can never precede chunk completion within a drain.
    assert stats.drain_latency.p99 >= max(a.latency_seconds for a in answers) * 0.99


def test_priority_class_validation():
    registry = TenantRegistry()
    with pytest.raises(ServiceError):
        registry.register("bad", total_epsilon=1.0, priority_class=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(drain_time_budget_ms=0.0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_queries_per_drain=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(starvation_limit=0)
    slo = ServiceConfig().with_drain_time_budget_ms(25.0).with_overlap_phases()
    assert slo.drain_time_budget_ms == 25.0 and slo.overlap_phases
