"""Tests for the metrics, reporting helpers, and experiment runners.

The experiment runners are exercised at miniature scale — the goal here is to
verify plumbing (shapes, fields, formatting, determinism of the acceptance
logic), not to reproduce the paper's numbers; the benchmarks do the latter.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments.dimension_analysis import format_dimension_analysis, run_dimension_analysis
from repro.experiments.epsilon_analysis import format_epsilon_analysis, run_epsilon_analysis
from repro.experiments.metadata_space import format_metadata_space, run_metadata_space
from repro.experiments.metrics import relative_error, speedup, summarise_errors
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import evaluate_workload
from repro.experiments.sampling_rate_analysis import (
    format_sampling_rate_analysis,
    run_sampling_rate_analysis,
)
from repro.experiments.scenarios import adult_scenario, amazon_scenario
from repro.experiments.smc_comparison import (
    format_sharing_costs,
    format_smc_comparison,
    run_sharing_cost_experiment,
    run_smc_vs_dp_experiment,
)
from repro.query.model import Aggregation, RangeQuery


@pytest.fixture(scope="module")
def tiny_adult():
    return adult_scenario(num_rows=6_000, cluster_size=100, sampling_rate=0.3, seed=1)


@pytest.fixture(scope="module")
def tiny_amazon():
    return amazon_scenario(num_rows=8_000, cluster_size=100, sampling_rate=0.2, seed=1)


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(100, 90) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert math.isinf(relative_error(0, 5))

    def test_relative_error_rejects_nan(self):
        with pytest.raises(ExperimentError):
            relative_error(float("nan"), 1.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(0.0, 0.0) == 1.0
        assert math.isinf(speedup(1.0, 0.0))
        with pytest.raises(ExperimentError):
            speedup(-1.0, 1.0)

    def test_summarise_errors(self):
        summary = summarise_errors([0.1, 0.3, float("inf"), 0.2])
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.2)
        assert summary.median == pytest.approx(0.2)
        assert summary.maximum == pytest.approx(0.3)

    def test_summarise_errors_rejects_all_infinite(self):
        with pytest.raises(ExperimentError):
            summarise_errors([float("inf")])


class TestReporting:
    def test_format_series_table_layout(self):
        text = format_series_table(
            "Title", [{"a": 1, "b": 2.3456789}, {"a": 10, "b": 0.5}], ["a", "b"]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_missing_column_rendered_empty(self):
        text = format_series_table("T", [{"a": 1}], ["a", "missing"])
        assert "missing" in text


class TestEvaluateWorkload:
    def test_stats_fields(self, tiny_adult):
        generator = tiny_adult.workload_generator(seed=0)
        workload = generator.generate(4, 2, Aggregation.COUNT)
        stats = evaluate_workload(tiny_adult.system, list(workload), sampling_rate=0.3)
        assert 1 <= stats.num_queries <= 4
        assert stats.mean_relative_error >= 0
        assert stats.mean_work_speedup > 0
        for evaluation in stats.evaluations:
            assert evaluation.exact_value >= 0
            assert evaluation.approximate_seconds >= 0

    def test_empty_workload_rejected(self, tiny_adult):
        with pytest.raises(ExperimentError):
            evaluate_workload(tiny_adult.system, [])

    def test_all_empty_answers_rejected(self, tiny_adult):
        # A query whose range matches nothing on every provider.
        query = RangeQuery.count({"capital_gain": (99, 99), "capital_loss": (99, 99)})
        with pytest.raises(ExperimentError):
            evaluate_workload(tiny_adult.system, [query])


class TestScenarios:
    def test_adult_scenario_shape(self, tiny_adult):
        assert tiny_adult.name == "adult_synth"
        assert tiny_adult.system.num_providers == 4
        assert set(tiny_adult.queryable_dimensions) <= set(
            tiny_adult.tensor.schema.dimension_names
        )

    def test_acceptance_predicate_rejects_empty_queries(self, tiny_adult):
        accept = tiny_adult.acceptance_predicate(min_selectivity=0.01)
        empty = RangeQuery.count({"capital_gain": (99, 99), "capital_loss": (99, 99)})
        assert not accept(empty)
        broad = RangeQuery.count({"age": (17, 90), "hours_per_week": (1, 99)})
        assert accept(broad)


class TestExperimentRunners:
    def test_dimension_analysis_rows(self, tiny_adult):
        points = run_dimension_analysis(
            tiny_adult,
            dimension_counts=[2],
            queries_per_point=3,
            aggregations=(Aggregation.COUNT,),
            min_selectivity=0.01,
        )
        assert len(points) == 1
        assert points[0].num_dimensions == 2
        assert points[0].num_queries <= 3
        assert "Figures 4 and 7" in format_dimension_analysis(points)

    def test_sampling_rate_analysis_rows(self, tiny_adult):
        points = run_sampling_rate_analysis(
            tiny_adult,
            sampling_rates=(0.1, 0.3),
            num_dimensions=2,
            queries_per_point=3,
            aggregations=(Aggregation.COUNT,),
            min_selectivity=0.01,
        )
        assert len(points) == 2
        assert {point.sampling_rate for point in points} == {0.1, 0.3}
        assert "Figure 5" in format_sampling_rate_analysis(points)

    def test_epsilon_analysis_rows(self, tiny_adult):
        points = run_epsilon_analysis(
            tiny_adult,
            epsilons=(0.5, 1.0),
            num_dimensions=2,
            queries_per_point=3,
            aggregations=(Aggregation.SUM,),
            min_selectivity=0.01,
        )
        assert len(points) == 2
        assert "Figures 6 and 7" in format_epsilon_analysis(points)

    def test_sharing_cost_experiment_shape(self, tiny_amazon):
        points = run_sharing_cost_experiment(tiny_amazon, num_queries=3, num_dimensions=2)
        assert len(points) == 3
        for point in points:
            assert point.row_sharing_seconds >= 0
            assert point.result_sharing_seconds > 0
        assert "Figure 1" in format_sharing_costs(points)

    def test_smc_vs_dp_experiment_shape(self, tiny_adult):
        points = run_smc_vs_dp_experiment(
            tiny_adult, num_queries=2, repetitions=2, num_dimensions=2
        )
        assert len(points) == 4
        assert "Figure 8" in format_smc_comparison(points)

    def test_metadata_space(self, tiny_adult, tiny_amazon):
        points = run_metadata_space([tiny_adult, tiny_amazon])
        assert {point.dataset for point in points} == {"adult_synth", "amazon"}
        for point in points:
            assert point.metadata_bytes > 0
            assert point.metadata_bytes_per_cluster > 0
            assert 0 < point.metadata_fraction < 1
        assert "Metadata space" in format_metadata_space(points)
