"""End-to-end tests of the public :class:`FederatedAQPSystem` facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FederatedAQPSystem,
    PrivacyConfig,
    RangeQuery,
    SamplingConfig,
    SystemConfig,
)
from repro.errors import BudgetExhaustedError
from repro.query.model import Aggregation


class TestSystemConstruction:
    def test_from_table_builds_configured_providers(self, small_table, small_config):
        system = FederatedAQPSystem.from_table(small_table, config=small_config)
        assert system.num_providers == 4
        assert system.total_rows == small_table.num_rows
        assert system.total_clusters == sum(p.num_clusters for p in system.providers)
        assert system.metadata_size_bytes() > 0

    def test_from_partitions_respects_partition_count(self, small_table, small_config):
        halves = [small_table.slice(0, 1000), small_table.slice(1000, 2000)]
        system = FederatedAQPSystem.from_partitions(halves, config=small_config)
        assert system.num_providers == 2


class TestQueryExecution:
    def test_estimate_tracks_exact_answer(self, small_system, small_table):
        query = RangeQuery.count({"age": (10, 80)})
        age = small_table.column("age")
        exact = int(((age >= 10) & (age <= 80)).sum())
        result = small_system.execute(query, sampling_rate=0.4)
        assert result.exact_value == exact
        # The estimate is noisy but must stay within a generous envelope of
        # the truth for a selective-but-large query on this fixture.
        assert abs(result.value - exact) < 0.9 * exact

    def test_relative_error_and_summary(self, small_system):
        result = small_system.execute(RangeQuery.count({"age": (10, 80)}))
        assert result.relative_error is not None
        assert result.absolute_error is not None
        assert "rel_err" in result.summary() or "exact" in result.summary()

    def test_sql_string_queries_accepted(self, small_system):
        result = small_system.execute(
            "SELECT COUNT(*) FROM t WHERE 10 <= age AND age <= 80",
            sampling_rate=0.3,
        )
        assert result.exact_value is not None

    def test_trace_counts_messages_and_work(self, small_system):
        result = small_system.execute(RangeQuery.count({"age": (10, 80)}))
        trace = result.trace
        assert trace.messages_sent >= 3 * small_system.num_providers
        assert 0 < trace.rows_scanned <= trace.rows_available
        assert trace.clusters_scanned <= trace.clusters_available
        assert set(trace.phase_seconds) == {"allocation", "local_answering", "combination"}

    def test_epsilon_override_controls_noise(self, small_system):
        query = RangeQuery.count({"age": (10, 80)})
        tight = [
            abs(small_system.execute(query, epsilon=100.0).noise_injected) for _ in range(5)
        ]
        loose = [
            abs(small_system.execute(query, epsilon=0.05).noise_injected) for _ in range(5)
        ]
        assert np.mean(tight) < np.mean(loose)

    def test_budget_split_reported(self, small_system):
        result = small_system.execute(RangeQuery.count({"age": (10, 80)}), epsilon=0.5)
        assert result.epsilon_spent == pytest.approx(0.5)
        assert result.delta_spent == pytest.approx(1e-3)

    def test_smc_path_executes_and_flags_result(self, small_system):
        result = small_system.execute(RangeQuery.count({"age": (10, 80)}), use_smc=True)
        assert result.used_smc
        # With SMC a single noise is injected at the aggregator.
        assert np.isfinite(result.noise_injected)

    def test_sum_and_count_agree_on_raw_tables(self, small_system):
        ranges = {"age": (20, 60), "hours": (0, 30)}
        count = small_system.execute(RangeQuery.count(ranges))
        total = small_system.execute(RangeQuery.sum(ranges))
        assert count.exact_value == total.exact_value

    def test_exact_baseline_consistency(self, small_system, small_table):
        query = RangeQuery.count({"hours": (5, 15)})
        baseline = small_system.exact_baseline(query)
        hours = small_table.column("hours")
        assert baseline.value == int(((hours >= 5) & (hours <= 15)).sum())
        assert baseline.rows_scanned <= small_table.num_rows

    def test_compute_exact_false_skips_baseline(self, small_system):
        result = small_system.execute(
            RangeQuery.count({"age": (10, 80)}), compute_exact=False
        )
        assert result.exact_value is None
        assert result.relative_error is None


class TestEndUserBudget:
    def test_budget_enforced_across_queries(self, small_table):
        config = SystemConfig(
            cluster_size=100,
            num_providers=2,
            privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
            sampling=SamplingConfig(sampling_rate=0.3, min_clusters_for_approximation=3),
            seed=1,
        )
        system = FederatedAQPSystem.from_table(
            small_table, config=config, total_epsilon=2.0, total_delta=1.0
        )
        query = RangeQuery.count({"age": (10, 80)})
        system.execute(query)
        system.execute(query)
        with pytest.raises(BudgetExhaustedError):
            system.execute(query)
        remaining = system.remaining_budget()
        assert remaining is not None
        assert remaining[0] == pytest.approx(0.0)

    def test_no_budget_means_unlimited(self, small_system):
        assert small_system.remaining_budget() is None
        for _ in range(3):
            small_system.execute(RangeQuery.count({"age": (10, 80)}))


class TestStatisticalBehaviour:
    def test_estimator_is_roughly_unbiased_over_repeated_runs(self, small_table):
        """Across independently seeded runs the mean estimate should approach
        the exact answer: the Hansen-Hurwitz weights match the DP selection
        distribution and the Laplace noise is symmetric around zero."""
        query = RangeQuery.count({"age": (10, 80)})
        estimates = []
        exact = None
        for seed in range(20):
            system = FederatedAQPSystem.from_table(
                small_table,
                config=SystemConfig(
                    cluster_size=100,
                    num_providers=4,
                    privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
                    sampling=SamplingConfig(
                        sampling_rate=0.3, min_clusters_for_approximation=3
                    ),
                    seed=seed,
                ),
            )
            result = system.execute(query, compute_exact=True)
            exact = result.exact_value
            estimates.append(result.value)
        assert np.mean(estimates) == pytest.approx(exact, rel=0.25)

    def test_higher_sampling_rate_scans_more_rows(self, small_system):
        query = RangeQuery.count({"age": (10, 80)})
        low = small_system.execute(query, sampling_rate=0.1).trace.rows_scanned
        high = small_system.execute(query, sampling_rate=0.6).trace.rows_scanned
        assert high >= low
