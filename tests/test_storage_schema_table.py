"""Tests for schemas, tables and count tensors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError, StorageError
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table
from repro.storage.tensor import build_count_tensor


class TestDimension:
    def test_domain_size(self):
        assert Dimension("age", 18, 90).domain_size == 73

    def test_contains_and_clip(self):
        dimension = Dimension("x", 0, 10)
        assert dimension.contains(5)
        assert not dimension.contains(11)
        assert dimension.clip(42) == 10
        assert dimension.clip(-3) == 0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(SchemaError):
            Dimension("bad", 10, 0)

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Dimension(" ", 0, 1)


class TestSchema:
    def test_lookup_and_index(self, small_schema):
        assert small_schema.dimension("hours").high == 49
        assert small_schema.dimension_index("dept") == 2
        assert "age" in small_schema
        assert "salary" not in small_schema

    def test_unknown_dimension_raises(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.dimension("salary")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Dimension("a", 0, 1), Dimension("a", 0, 2)))

    def test_measure_column_listed_last(self):
        schema = Schema((Dimension("a", 0, 1),), measure="m")
        assert schema.column_names == ("a", "m")
        assert schema.has_measure

    def test_measure_name_cannot_collide(self):
        with pytest.raises(SchemaError):
            Schema((Dimension("a", 0, 1),), measure="a")

    def test_with_measure_and_project(self, small_schema):
        with_measure = small_schema.with_measure()
        assert with_measure.has_measure
        projected = small_schema.project(["dept", "age"])
        assert projected.dimension_names == ("dept", "age")
        assert not projected.has_measure

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())


class TestTable:
    def test_from_rows_roundtrip(self, small_schema):
        rows = [(1, 2, 3), (4, 5, 6)]
        table = Table.from_rows(small_schema, rows)
        assert table.num_rows == 2
        assert table.row(1) == {"age": 4, "hours": 5, "dept": 6}

    def test_missing_column_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            Table(small_schema, {"age": np.array([1])})

    def test_unexpected_column_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            Table(
                small_schema,
                {
                    "age": np.array([1]),
                    "hours": np.array([1]),
                    "dept": np.array([1]),
                    "bonus": np.array([1]),
                },
            )

    def test_length_mismatch_rejected(self, small_schema):
        with pytest.raises(StorageError):
            Table(
                small_schema,
                {
                    "age": np.array([1, 2]),
                    "hours": np.array([1]),
                    "dept": np.array([1, 2]),
                },
            )

    def test_float_columns_with_integral_values_accepted(self, small_schema):
        table = Table(
            small_schema,
            {
                "age": np.array([1.0, 2.0]),
                "hours": np.array([3.0, 4.0]),
                "dept": np.array([5.0, 6.0]),
            },
        )
        assert table.column("age").dtype == np.int64

    def test_non_integral_floats_rejected(self, small_schema):
        with pytest.raises(StorageError):
            Table(
                small_schema,
                {
                    "age": np.array([1.5]),
                    "hours": np.array([1.0]),
                    "dept": np.array([1.0]),
                },
            )

    def test_measure_column_defaults_to_ones(self, small_table):
        assert small_table.measure_column().sum() == small_table.num_rows
        assert small_table.total_measure() == small_table.num_rows

    def test_take_select_slice_concat(self, small_table):
        taken = small_table.take([0, 10, 20])
        assert taken.num_rows == 3
        mask = small_table.column("age") < 50
        selected = small_table.select(mask)
        assert selected.num_rows == int(mask.sum())
        sliced = small_table.slice(0, 5)
        assert sliced.num_rows == 5
        combined = Table.concat([sliced, taken])
        assert combined.num_rows == 8

    def test_select_with_wrong_mask_size(self, small_table):
        with pytest.raises(StorageError):
            small_table.select(np.array([True, False]))

    def test_column_min_max(self, small_table):
        low, high = small_table.column_min_max("dept")
        assert 0 <= low <= high <= 9

    def test_empty_table(self, small_schema):
        table = Table.empty(small_schema)
        assert table.num_rows == 0
        with pytest.raises(StorageError):
            table.column_min_max("age")

    def test_row_out_of_range(self, small_table):
        with pytest.raises(StorageError):
            small_table.row(small_table.num_rows)

    def test_to_matrix_shape(self, small_table):
        matrix = small_table.to_matrix()
        assert matrix.shape == (small_table.num_rows, 3)


class TestCountTensor:
    def test_tensor_preserves_total_measure(self, small_table):
        tensor = build_count_tensor(small_table, ["dept"])
        assert tensor.schema.has_measure
        assert tensor.total_measure() == small_table.num_rows
        assert tensor.num_rows <= 10

    def test_tensor_rows_are_distinct_combinations(self, small_table):
        tensor = build_count_tensor(small_table, ["dept", "hours"])
        keys = set(zip(tensor.column("dept").tolist(), tensor.column("hours").tolist()))
        assert len(keys) == tensor.num_rows

    def test_tensor_of_tensor_reaggregates(self, small_table):
        tensor = build_count_tensor(small_table, ["dept", "hours"])
        coarser = build_count_tensor(tensor, ["dept"])
        assert coarser.total_measure() == small_table.num_rows
        assert coarser.num_rows <= 10

    def test_rejects_unknown_dimension(self, small_table):
        with pytest.raises(SchemaError):
            build_count_tensor(small_table, ["salary"])

    def test_rejects_duplicate_dimensions(self, small_table):
        with pytest.raises(SchemaError):
            build_count_tensor(small_table, ["dept", "dept"])

    def test_empty_source(self, small_schema):
        tensor = build_count_tensor(Table.empty(small_schema), ["age"])
        assert tensor.num_rows == 0

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_total_measure_invariant_under_aggregation(self, n):
        rng = np.random.default_rng(n)
        schema = Schema((Dimension("a", 0, 3), Dimension("b", 0, 3)))
        table = Table(
            schema,
            {"a": rng.integers(0, 4, n), "b": rng.integers(0, 4, n)},
        )
        tensor = build_count_tensor(table, ["a"])
        assert tensor.total_measure() == n
