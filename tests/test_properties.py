"""Property-based invariants (hypothesis): query algebra, budgets, cache keys.

Three families of properties the system's correctness arguments lean on:

* **Interval / RangeQuery algebra** — normalisation is canonical, containment
  and intersection agree with their arithmetic definitions, and the SQL text
  form round-trips exactly through the parser (including ``SUM(<column>)``
  measure names).
* **Budget accounting** — wallets never go negative, a charge succeeds
  exactly when the affordability check says so, failed (enforced) charges
  leave no trace, and admission reservations compose with spends.
* **Cache-key canonicalisation** — semantically equal queries map to equal
  release keys however their range mappings were built, and distinct
  predicates or budgets never collide.
* **Ingestion / compaction** — folding random delta batches into a random
  clustered table answers every query exactly like
  ``ClusteredTable.from_table`` on the union of rows (the compact-then-query
  ≡ rebuild anchor), watermarks advance monotonically and reset only on a
  fold, and a provider's layout epoch never decreases under any
  ingest/compact/rebuild interleaving.

The suite runs under the derandomised ``repro``/``ci`` profiles registered in
``conftest.py`` so CI failures are reproducible.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st

from repro.cache.key import answer_key, query_fingerprint, summary_key
from repro.config import PrivacyConfig
from repro.core.accounting import EndUserBudget, split_query_budget
from repro.dp.accountant import PrivacyAccountant
from repro.errors import BudgetExhaustedError
from repro.query.model import Aggregation, Interval, RangeQuery
from repro.query.parser import parse_query

# -- strategies -----------------------------------------------------------------

# Safe SQL identifiers: no keywords (and / between / select ...), no digits-only
# tokens, stable across the grammar's case-insensitive matching.
DIMENSION_NAMES = ("age", "hours", "dept", "income", "d0", "d1", "d2")
MEASURE_NAMES = ("measure", "revenue", "amount", "m1")

intervals = st.builds(
    lambda low, width: Interval(low, low + width),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=0, max_value=500),
)

points = st.integers(min_value=-1600, max_value=1600)


@st.composite
def range_queries(draw):
    names = draw(
        st.lists(
            st.sampled_from(DIMENSION_NAMES), min_size=1, max_size=4, unique=True
        )
    )
    ranges = {name: draw(intervals) for name in names}
    aggregation = draw(st.sampled_from(list(Aggregation)))
    measure = (
        draw(st.sampled_from(MEASURE_NAMES))
        if aggregation is Aggregation.SUM
        else None
    )
    return RangeQuery(aggregation, ranges, measure=measure)


small_spends = st.tuples(
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=0.01, allow_nan=False, allow_infinity=False),
)


# -- interval / query algebra ----------------------------------------------------


@given(intervals)
def test_interval_width_and_endpoints(interval):
    assert interval.width == interval.high - interval.low + 1 >= 1
    assert interval.contains(interval.low) and interval.contains(interval.high)
    assert not interval.contains(interval.low - 1)
    assert not interval.contains(interval.high + 1)


@given(intervals, points)
def test_interval_contains_matches_arithmetic(interval, value):
    assert interval.contains(value) == (interval.low <= value <= interval.high)


@given(intervals, intervals)
def test_interval_intersection_symmetric_and_arithmetic(a, b):
    expected = max(a.low, b.low) <= min(a.high, b.high)
    assert a.intersects(b) == b.intersects(a) == expected


@given(intervals, intervals, points)
def test_common_point_implies_intersection(a, b, value):
    if a.contains(value) and b.contains(value):
        assert a.intersects(b)


@given(range_queries())
def test_range_normalisation_is_canonical(query):
    # Tuple-built, Interval-built, and reversed-insertion-order queries are
    # all the same query.
    from_tuples = RangeQuery(
        query.aggregation,
        {name: interval.as_tuple() for name, interval in query.ranges.items()},
        measure=query.measure,
    )
    reversed_order = RangeQuery(
        query.aggregation,
        dict(reversed(list(query.ranges.items()))),
        measure=query.measure,
    )
    assert from_tuples == query
    assert reversed_order == query
    assert all(isinstance(interval, Interval) for interval in query.ranges.values())


# -- SQL round-trip --------------------------------------------------------------


@given(range_queries())
def test_sql_round_trip_is_exact(query):
    parsed, table = parse_query(query.to_sql())
    assert parsed == query
    assert table == "T"
    # The rendered text is a fixed point: parse -> render reproduces itself.
    assert parsed.to_sql() == query.to_sql()


@given(range_queries())
def test_sum_measure_survives_round_trip(query):
    if query.aggregation is Aggregation.SUM:
        assert f"SUM({query.measure})" in query.to_sql()
        assert parse_query(query.to_sql())[0].measure == query.measure
    else:
        assert query.measure is None
        assert "COUNT(*)" in query.to_sql()


# -- budget accounting -----------------------------------------------------------


@given(
    st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    st.lists(small_spends, min_size=1, max_size=12),
)
def test_accountant_never_overdraws_and_failures_leave_no_trace(total, charges):
    accountant = PrivacyAccountant(total_epsilon=total, total_delta=0.05)
    for epsilon, delta in charges:
        affordable = accountant.can_afford(epsilon, delta)
        before = (accountant.spent.epsilon, accountant.spent.delta, len(accountant))
        if affordable:
            accountant.charge(epsilon, delta)
        else:
            with pytest.raises(BudgetExhaustedError):
                accountant.charge(epsilon, delta)
            assert (
                accountant.spent.epsilon,
                accountant.spent.delta,
                len(accountant),
            ) == before
        assert accountant.remaining_epsilon >= 0.0
        assert accountant.remaining_delta >= 0.0
        assert accountant.spent.epsilon <= total + 1e-9


@given(st.lists(small_spends, min_size=1, max_size=8))
def test_charge_many_is_atomic(charges):
    total = sum(epsilon for epsilon, _ in charges)
    tight = PrivacyAccountant(total_epsilon=max(0.0, total - 0.5), total_delta=1.0)
    labelled = [(epsilon, delta, "q") for epsilon, delta in charges]
    if tight.can_afford(total, sum(delta for _, delta in charges)):
        tight.charge_many(labelled)
        assert len(tight) == len(charges)
    else:
        with pytest.raises(BudgetExhaustedError):
            tight.charge_many(labelled)
        assert len(tight) == 0
        assert tight.spent.epsilon == 0.0


@given(st.lists(small_spends, min_size=1, max_size=8))
def test_reservations_compose_with_spends(reservations):
    budget = EndUserBudget.create(4.0, 0.05)
    held: list[tuple[float, float]] = []
    for epsilon, delta in reservations:
        if budget.can_admit(epsilon, delta):
            budget.reserve(epsilon, delta)
            held.append((epsilon, delta))
        else:
            with pytest.raises(BudgetExhaustedError):
                budget.reserve(epsilon, delta)
        # Reservations never exceed what the wallet could actually pay.
        assert budget.reserved_epsilon <= 4.0 + 1e-9
        assert budget.reserved_delta <= 0.05 + 1e-9
    for epsilon, delta in held:
        budget.release(epsilon, delta)
    assert budget.reserved_epsilon == pytest.approx(0.0, abs=1e-12)
    assert budget.reserved_delta == pytest.approx(0.0, abs=1e-12)


def test_charges_never_exceed_admission_bounds():
    # The per-query actual charge is bounded by the full per-query spend the
    # admission check prices with — phase discounts only ever subtract.
    privacy = PrivacyConfig(epsilon=1.0, delta=1e-3)
    budget = split_query_budget(privacy)
    full = budget.epsilon_total
    for summary_hit in (False, True):
        for answer_hit in (False, True):
            from repro.federation.aggregator import Aggregator

            epsilon, delta = Aggregator._query_charge(
                budget, [summary_hit], [answer_hit]
            )
            assert 0.0 <= epsilon <= full + 1e-12
            assert 0.0 <= delta <= budget.delta


# -- cache-key canonicalisation --------------------------------------------------


@given(range_queries(), st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
def test_equal_queries_make_equal_keys(query, epsilon_allocation):
    shuffled = RangeQuery(
        query.aggregation,
        dict(reversed(list(query.ranges.items()))),
        measure=query.measure,
    )
    assert query_fingerprint(shuffled) == query_fingerprint(query)
    assert summary_key(shuffled, epsilon_allocation) == summary_key(
        query, epsilon_allocation
    )
    budget = split_query_budget(PrivacyConfig())
    assert answer_key(shuffled, budget, 5) == answer_key(query, budget, 5)


@given(range_queries(), range_queries())
def test_distinct_predicates_never_collide(a, b):
    same_semantics = a.aggregation == b.aggregation and dict(a.ranges) == dict(
        b.ranges
    )
    assert (query_fingerprint(a) == query_fingerprint(b)) == same_semantics


@given(range_queries())
def test_keys_distinguish_budgets_and_sample_sizes(query):
    assert summary_key(query, 0.1) != summary_key(query, 0.2)
    budget = split_query_budget(PrivacyConfig())
    assert answer_key(query, budget, 5) != answer_key(query, budget, 6)
    other = split_query_budget(PrivacyConfig(epsilon=2.0))
    assert answer_key(query, budget, 5) != answer_key(query, other, 5)


@given(range_queries())
def test_answer_keys_distinguish_delta_watermarks(query):
    budget = split_query_budget(PrivacyConfig())
    assert answer_key(query, budget, 5) == answer_key(
        query, budget, 5, delta_watermark=0
    )
    assert answer_key(query, budget, 5, delta_watermark=3) != answer_key(
        query, budget, 5, delta_watermark=4
    )


# -- ingestion / compaction -------------------------------------------------------

import numpy as np

from repro.ingest import DeltaStore, fold_into_clustered, incremental_eligible
from repro.storage.clustered_table import ClusteredTable
from repro.storage.metadata import build_metadata, patch_metadata
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

INGEST_SCHEMA = Schema((Dimension("d0", 0, 19), Dimension("d1", 0, 9)))


@st.composite
def ingest_tables(draw, min_rows=0, max_rows=48):
    num_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return Table(
        INGEST_SCHEMA,
        {
            "d0": rng.integers(0, 20, num_rows),
            "d1": rng.integers(0, 10, num_rows),
        },
    )


@st.composite
def ingest_boxes(draw):
    d0_low = draw(st.integers(min_value=0, max_value=19))
    d0_high = draw(st.integers(min_value=d0_low, max_value=19))
    d1_low = draw(st.integers(min_value=0, max_value=9))
    d1_high = draw(st.integers(min_value=d1_low, max_value=9))
    which = draw(st.integers(min_value=0, max_value=2))
    if which == 0:
        return RangeQuery.count({"d0": (d0_low, d0_high)})
    if which == 1:
        return RangeQuery.count({"d1": (d1_low, d1_high)})
    return RangeQuery.count({"d0": (d0_low, d0_high), "d1": (d1_low, d1_high)})


@given(
    ingest_tables(),
    st.lists(ingest_tables(max_rows=24), min_size=1, max_size=3),
    st.lists(ingest_boxes(), min_size=1, max_size=4),
    st.sampled_from(["sequential", "sorted"]),
    st.sampled_from([None, "d0", "d1"]),
    st.integers(min_value=1, max_value=9),
)
def test_fold_is_answer_equivalent_to_union_rebuild(
    base, deltas, queries, policy, intra, cluster_size
):
    """merge(compact(deltas)) ≡ ClusteredTable.from_table(all rows)."""
    if not incremental_eligible(policy, None, intra, INGEST_SCHEMA):
        return
    from repro.query.batch import QueryBatch
    from repro.query.executor import ExactExecutor

    clustered = ClusteredTable.from_table(
        base, cluster_size, policy=policy, intra_sort_by=intra
    )
    folded = clustered
    first_affected = clustered.num_clusters
    for delta in deltas:
        folded, first_affected = fold_into_clustered(
            folded,
            delta,
            clustering_policy=policy,
            sort_by=None,
            intra_sort_by=intra,
        )
    union = Table.concat([base] + list(deltas))
    rebuilt = ClusteredTable.from_table(
        union, cluster_size, policy=policy, intra_sort_by=intra
    )
    assert folded.num_clusters == rebuilt.num_clusters
    assert folded.num_rows == rebuilt.num_rows
    batch = QueryBatch(tuple(queries))
    mine = folded.layout().cluster_values(batch)
    theirs = rebuilt.layout().cluster_values(batch)
    assert np.array_equal(mine, theirs)
    # Metadata-driven exact execution agrees too (covering sets included).
    folded_metadata = build_metadata(folded)
    rebuilt_metadata = build_metadata(rebuilt)
    mine_exec = ExactExecutor(folded, folded_metadata).execute_batch(list(queries))
    theirs_exec = ExactExecutor(rebuilt, rebuilt_metadata).execute_batch(list(queries))
    assert [e.value for e in mine_exec] == [e.value for e in theirs_exec]


@given(
    ingest_tables(min_rows=1, max_rows=32),
    st.lists(ingest_tables(min_rows=1, max_rows=16), min_size=2, max_size=4),
    st.integers(min_value=1, max_value=9),
)
def test_patch_metadata_equals_full_rebuild(base, deltas, cluster_size):
    clustered = ClusteredTable.from_table(base, cluster_size)
    store = build_metadata(clustered)
    folded = clustered
    for delta in deltas:
        folded, first_affected = fold_into_clustered(
            folded, delta, clustering_policy="sequential", sort_by=None, intra_sort_by=None
        )
        store = patch_metadata(store, folded, first_affected)
    reference = build_metadata(folded)
    assert store.cluster_ids == reference.cluster_ids
    assert np.array_equal(store.occupancy, reference.occupancy)
    for name in reference.dense_index:
        assert np.array_equal(
            store.dense_index[name].rows_geq, reference.dense_index[name].rows_geq
        )
        assert np.array_equal(
            store.dense_index[name].v_min, reference.dense_index[name].v_min
        )
        assert np.array_equal(
            store.dense_index[name].v_max, reference.dense_index[name].v_max
        )


@given(st.lists(ingest_tables(max_rows=16), min_size=1, max_size=6))
def test_watermarks_are_monotone_until_drained(chunks):
    store = DeltaStore(INGEST_SCHEMA)
    previous = 0
    for chunk in chunks:
        watermark = store.append(chunk)
        assert watermark == previous + chunk.num_rows
        assert watermark >= previous
        previous = watermark
    drained = store.take_all()
    assert drained.num_rows == previous
    assert store.watermark == 0


@given(
    st.lists(
        st.tuples(st.sampled_from(["ingest", "compact", "rebuild"]), ingest_tables(max_rows=12)),
        min_size=1,
        max_size=6,
    )
)
def test_layout_epoch_never_decreases(operations):
    from repro.federation.provider import DataProvider

    provider = DataProvider(
        provider_id="p", table=Table.empty(INGEST_SCHEMA), cluster_size=5, rng=0
    )
    epoch = provider.layout_epoch
    watermark = 0
    for operation, rows in operations:
        if operation == "ingest":
            provider.ingest_rows(rows, auto_compact=False)
            assert provider.delta_watermark == watermark + rows.num_rows
            watermark = provider.delta_watermark
        elif operation == "compact":
            provider.compact()
            watermark = 0
            assert provider.delta_watermark == 0
        else:
            provider.rebuild_layout()
            watermark = 0
        assert provider.layout_epoch >= epoch
        epoch = provider.layout_epoch
    # Every row ever ingested is accounted for: clustered + buffered.
    total = sum(rows.num_rows for op, rows in operations if op == "ingest")
    assert provider.num_rows + provider.delta_watermark == total


# -- fault schedules: budget conservation under chaos -----------------------------

from hypothesis import settings

from repro.config import (
    ParallelismConfig,
    ResilienceConfig,
    SamplingConfig,
    SystemConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.errors import ProtocolError
from repro.service import SessionScheduler, TenantRegistry
from repro.testing import FaultSchedule

CHAOS_SCHEMA = Schema((Dimension("age", 0, 99), Dimension("hours", 0, 49)))

CHAOS_QUERIES = (
    RangeQuery.count({"age": (20, 60)}),
    RangeQuery.count({"hours": (5, 20)}),
    RangeQuery.count({"age": (0, 30), "hours": (0, 15)}),
)


def _chaos_table(rows: int = 600) -> Table:
    rng = np.random.default_rng(321)
    return Table(
        CHAOS_SCHEMA,
        {
            "age": rng.integers(0, 100, rows),
            "hours": np.minimum(49, rng.poisson(12, rows)),
        },
    )


def _chaos_system(backend: str, schedule: FaultSchedule | None) -> FederatedAQPSystem:
    config = SystemConfig(
        num_providers=3,
        seed=11,
        privacy=PrivacyConfig(epsilon=1.0, delta=1e-3),
        sampling=SamplingConfig(sampling_rate=0.2),
        parallelism=ParallelismConfig(
            enabled=backend != "serial",
            backend=backend if backend != "serial" else "thread",
            max_workers=3,
            injected_faults=schedule,
        ),
        resilience=ResilienceConfig(enabled=True, max_retries=1, min_providers=1),
    )
    return FederatedAQPSystem.from_table(_chaos_table(), config=config)


def _drain_under_chaos(backend: str, schedule: FaultSchedule | None):
    """Run a two-tenant workload under one fault schedule; return the pieces."""
    system = _chaos_system(backend, schedule)
    registry = TenantRegistry()
    for tenant_id in ("alice", "bob"):
        registry.register(tenant_id, total_epsilon=80.0, total_delta=0.5)
    scheduler = SessionScheduler(system, registry)
    answers = []
    aborted = False
    try:
        for _ in range(2):
            scheduler.submit("alice", list(CHAOS_QUERIES))
            scheduler.submit("bob", list(CHAOS_QUERIES[:2]))
            try:
                answers.extend(scheduler.drain())
            except ProtocolError:
                # Every provider failed the batch: the drain aborts, but the
                # abort path must still settle honestly (asserted below).
                aborted = True
    finally:
        system.close()
    return registry, scheduler, answers, aborted


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_budget_conserved_under_random_fault_schedules(seed):
    """Reserved budget always returns to zero and charges match the ledger,
    whatever faults fire and whether or not the drain survives them."""
    schedule = FaultSchedule.from_seed(
        seed, num_providers=3, num_batches=2, num_faults=3, repeat=2
    )
    registry, scheduler, answers, _ = _drain_under_chaos("serial", schedule)
    charged = {"alice": 0.0, "bob": 0.0}
    for answer in answers:
        charged[answer.tenant_id] += answer.epsilon_charged
        assert answer.epsilon_charged == pytest.approx(
            sum(result.epsilon_spent for result in answer.results)
        )
    for tenant in registry:
        assert tenant.budget.reserved_epsilon == 0.0
        assert tenant.budget.reserved_delta == 0.0
        ledger = scheduler.stats.epsilon_by_tenant.get(tenant.tenant_id, 0.0)
        # Delivered answers account for every debit unless a batch aborted
        # mid-drain, in which case the ledger still equals the wallet debit.
        assert ledger >= charged[tenant.tenant_id] - 1e-9
        assert tenant.remaining_epsilon == pytest.approx(80.0 - ledger)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_answer_phase_faults_leave_survivors_bit_identical(seed):
    """Faults confined to the answer phase never disturb surviving providers:
    their released values match the no-fault run bit for bit (same
    ``seed_material``), because the summary phase — and therefore the coupled
    allocation solve — is identical."""
    schedule = FaultSchedule.from_seed(
        seed,
        num_providers=3,
        num_batches=2,
        num_faults=2,
        phases=("answer",),
        repeat=4,
    )
    _, _, healthy, _ = _drain_under_chaos("serial", None)
    _, _, chaotic, aborted = _drain_under_chaos("serial", schedule)
    assert not aborted  # answer-phase faults degrade, they never abort
    baseline = {}
    for answer in healthy:
        for query_index, result in enumerate(answer.results):
            for report in result.provider_reports:
                key = (answer.tenant_id, answer.submission_id, query_index)
                baseline[key + (report.provider_id,)] = report.released_value
    compared = 0
    for answer in chaotic:
        for query_index, result in enumerate(answer.results):
            for report in result.provider_reports:
                key = (
                    answer.tenant_id,
                    answer.submission_id,
                    query_index,
                    report.provider_id,
                )
                assert result.value == result.value  # NaN guard
                assert report.released_value == baseline[key]
                compared += 1
    assert compared > 0


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_budget_conserved_under_chaos_on_parallel_backends(backend):
    """The conservation invariant holds on the real parallel backends too
    (a fixed seed keeps the expensive process-pool variant cheap)."""
    schedule = FaultSchedule.from_seed(
        1234, num_providers=3, num_batches=2, num_faults=3, repeat=2
    )
    registry, scheduler, answers, _ = _drain_under_chaos(backend, schedule)
    for tenant in registry:
        assert tenant.budget.reserved_epsilon == 0.0
        assert tenant.budget.reserved_delta == 0.0
        ledger = scheduler.stats.epsilon_by_tenant.get(tenant.tenant_id, 0.0)
        assert tenant.remaining_epsilon == pytest.approx(80.0 - ledger)


# -- weighted-fair admission and work packing -------------------------------------

from repro.federation.partitioning import work_balanced_chunks
from repro.service.scheduler import AdmissionCandidate, plan_weighted_admission


@st.composite
def admission_backlogs(draw):
    """A random multi-tenant backlog: per-tenant priorities and submissions."""
    num_tenants = draw(st.integers(min_value=1, max_value=5))
    backlog = []
    for tenant_index in range(num_tenants):
        tenant_id = f"tenant-{tenant_index}"
        priority = draw(st.integers(min_value=1, max_value=16))
        num_submissions = draw(st.integers(min_value=0, max_value=4))
        for order in range(num_submissions):
            backlog.append(
                AdmissionCandidate(
                    tenant_id=tenant_id,
                    order=order,
                    num_queries=draw(st.integers(min_value=1, max_value=8)),
                    priority_class=priority,
                )
            )
    return backlog


@given(
    backlog=admission_backlogs(),
    max_queries=st.integers(min_value=1, max_value=6),
    starvation_limit=st.integers(min_value=1, max_value=5),
)
def test_weighted_fair_admission_never_starves_beyond_the_limit(
    backlog, max_queries, starvation_limit
):
    """Every submission drains within ``starvation_limit`` eligible drains,
    whatever the priorities, costs, and the per-drain query cap."""
    pending = [(candidate, 0) for candidate in backlog]  # (candidate, age)
    deficits: dict[str, float] = {}
    drained: list[AdmissionCandidate] = []
    rounds = 0
    while pending:
        rounds += 1
        assert rounds <= len(backlog) * starvation_limit + 1, "planner stopped making progress"
        candidates = [
            AdmissionCandidate(
                tenant_id=c.tenant_id,
                order=c.order,
                num_queries=c.num_queries,
                priority_class=c.priority_class,
                drains_skipped=age,
            )
            for c, age in pending
        ]
        picked, forced, deficits = plan_weighted_admission(
            candidates,
            deficits,
            max_queries=max_queries,
            starvation_limit=starvation_limit,
        )
        assert picked, "a non-empty backlog always admits at least one submission"
        assert sorted(set(picked)) == sorted(picked), "no submission admitted twice"
        for index in picked:
            # The starvation bound itself: nothing ever waits K full drains.
            assert candidates[index].drains_skipped <= starvation_limit - 1
            drained.append(pending[index][0])
        chosen = set(picked)
        pending = [
            (candidate, age + 1)
            for index, (candidate, age) in enumerate(pending)
            if index not in chosen
        ]
    # Conservation: everything drained exactly once.
    assert sorted(drained, key=lambda c: (c.tenant_id, c.order)) == sorted(
        backlog, key=lambda c: (c.tenant_id, c.order)
    )


@given(backlog=admission_backlogs())
def test_weighted_fair_admission_is_canonical_within_a_tenant(backlog):
    """Weights reorder tenants against each other, never a tenant against
    itself: each tenant's submissions are always picked oldest-first."""
    candidates = [
        AdmissionCandidate(
            tenant_id=c.tenant_id,
            order=c.order,
            num_queries=c.num_queries,
            priority_class=c.priority_class,
        )
        for c in backlog
    ]
    picked, _forced, carried = plan_weighted_admission(candidates)
    assert len(picked) == len(backlog)
    seen_order: dict[str, int] = {}
    for index in picked:
        candidate = candidates[index]
        assert seen_order.get(candidate.tenant_id, -1) < candidate.order
        seen_order[candidate.tenant_id] = candidate.order
    # Without a cap nothing is left behind, so no deficit carries over.
    assert carried == {}


@given(
    num_items=st.integers(min_value=0, max_value=60),
    cost=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    chunk_size=st.integers(min_value=1, max_value=12),
)
def test_equal_cost_packing_equals_count_chunking(num_items, cost, chunk_size):
    """With uniform per-item cost and budget = k * cost, the work packer is
    exactly count-chunking with chunk size k."""
    items = list(range(num_items))
    chunks = work_balanced_chunks(items, [cost] * num_items, chunk_size * cost)
    expected = [items[i : i + chunk_size] for i in range(0, num_items, chunk_size)]
    assert chunks == expected


@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40
    ),
    budget=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
)
def test_work_packing_conserves_items_and_respects_budget(costs, budget):
    items = list(range(len(costs)))
    chunks = work_balanced_chunks(items, costs, budget)
    assert [item for chunk in chunks for item in chunk] == items
    for chunk in chunks:
        chunk_cost = sum(costs[item] for item in chunk)
        # A chunk either fits the budget or is a single unsplittable item.
        assert chunk_cost <= budget * (1 + 1e-9) or len(chunk) == 1
