"""Exception hierarchy for the ``repro`` library.

Every exception raised on purpose by the library derives from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes mirror the major subsystems (configuration, storage, queries,
privacy accounting, federation protocol, SMC) which keeps error handling at
call sites narrow and intention-revealing.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchemaError",
    "StorageError",
    "QueryError",
    "QueryParseError",
    "PrivacyError",
    "BudgetExhaustedError",
    "SensitivityError",
    "SamplingError",
    "AllocationError",
    "FederationError",
    "ProtocolError",
    "InjectedFaultError",
    "TransportError",
    "TransportTimeoutError",
    "SMCError",
    "DatasetError",
    "WorkloadError",
    "AttackError",
    "ExperimentError",
    "ServiceError",
    "UnknownTenantError",
    "AdmissionError",
    "ServiceOverloadedError",
    "IngestError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """A configuration object contains invalid or inconsistent values."""


class SchemaError(ReproError):
    """A schema definition is invalid or a row/table does not match it."""


class StorageError(ReproError):
    """A storage-level operation (table, cluster, metadata) failed."""


class QueryError(ReproError):
    """A query is malformed or cannot be evaluated on a given table."""


class QueryParseError(QueryError):
    """The SQL-like query text could not be parsed."""


class PrivacyError(ReproError):
    """A differential-privacy operation was mis-used."""


class BudgetExhaustedError(PrivacyError):
    """The privacy budget of an accountant or end user is exhausted."""


class SensitivityError(PrivacyError):
    """A sensitivity value is invalid (negative, NaN, or unbounded where a
    bound is required)."""


class SamplingError(ReproError):
    """A sampling operation received invalid probabilities or sizes."""


class AllocationError(ReproError):
    """The allocation optimisation problem is infeasible or malformed."""


class FederationError(ReproError):
    """A federation-level operation failed (providers, aggregator)."""


class ProtocolError(FederationError):
    """The federated query protocol was driven out of order or received an
    unexpected message."""


class InjectedFaultError(ProtocolError):
    """A scripted fault from a :class:`~repro.testing.faults.FaultSchedule`
    fired during a provider phase call (chaos testing only)."""


class TransportError(FederationError):
    """A transport-level failure: a malformed or oversized frame, a lost
    connection, or an undeliverable protocol message."""


class TransportTimeoutError(TransportError):
    """A transport call did not complete within its configured timeout."""


class SMCError(FederationError):
    """A simulated secure multiparty computation operation failed."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class AttackError(ReproError):
    """The learning-based attack harness was mis-configured."""


class ExperimentError(ReproError):
    """An experiment runner was mis-configured or failed."""


class ServiceError(ReproError):
    """A multi-tenant serving-layer operation failed."""


class UnknownTenantError(ServiceError):
    """A submission referenced a tenant id the registry does not hold."""


class AdmissionError(ServiceError):
    """Admission control refused a submission that cannot fit the tenant's
    remaining privacy budget."""


class ServiceOverloadedError(ServiceError):
    """Backpressure: the scheduler's bounded submission queue is full."""


class IngestError(ReproError):
    """A streaming-ingestion operation (append, compaction) failed."""
