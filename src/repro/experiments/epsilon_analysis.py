"""Privacy-budget analysis (Figure 6 and the epsilon panel of Figure 7).

Sweeps the per-query epsilon (the paper uses 0.1-1.3) with 4-dimensional
COUNT and SUM workloads.  Expected shape: error falls steeply as epsilon
grows (classic DP utility curve), SUM errors sit below COUNT errors (larger
answers are relatively less affected by noise), and speed-up is flat in
epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..query.model import Aggregation
from .reporting import format_series_table
from .runner import evaluate_workload
from .scenarios import DatasetScenario

__all__ = ["EpsilonPoint", "run_epsilon_analysis", "format_epsilon_analysis"]


@dataclass(frozen=True)
class EpsilonPoint:
    """One point of the epsilon sweep."""

    dataset: str
    aggregation: str
    epsilon: float
    mean_relative_error: float
    mean_work_speedup: float
    mean_wallclock_speedup: float
    num_queries: int


def run_epsilon_analysis(
    scenario: DatasetScenario,
    *,
    epsilons: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3),
    num_dimensions: int = 4,
    queries_per_point: int = 20,
    aggregations: Sequence[Aggregation] = (Aggregation.SUM, Aggregation.COUNT),
    sampling_rate: float | None = None,
    min_selectivity: float = 0.02,
    seed: int = 0,
) -> list[EpsilonPoint]:
    """Run the sweep and return one point per (aggregation, epsilon)."""
    rate = scenario.default_sampling_rate if sampling_rate is None else sampling_rate
    accept_batch = scenario.batch_acceptance_predicate(min_selectivity=min_selectivity)
    # One fresh federation per sweep: the sweep's draws depend only on the
    # scenario seed, not on what ran against the shared system before.
    system = scenario.fresh_system()
    points: list[EpsilonPoint] = []
    for aggregation in aggregations:
        generator = scenario.workload_generator(seed=seed)
        workload = generator.generate(
            queries_per_point, num_dimensions, aggregation, accept_batch=accept_batch
        )
        for epsilon in epsilons:
            stats = evaluate_workload(
                system,
                list(workload),
                sampling_rate=rate,
                epsilon=epsilon,
            )
            points.append(
                EpsilonPoint(
                    dataset=scenario.name,
                    aggregation=aggregation.value,
                    epsilon=epsilon,
                    mean_relative_error=stats.mean_relative_error,
                    mean_work_speedup=stats.mean_work_speedup,
                    mean_wallclock_speedup=stats.mean_wallclock_speedup,
                    num_queries=stats.num_queries,
                )
            )
    return points


def format_epsilon_analysis(points: Sequence[EpsilonPoint]) -> str:
    """Text rendition of Figure 6 / Figure 7 (epsilon panels)."""
    rows = [
        {
            "dataset": point.dataset,
            "agg": point.aggregation,
            "epsilon": point.epsilon,
            "rel_error_%": 100 * point.mean_relative_error,
            "work_speedup_x": point.mean_work_speedup,
            "wallclock_speedup_x": point.mean_wallclock_speedup,
            "queries": point.num_queries,
        }
        for point in points
    ]
    return format_series_table(
        "Privacy-budget analysis (Figures 6 and 7)",
        rows,
        ["dataset", "agg", "epsilon", "rel_error_%", "work_speedup_x", "wallclock_speedup_x", "queries"],
    )
