"""SMC experiments (Figures 1 and 8).

* :func:`run_sharing_cost_experiment` reproduces Figure 1: for a set of
  random range queries, compare the simulated SMC cost of sharing every
  matching row against the cost of sharing only the per-provider results.
  Expected shape: result sharing is a small constant, row sharing is orders
  of magnitude larger and grows with the data.

* :func:`run_smc_vs_dp_experiment` reproduces Figure 8: run the same queries
  through the protocol with and without the SMC result-combination path,
  several repetitions each, and compare the injected-noise ranges and the
  speed-ups.  Expected shape: SMC adds negligible overhead and yields a
  tighter noise range (one calibrated noise instead of one per provider).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import SMCConfig
from ..federation.smc import SMCSimulator
from ..query.model import Aggregation, RangeQuery
from ..utils.timing import Timer
from .metrics import speedup
from .reporting import format_series_table
from .scenarios import DatasetScenario

__all__ = [
    "SharingCostPoint",
    "SMCComparisonPoint",
    "run_sharing_cost_experiment",
    "run_smc_vs_dp_experiment",
    "format_sharing_costs",
    "format_smc_comparison",
]


@dataclass(frozen=True)
class SharingCostPoint:
    """Simulated SMC cost of one query under the two sharing strategies."""

    query_label: str
    matching_rows: int
    row_sharing_seconds: float
    result_sharing_seconds: float

    @property
    def cost_ratio(self) -> float:
        """How many times more expensive sharing rows is than sharing results."""
        if self.result_sharing_seconds == 0:
            return float("inf")
        return self.row_sharing_seconds / self.result_sharing_seconds


@dataclass(frozen=True)
class SMCComparisonPoint:
    """One repetition of one query, with and without SMC result sharing."""

    query_label: str
    repetition: int
    noise_with_smc: float
    noise_without_smc: float
    speedup_with_smc: float
    speedup_without_smc: float


def run_sharing_cost_experiment(
    scenario: DatasetScenario,
    *,
    num_queries: int = 12,
    num_dimensions: int = 2,
    smc_config: SMCConfig | None = None,
    seed: int = 0,
) -> list[SharingCostPoint]:
    """Figure 1: SMC row-sharing vs result-sharing cost per query."""
    generator = scenario.workload_generator(seed=seed)
    workload = generator.generate(num_queries, num_dimensions, Aggregation.COUNT)
    config = smc_config or SMCConfig()
    num_parties = scenario.system.num_providers
    num_columns = len(scenario.tensor.schema.column_names)
    points: list[SharingCostPoint] = []
    for index, query in enumerate(workload):
        baseline = scenario.system.exact_baseline(query)
        simulator = SMCSimulator(config=config, num_parties=num_parties, rng=seed + index)
        # Row sharing: every provider secret-shares its matching rows.
        matching_rows = _matching_rows(scenario, query)
        row_cost = simulator.row_sharing_cost(matching_rows, num_columns)
        # Result sharing: each provider shares one scalar result.
        result_cost = simulator.result_sharing_cost(num_parties)
        points.append(
            SharingCostPoint(
                query_label=f"Q{index + 1}",
                matching_rows=matching_rows if baseline.value else 0,
                row_sharing_seconds=row_cost,
                result_sharing_seconds=result_cost,
            )
        )
    return points


def _matching_rows(scenario: DatasetScenario, query: RangeQuery) -> int:
    """Number of tensor rows matching the query across all providers."""
    from ..query.executor import selection_mask

    total = 0
    for provider in scenario.system.providers:
        table = provider.clustered.to_table()
        total += int(selection_mask(table, query.clipped_to(table.schema)).sum())
    return total


def run_smc_vs_dp_experiment(
    scenario: DatasetScenario,
    *,
    num_queries: int = 5,
    repetitions: int = 5,
    num_dimensions: int = 2,
    sampling_rate: float | None = None,
    seed: int = 0,
) -> list[SMCComparisonPoint]:
    """Figure 8: injected noise and speed-up with and without SMC."""
    rate = scenario.default_sampling_rate if sampling_rate is None else sampling_rate
    generator = scenario.workload_generator(seed=seed)
    workload = generator.generate(num_queries, num_dimensions, Aggregation.COUNT)
    points: list[SMCComparisonPoint] = []
    for index, query in enumerate(workload):
        baseline = scenario.system.exact_baseline(query)
        for repetition in range(repetitions):
            with Timer() as smc_timer:
                with_smc = scenario.system.execute(
                    query, sampling_rate=rate, use_smc=True, compute_exact=False
                )
            with Timer() as dp_timer:
                without_smc = scenario.system.execute(
                    query, sampling_rate=rate, use_smc=False, compute_exact=False
                )
            points.append(
                SMCComparisonPoint(
                    query_label=f"Q{index + 1}",
                    repetition=repetition,
                    noise_with_smc=with_smc.noise_injected,
                    noise_without_smc=without_smc.noise_injected,
                    speedup_with_smc=speedup(
                        baseline.seconds,
                        smc_timer.elapsed + with_smc.trace.simulated_network_seconds,
                    ),
                    speedup_without_smc=speedup(
                        baseline.seconds,
                        dp_timer.elapsed + without_smc.trace.simulated_network_seconds,
                    ),
                )
            )
    return points


def format_sharing_costs(points: Sequence[SharingCostPoint]) -> str:
    """Text rendition of Figure 1."""
    rows = [
        {
            "query": point.query_label,
            "matching_rows": point.matching_rows,
            "share_rows_s": point.row_sharing_seconds,
            "share_results_s": point.result_sharing_seconds,
            "ratio_x": point.cost_ratio,
        }
        for point in points
    ]
    return format_series_table(
        "SMC data-sharing cost (Figure 1)",
        rows,
        ["query", "matching_rows", "share_rows_s", "share_results_s", "ratio_x"],
    )


def format_smc_comparison(points: Sequence[SMCComparisonPoint]) -> str:
    """Text rendition of Figure 8."""
    rows = [
        {
            "query": point.query_label,
            "rep": point.repetition,
            "noise_smc": point.noise_with_smc,
            "noise_dp": point.noise_without_smc,
            "speedup_smc_x": point.speedup_with_smc,
            "speedup_dp_x": point.speedup_without_smc,
        }
        for point in points
    ]
    return format_series_table(
        "SMC vs per-provider DP result release (Figure 8)",
        rows,
        ["query", "rep", "noise_smc", "noise_dp", "speedup_smc_x", "speedup_dp_x"],
    )
