"""Metadata space accounting (Section 6.1, "Metadata space allocation").

Reports the approximate serialised footprint of the Algorithm-1 metadata per
dataset and per cluster, the analogue of the paper's "11 MB (56 KB/cluster)
for Amazon Review, 6.4 MB (64 KB/cluster) for Adult".  Absolute numbers scale
with the synthetic dataset size; the quantity to compare is the ratio of
metadata size to data size (a few percent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .reporting import format_series_table
from .scenarios import DatasetScenario

__all__ = ["MetadataSpacePoint", "run_metadata_space", "format_metadata_space"]


@dataclass(frozen=True)
class MetadataSpacePoint:
    """Metadata footprint of one dataset scenario."""

    dataset: str
    num_clusters: int
    data_bytes: int
    metadata_bytes: int
    metadata_bytes_per_cluster: float

    @property
    def metadata_fraction(self) -> float:
        """Metadata size relative to the stored data size."""
        if self.data_bytes == 0:
            return 0.0
        return self.metadata_bytes / self.data_bytes


def run_metadata_space(scenarios: Sequence[DatasetScenario]) -> list[MetadataSpacePoint]:
    """Measure the metadata footprint of each scenario."""
    points: list[MetadataSpacePoint] = []
    for scenario in scenarios:
        system = scenario.system
        data_bytes = sum(provider.clustered.memory_bytes() for provider in system.providers)
        metadata_bytes = system.metadata_size_bytes()
        num_clusters = system.total_clusters
        points.append(
            MetadataSpacePoint(
                dataset=scenario.name,
                num_clusters=num_clusters,
                data_bytes=data_bytes,
                metadata_bytes=metadata_bytes,
                metadata_bytes_per_cluster=(
                    metadata_bytes / num_clusters if num_clusters else 0.0
                ),
            )
        )
    return points


def format_metadata_space(points: Sequence[MetadataSpacePoint]) -> str:
    """Text rendition of the metadata-space paragraph of Section 6.1."""
    rows = [
        {
            "dataset": point.dataset,
            "clusters": point.num_clusters,
            "data_KB": point.data_bytes / 1024,
            "metadata_KB": point.metadata_bytes / 1024,
            "KB_per_cluster": point.metadata_bytes_per_cluster / 1024,
            "fraction_%": 100 * point.metadata_fraction,
        }
        for point in points
    ]
    return format_series_table(
        "Metadata space allocation (Section 6.1)",
        rows,
        ["dataset", "clusters", "data_KB", "metadata_KB", "KB_per_cluster", "fraction_%"],
    )
