"""Dataset scenarios: ready-to-query federated systems for the experiments.

A scenario bundles a synthetic dataset (Adult-like or Amazon-like count
tensor), the federation configuration (4 providers, shared cluster size,
privacy budget split), and the workload generator for that schema.  Every
experiment and benchmark builds its systems through these helpers so the
evaluation parameters live in exactly one place and scale knobs are uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PrivacyConfig, SamplingConfig, SystemConfig
from ..core.system import FederatedAQPSystem
from ..datasets.adult import ADULT_TENSOR_DIMENSIONS, AdultSyntheticGenerator
from ..datasets.amazon import AMAZON_TENSOR_DIMENSIONS, AmazonReviewSyntheticGenerator
from ..federation.provider import DataProvider
from ..storage.table import Table
from ..utils.rng import derive_rng
from ..workloads.generator import WorkloadGenerator

__all__ = ["DatasetScenario", "adult_scenario", "amazon_scenario", "build_system"]


@dataclass
class DatasetScenario:
    """A dataset plus the federation built on top of it."""

    name: str
    tensor: Table
    system: FederatedAQPSystem
    queryable_dimensions: tuple[str, ...]
    default_sampling_rate: float

    def fresh_system(self) -> FederatedAQPSystem:
        """A new, identically-seeded federation over this scenario's data.

        The shared :attr:`system` accumulates RNG history from everything
        executed against it — including variable-round benchmark loops — so
        analyses that run on it are not reproducible across processes.  The
        experiment runners execute on a fresh system instead, making their
        draw sequences a function of the scenario seed alone.

        Providers are rebuilt from the existing providers' own partitions
        and settings (clustering policy, sort keys, ``n_min``, cache and
        execution configs), so the fresh federation matches
        :attr:`system` exactly even for scenarios built with non-default
        provider options.
        """
        config = self.system.config
        providers = [
            DataProvider(
                provider_id=provider.provider_id,
                table=provider.table,
                cluster_size=provider.cluster_size,
                n_min=provider.n_min,
                clustering_policy=provider.clustering_policy,
                sort_by=provider.sort_by,
                intra_sort_by=provider.intra_sort_by,
                cache_config=provider.cache_config,
                execution_config=provider.execution_config,
                ingest_config=provider.ingest_config,
                rng=derive_rng(config.seed, "provider", index),
            )
            for index, provider in enumerate(self.system.providers)
        ]
        return FederatedAQPSystem(providers=providers, config=config, rng=config.seed)

    def workload_generator(self, seed: int = 0) -> WorkloadGenerator:
        """A workload generator over this scenario's queryable dimensions."""
        return WorkloadGenerator(
            schema=self.tensor.schema,
            dimensions=self.queryable_dimensions,
            min_coverage=0.35,
            max_coverage=0.85,
            rng=seed,
        )

    def acceptance_predicate(self, *, min_selectivity: float = 0.02):
        """Workload acceptance rule used by the figure experiments.

        Mirrors the paper's setup ("ran only those [queries] that lead to the
        approximation on all data providers") and additionally requires the
        metadata-estimated answer to exceed ``min_selectivity`` of the total
        measure, so that at simulator scale the reported relative errors are
        not dominated by queries whose true answer is smaller than the
        calibrated noise (the paper runs at 4M-924M rows where this does not
        occur).  The selectivity test uses the providers' own Algorithm-1
        metadata (sum of ``R̂ * S`` over covering clusters), so screening a
        candidate query costs microseconds instead of a full exact scan.
        """
        total_measure = sum(
            provider.clustered.total_measure() for provider in self.system.providers
        )
        floor = min_selectivity * total_measure

        def accept(query) -> bool:
            estimated_answer = 0.0
            for provider in self.system.providers:
                clipped = query.clipped_to(provider.clustered.schema)
                ranges = clipped.range_tuples()
                covering = provider.metadata.covering_cluster_ids(ranges)
                if len(covering) < provider.n_min:
                    return False
                proportions = provider.metadata.proportions(covering, ranges)
                estimated_answer += float(proportions.sum()) * provider.cluster_size
            return estimated_answer >= floor

        return accept

    def batch_acceptance_predicate(self, *, min_selectivity: float = 0.02):
        """Batched form of :meth:`acceptance_predicate`.

        Screens a whole chunk of candidate queries with one dense-index pass
        per provider (covering sets and proportions for every candidate at
        once); agrees with the scalar predicate query-for-query, so the
        generated workloads are identical.
        """
        total_measure = sum(
            provider.clustered.total_measure() for provider in self.system.providers
        )
        floor = min_selectivity * total_measure

        def accept_batch(queries) -> list[bool]:
            queries = list(queries)
            estimated = [0.0] * len(queries)
            alive = [True] * len(queries)
            for provider in self.system.providers:
                schema = provider.clustered.schema
                ranges_list = [
                    query.clipped_to(schema).range_tuples() for query in queries
                ]
                covering_lists = provider.metadata.covering_cluster_ids_batch(ranges_list)
                for index, covering in enumerate(covering_lists):
                    if len(covering) < provider.n_min:
                        alive[index] = False
                proportions_list = provider.metadata.proportions_batch(
                    covering_lists, ranges_list
                )
                for index, proportions in enumerate(proportions_list):
                    estimated[index] += float(proportions.sum()) * provider.cluster_size
            return [
                alive[index] and estimated[index] >= floor
                for index in range(len(queries))
            ]

        return accept_batch


def build_system(
    tensor: Table,
    *,
    cluster_size: int,
    num_providers: int = 4,
    epsilon: float = 1.0,
    delta: float = 1e-3,
    sampling_rate: float = 0.1,
    n_min: int = 4,
    seed: int = 0,
    use_smc_for_result: bool = False,
) -> FederatedAQPSystem:
    """Build a federated system over ``tensor`` with the paper's defaults.

    The privacy split follows Section 6.1: ``eps_O = 0.1 eps``,
    ``eps_S = 0.1 eps``, ``eps_E = 0.8 eps``.
    """
    config = SystemConfig(
        cluster_size=cluster_size,
        num_providers=num_providers,
        privacy=PrivacyConfig(epsilon=epsilon, delta=delta),
        sampling=SamplingConfig(
            sampling_rate=sampling_rate, min_clusters_for_approximation=n_min
        ),
        use_smc_for_result=use_smc_for_result,
        seed=seed,
    )
    return FederatedAQPSystem.from_table(tensor, config=config, n_min=n_min)


def adult_scenario(
    *,
    num_rows: int = 400_000,
    cluster_size: int | None = None,
    num_providers: int = 4,
    sampling_rate: float = 0.2,
    epsilon: float = 1.0,
    seed: int = 0,
) -> DatasetScenario:
    """Adult-like scenario (paper default: sr = 20%, cluster size = 1% of a partition)."""
    tensor = AdultSyntheticGenerator(num_rows=num_rows, seed=seed).count_tensor()
    partition_rows = max(1, tensor.num_rows // num_providers)
    size = cluster_size or max(50, partition_rows // 100)
    system = build_system(
        tensor,
        cluster_size=size,
        num_providers=num_providers,
        sampling_rate=sampling_rate,
        epsilon=epsilon,
        seed=seed,
    )
    return DatasetScenario(
        name="adult_synth",
        tensor=tensor,
        system=system,
        queryable_dimensions=ADULT_TENSOR_DIMENSIONS,
        default_sampling_rate=sampling_rate,
    )


def amazon_scenario(
    *,
    num_rows: int = 800_000,
    cluster_size: int | None = None,
    num_providers: int = 4,
    sampling_rate: float = 0.05,
    epsilon: float = 1.0,
    seed: int = 0,
) -> DatasetScenario:
    """Amazon-like scenario (paper default: sr = 5%, cluster size = 0.5% of a partition)."""
    tensor = AmazonReviewSyntheticGenerator(num_rows=num_rows, seed=seed).count_tensor()
    partition_rows = max(1, tensor.num_rows // num_providers)
    size = cluster_size or max(50, partition_rows // 200)
    system = build_system(
        tensor,
        cluster_size=size,
        num_providers=num_providers,
        sampling_rate=sampling_rate,
        epsilon=epsilon,
        seed=seed,
    )
    return DatasetScenario(
        name="amazon",
        tensor=tensor,
        system=system,
        queryable_dimensions=AMAZON_TENSOR_DIMENSIONS,
        default_sampling_rate=sampling_rate,
    )
