"""Quality metrics: relative error and speed-up (Section 6.1, "Metrics")."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ExperimentError

__all__ = ["relative_error", "speedup", "ErrorSummary", "summarise_errors"]


def relative_error(exact: float, estimate: float) -> float:
    """``|exact - estimate| / |exact|`` (the paper's relative error).

    Defined as 0 when both values are 0 and +inf when only the exact answer
    is 0 — callers filtering workloads should avoid empty-answer queries, but
    the metric stays total.
    """
    if not math.isfinite(exact) or not math.isfinite(estimate):
        raise ExperimentError("exact and estimate must be finite")
    if exact == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(exact - estimate) / abs(exact)


def speedup(baseline_cost: float, approximate_cost: float) -> float:
    """``baseline / approximate`` — how many times faster the approximation is."""
    if baseline_cost < 0 or approximate_cost < 0:
        raise ExperimentError("costs must be non-negative")
    if approximate_cost == 0:
        return float("inf") if baseline_cost > 0 else 1.0
    return baseline_cost / approximate_cost


@dataclass(frozen=True)
class ErrorSummary:
    """Mean / median / maximum of a set of relative errors."""

    mean: float
    median: float
    maximum: float
    count: int


def summarise_errors(errors: Sequence[float]) -> ErrorSummary:
    """Summarise a list of relative errors, ignoring infinite entries."""
    finite = sorted(error for error in errors if math.isfinite(error))
    if not finite:
        raise ExperimentError("no finite errors to summarise")
    n = len(finite)
    median = finite[n // 2] if n % 2 == 1 else 0.5 * (finite[n // 2 - 1] + finite[n // 2])
    return ErrorSummary(
        mean=sum(finite) / n,
        median=median,
        maximum=finite[-1],
        count=n,
    )
