"""Evaluation harness: one runner per table/figure of the paper.

Each experiment module exposes a ``run_*`` function returning plain dataclass
rows plus a ``format_*`` helper producing the text table/series printed by
the corresponding benchmark under ``benchmarks/``.  EXPERIMENTS.md records
the measured outputs next to the paper's reported numbers.
"""

from .metrics import relative_error, speedup, summarise_errors
from .reporting import format_series_table
from .scenarios import DatasetScenario, adult_scenario, amazon_scenario, build_system
from .runner import QueryEvaluation, WorkloadStats, evaluate_workload
from .dimension_analysis import DimensionPoint, run_dimension_analysis
from .sampling_rate_analysis import SamplingRatePoint, run_sampling_rate_analysis
from .epsilon_analysis import EpsilonPoint, run_epsilon_analysis
from .smc_comparison import (
    SharingCostPoint,
    SMCComparisonPoint,
    run_sharing_cost_experiment,
    run_smc_vs_dp_experiment,
)
from .attack_resilience import AttackCell, run_attack_resilience
from .metadata_space import MetadataSpacePoint, run_metadata_space
from .workload_locality import (
    LocalityPoint,
    LocalityResult,
    format_locality_table,
    run_workload_locality,
)

__all__ = [
    "relative_error",
    "speedup",
    "summarise_errors",
    "format_series_table",
    "DatasetScenario",
    "adult_scenario",
    "amazon_scenario",
    "build_system",
    "QueryEvaluation",
    "WorkloadStats",
    "evaluate_workload",
    "DimensionPoint",
    "run_dimension_analysis",
    "SamplingRatePoint",
    "run_sampling_rate_analysis",
    "EpsilonPoint",
    "run_epsilon_analysis",
    "SharingCostPoint",
    "SMCComparisonPoint",
    "run_sharing_cost_experiment",
    "run_smc_vs_dp_experiment",
    "AttackCell",
    "run_attack_resilience",
    "MetadataSpacePoint",
    "run_metadata_space",
    "LocalityPoint",
    "LocalityResult",
    "run_workload_locality",
    "format_locality_table",
]
