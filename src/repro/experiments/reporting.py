"""Plain-text reporting helpers shared by benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_series_table"]


def format_series_table(
    title: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
) -> str:
    """Render rows as a fixed-width text table with a title line.

    Values are formatted with 4 significant digits for floats and ``str()``
    otherwise; the result is what the benchmark harness prints so that every
    figure/table of the paper has a directly comparable text rendition.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    header = [str(column) for column in columns]
    body = [[fmt(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)
