"""Generic workload evaluation: run the whole workload through the batch
engine and collect error and speed-up.

The exact baselines for every query are computed with one vectorised pass
per provider, then the private protocol answers the surviving queries as one
:meth:`~repro.core.system.FederatedAQPSystem.execute_batch` call — the
production shape of the system, where a workload costs one protocol round
instead of one round per query.

Speed-up is reported two ways (see DESIGN.md):

* ``wallclock`` — exact-baseline seconds / approximate-path seconds, the
  paper's definition, noisy on a laptop simulator for small data.  Both sides
  are amortised per query over their batch.
* ``work`` — rows the baseline scans / rows the approximation scans, a
  deterministic proxy that captures the same I/O-reduction effect the paper's
  wall-clock numbers measure on a real DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.system import FederatedAQPSystem
from ..errors import ExperimentError
from ..query.model import RangeQuery
from .metrics import relative_error, speedup, summarise_errors

__all__ = ["QueryEvaluation", "WorkloadStats", "evaluate_workload"]


@dataclass(frozen=True)
class QueryEvaluation:
    """Per-query evaluation record."""

    query: RangeQuery
    exact_value: int
    estimate: float
    relative_error: float
    wallclock_speedup: float
    work_speedup: float
    approximate_seconds: float
    baseline_seconds: float


@dataclass(frozen=True)
class WorkloadStats:
    """Aggregated workload-level statistics."""

    evaluations: tuple[QueryEvaluation, ...]
    mean_relative_error: float
    median_relative_error: float
    mean_wallclock_speedup: float
    mean_work_speedup: float
    batch_seconds: float
    baseline_batch_seconds: float

    @property
    def num_queries(self) -> int:
        """Number of evaluated queries."""
        return len(self.evaluations)

    @property
    def queries_per_second(self) -> float:
        """Throughput of the private batch over the evaluated workload."""
        if self.batch_seconds <= 0:
            return float("inf")
        return len(self.evaluations) / self.batch_seconds


def evaluate_workload(
    system: FederatedAQPSystem,
    queries: Sequence[RangeQuery],
    *,
    sampling_rate: float | None = None,
    epsilon: float | None = None,
    use_smc: bool | None = None,
    skip_empty: bool = True,
) -> WorkloadStats:
    """Run the workload through one batched protocol pass plus exact baselines."""
    queries = list(queries)
    if not queries:
        raise ExperimentError("the workload must contain at least one query")
    baselines = system.exact_baseline_batch(queries)
    kept = [
        (query, baseline)
        for query, baseline in zip(queries, baselines)
        if not (skip_empty and baseline.value == 0)
    ]
    if not kept:
        raise ExperimentError(
            "every query in the workload had an empty exact answer; "
            "widen the workload ranges"
        )
    kept_queries = [query for query, _ in kept]
    batch = system.execute_batch(
        kept_queries,
        sampling_rate=sampling_rate,
        epsilon=epsilon,
        use_smc=use_smc,
        compute_exact=False,
    )
    # Simulated network latency is a per-query constant of the simulator
    # (both the exact baseline and the approximate path would pay it in a
    # real deployment), so it is excluded from the wall-clock speed-up.
    approximate_seconds = batch.wall_seconds / len(kept_queries)
    evaluations: list[QueryEvaluation] = []
    for (query, baseline), result in zip(kept, batch.results):
        rows_scanned = max(1, result.trace.rows_scanned)
        evaluations.append(
            QueryEvaluation(
                query=query,
                exact_value=baseline.value,
                estimate=result.value,
                relative_error=relative_error(baseline.value, result.value),
                wallclock_speedup=speedup(baseline.seconds, approximate_seconds),
                work_speedup=speedup(baseline.rows_scanned, rows_scanned),
                approximate_seconds=approximate_seconds,
                baseline_seconds=baseline.seconds,
            )
        )
    errors = summarise_errors([evaluation.relative_error for evaluation in evaluations])
    mean_wallclock = sum(e.wallclock_speedup for e in evaluations) / len(evaluations)
    mean_work = sum(e.work_speedup for e in evaluations) / len(evaluations)
    return WorkloadStats(
        evaluations=tuple(evaluations),
        mean_relative_error=errors.mean,
        median_relative_error=errors.median,
        mean_wallclock_speedup=mean_wallclock,
        mean_work_speedup=mean_work,
        batch_seconds=batch.wall_seconds,
        # Total exact-baseline wall-clock over the *whole* workload (skipped
        # queries included — their baselines were measured too).
        baseline_batch_seconds=sum(baseline.seconds for baseline in baselines),
    )
