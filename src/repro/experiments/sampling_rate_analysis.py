"""Sampling-rate analysis (Figure 5).

Sweeps the sampling rate ``sr`` (the paper uses 5-20%) with 4-dimensional
COUNT and SUM workloads and measures relative error and speed-up.  Expected
shape: error falls and speed-up falls as the sampling rate grows (the
accuracy/speed trade-off of Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..query.model import Aggregation
from .reporting import format_series_table
from .runner import evaluate_workload
from .scenarios import DatasetScenario

__all__ = [
    "SamplingRatePoint",
    "run_sampling_rate_analysis",
    "format_sampling_rate_analysis",
]


@dataclass(frozen=True)
class SamplingRatePoint:
    """One point of the sampling-rate sweep."""

    dataset: str
    aggregation: str
    sampling_rate: float
    mean_relative_error: float
    mean_work_speedup: float
    mean_wallclock_speedup: float
    num_queries: int


def run_sampling_rate_analysis(
    scenario: DatasetScenario,
    *,
    sampling_rates: Sequence[float] = (0.05, 0.10, 0.15, 0.20),
    num_dimensions: int = 4,
    queries_per_point: int = 20,
    aggregations: Sequence[Aggregation] = (Aggregation.SUM, Aggregation.COUNT),
    min_selectivity: float = 0.02,
    seed: int = 0,
) -> list[SamplingRatePoint]:
    """Run the sweep and return one point per (aggregation, sr)."""
    accept_batch = scenario.batch_acceptance_predicate(min_selectivity=min_selectivity)
    # One fresh federation per sweep: the sweep's draws depend only on the
    # scenario seed, not on what ran against the shared system before.
    system = scenario.fresh_system()
    points: list[SamplingRatePoint] = []
    for aggregation in aggregations:
        generator = scenario.workload_generator(seed=seed)
        workload = generator.generate(
            queries_per_point, num_dimensions, aggregation, accept_batch=accept_batch
        )
        for rate in sampling_rates:
            stats = evaluate_workload(
                system, list(workload), sampling_rate=rate
            )
            points.append(
                SamplingRatePoint(
                    dataset=scenario.name,
                    aggregation=aggregation.value,
                    sampling_rate=rate,
                    mean_relative_error=stats.mean_relative_error,
                    mean_work_speedup=stats.mean_work_speedup,
                    mean_wallclock_speedup=stats.mean_wallclock_speedup,
                    num_queries=stats.num_queries,
                )
            )
    return points


def format_sampling_rate_analysis(points: Sequence[SamplingRatePoint]) -> str:
    """Text rendition of Figure 5."""
    rows = [
        {
            "dataset": point.dataset,
            "agg": point.aggregation,
            "sr_%": 100 * point.sampling_rate,
            "rel_error_%": 100 * point.mean_relative_error,
            "work_speedup_x": point.mean_work_speedup,
            "wallclock_speedup_x": point.mean_wallclock_speedup,
            "queries": point.num_queries,
        }
        for point in points
    ]
    return format_series_table(
        "Sampling-rate analysis (Figure 5)",
        rows,
        ["dataset", "agg", "sr_%", "rel_error_%", "work_speedup_x", "wallclock_speedup_x", "queries"],
    )
