"""Dimension-based analysis (Figures 4 and 7, left panels).

Sweeps the number of query dimensions ``n`` and measures the mean relative
error and the mean speed-up for COUNT and SUM workloads on a scenario.
Expected shape (paper): error grows with the number of dimensions (the
independence approximation of ``R`` degrades), speed-up shrinks slightly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..query.model import Aggregation
from .reporting import format_series_table
from .runner import evaluate_workload
from .scenarios import DatasetScenario

__all__ = ["DimensionPoint", "run_dimension_analysis", "format_dimension_analysis"]


@dataclass(frozen=True)
class DimensionPoint:
    """One point of the dimension sweep."""

    dataset: str
    aggregation: str
    num_dimensions: int
    mean_relative_error: float
    mean_work_speedup: float
    mean_wallclock_speedup: float
    num_queries: int


def run_dimension_analysis(
    scenario: DatasetScenario,
    *,
    dimension_counts: Sequence[int],
    queries_per_point: int = 20,
    aggregations: Sequence[Aggregation] = (Aggregation.SUM, Aggregation.COUNT),
    sampling_rate: float | None = None,
    min_selectivity: float = 0.02,
    seed: int = 0,
) -> list[DimensionPoint]:
    """Run the sweep and return one point per (aggregation, n)."""
    rate = scenario.default_sampling_rate if sampling_rate is None else sampling_rate
    accept_batch = scenario.batch_acceptance_predicate(min_selectivity=min_selectivity)
    # One fresh federation per sweep: the sweep's draws depend only on the
    # scenario seed, not on what ran against the shared system before.
    system = scenario.fresh_system()
    points: list[DimensionPoint] = []
    for aggregation in aggregations:
        for n in dimension_counts:
            generator = scenario.workload_generator(seed=seed + n)
            workload = generator.generate(
                queries_per_point, n, aggregation, accept_batch=accept_batch
            )
            stats = evaluate_workload(
                system, list(workload), sampling_rate=rate
            )
            points.append(
                DimensionPoint(
                    dataset=scenario.name,
                    aggregation=aggregation.value,
                    num_dimensions=n,
                    mean_relative_error=stats.mean_relative_error,
                    mean_work_speedup=stats.mean_work_speedup,
                    mean_wallclock_speedup=stats.mean_wallclock_speedup,
                    num_queries=stats.num_queries,
                )
            )
    return points


def format_dimension_analysis(points: Sequence[DimensionPoint]) -> str:
    """Text rendition of Figure 4 / Figure 7 (dimension panels)."""
    rows = [
        {
            "dataset": point.dataset,
            "agg": point.aggregation,
            "n_dims": point.num_dimensions,
            "rel_error_%": 100 * point.mean_relative_error,
            "work_speedup_x": point.mean_work_speedup,
            "wallclock_speedup_x": point.mean_wallclock_speedup,
            "queries": point.num_queries,
        }
        for point in points
    ]
    return format_series_table(
        "Dimension-based analysis (Figures 4 and 7)",
        rows,
        ["dataset", "agg", "n_dims", "rel_error_%", "work_speedup_x", "wallclock_speedup_x", "queries"],
    )
