"""Workload-locality experiment: what cross-query reuse buys on repeated
predicates.

Real analytical traffic has locality — dashboards, alerting rules, and
monitoring jobs re-issue a small pool of predicates at a fixed epsilon.  The
protocol re-runs summary → allocation → estimate for each arrival, yet every
release after the first is reproducible by post-processing.  This experiment
quantifies the gap: the same repeated-predicate workload is executed for
several rounds on two identically seeded federations, one with the release
cache disabled and one with it enabled, and each round records throughput,
the epsilon actually charged, and the reuse counters.

Round 0 of the cache-on system is the *cold* round (only intra-batch
repetitions hit); later rounds are *warm* (everything hits).  The headline
numbers are :attr:`LocalityResult.warm_speedup` — warm cache-on throughput
over cache-off throughput — and :attr:`LocalityResult.epsilon_saved`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..config import CacheConfig
from ..core.system import FederatedAQPSystem
from ..errors import ExperimentError
from ..query.model import Aggregation, RangeQuery
from .scenarios import DatasetScenario

__all__ = ["LocalityPoint", "LocalityResult", "run_workload_locality", "format_locality_table"]


@dataclass(frozen=True)
class LocalityPoint:
    """One (mode, round) measurement of the locality experiment."""

    mode: str
    round_index: int
    num_queries: int
    seconds: float
    queries_per_second: float
    epsilon_charged: float
    summary_cache_hits: int
    answer_cache_hits: int


@dataclass(frozen=True)
class LocalityResult:
    """All measurements plus the headline reuse metrics."""

    points: tuple[LocalityPoint, ...]
    num_unique: int
    num_queries: int
    rounds: int
    num_providers: int

    def _mode_points(self, mode: str) -> tuple[LocalityPoint, ...]:
        return tuple(point for point in self.points if point.mode == mode)

    def _warm(self, mode: str) -> tuple[LocalityPoint, ...]:
        points = self._mode_points(mode)
        return points[1:] if len(points) > 1 else points

    @property
    def warm_speedup(self) -> float:
        """Warm-round throughput ratio, cache on over cache off."""
        off = self._warm("cache_off")
        on = self._warm("cache_on")
        off_qps = sum(point.queries_per_second for point in off) / len(off)
        on_qps = sum(point.queries_per_second for point in on) / len(on)
        if off_qps <= 0:
            return float("inf")
        return on_qps / off_qps

    @property
    def epsilon_charged_off(self) -> float:
        """Total epsilon charged across all rounds with the cache disabled."""
        return sum(point.epsilon_charged for point in self._mode_points("cache_off"))

    @property
    def epsilon_charged_on(self) -> float:
        """Total epsilon charged across all rounds with the cache enabled."""
        return sum(point.epsilon_charged for point in self._mode_points("cache_on"))

    @property
    def epsilon_saved(self) -> float:
        """Budget the reuse layer saved over the whole run."""
        return self.epsilon_charged_off - self.epsilon_charged_on

    @property
    def warm_answer_hit_rate(self) -> float:
        """Fraction of (query, provider) answers reused in warm cache-on rounds."""
        warm = self._warm("cache_on")
        slots = sum(point.num_queries for point in warm) * self.num_providers
        if slots == 0:
            return 0.0
        return sum(point.answer_cache_hits for point in warm) / slots


def run_workload_locality(
    scenario: DatasetScenario,
    *,
    num_unique: int = 6,
    repeats: int = 4,
    rounds: int = 3,
    num_dimensions: int = 3,
    workload_seed: int = 17,
    min_selectivity: float = 0.02,
    total_epsilon: float | None = None,
) -> LocalityResult:
    """Run the repeated-predicate workload with the cache off and on.

    Parameters
    ----------
    scenario:
        Dataset scenario providing the tensor, the base configuration, and
        the workload generator.  Two fresh, identically seeded systems are
        built from it (one per cache mode) so the comparison is
        apples-to-apples.
    num_unique, repeats:
        Pool size and repetition factor; each round executes
        ``num_unique * repeats`` queries.
    rounds:
        Number of times the whole workload is executed per mode (round 0 is
        the cold round).
    num_dimensions:
        Dimensions constrained per generated query.
    workload_seed:
        Seed of the query pool generator.
    min_selectivity:
        Acceptance floor for pool candidates (same rule as the figure
        experiments).
    total_epsilon:
        Optional end-user budget; when set, both systems charge against it
        and the saved budget is visible in the accountant ledger.

    Returns
    -------
    LocalityResult
        Per-(mode, round) measurements plus headline speedup/savings.
    """
    if rounds < 1:
        raise ExperimentError(f"rounds must be >= 1, got {rounds}")
    generator = scenario.workload_generator(seed=workload_seed)
    pool = generator.generate(
        num_unique,
        num_dimensions,
        Aggregation.COUNT,
        accept_batch=scenario.batch_acceptance_predicate(min_selectivity=min_selectivity),
    )
    workload = pool.repeated(num_unique * repeats, rng=workload_seed)
    base_config = scenario.system.config

    points: list[LocalityPoint] = []
    for mode, enabled in (("cache_off", False), ("cache_on", True)):
        config = replace(base_config, cache=CacheConfig(enabled=enabled))
        system = FederatedAQPSystem.from_table(
            scenario.tensor, config=config, total_epsilon=total_epsilon
        )
        points.extend(
            _run_rounds(system, list(workload), mode=mode, rounds=rounds)
        )
    return LocalityResult(
        points=tuple(points),
        num_unique=num_unique,
        num_queries=len(workload),
        rounds=rounds,
        num_providers=scenario.system.num_providers,
    )


def _run_rounds(
    system: FederatedAQPSystem,
    queries: Sequence[RangeQuery],
    *,
    mode: str,
    rounds: int,
) -> list[LocalityPoint]:
    points: list[LocalityPoint] = []
    for round_index in range(rounds):
        batch = system.execute_batch(queries, compute_exact=False)
        points.append(
            LocalityPoint(
                mode=mode,
                round_index=round_index,
                num_queries=batch.num_queries,
                seconds=batch.wall_seconds,
                queries_per_second=batch.queries_per_second,
                epsilon_charged=batch.epsilon_spent,
                summary_cache_hits=batch.summary_cache_hits,
                answer_cache_hits=batch.answer_cache_hits,
            )
        )
    return points


def format_locality_table(result: LocalityResult) -> str:
    """Text rendition of the locality experiment (benchmark output)."""
    lines = [
        f"workload locality: {result.num_unique} unique predicates x "
        f"{result.num_queries // result.num_unique} repeats, {result.rounds} rounds",
        f"{'mode':<10} {'round':>5} {'q/s':>10} {'eps charged':>12} "
        f"{'summary hits':>13} {'answer hits':>12}",
    ]
    for point in result.points:
        lines.append(
            f"{point.mode:<10} {point.round_index:>5} {point.queries_per_second:>10.1f} "
            f"{point.epsilon_charged:>12.3f} {point.summary_cache_hits:>13} "
            f"{point.answer_cache_hits:>12}"
        )
    lines.append(
        f"warm speedup (on/off): {result.warm_speedup:.2f}x | epsilon saved: "
        f"{result.epsilon_saved:.3f} ({result.epsilon_charged_on:.3f} vs "
        f"{result.epsilon_charged_off:.3f}) | warm answer hit rate: "
        f"{100 * result.warm_answer_hit_rate:.1f}%"
    )
    return "\n".join(lines)
