"""Attack-resilience experiment (Table 1).

Runs the Naive Bayes attribute-inference attack against a small federated
deployment for every combination of composition regime, aggregation and total
attacker budget ``xi``, and reports the attack accuracy next to the chance
baseline.  Expected shape: accuracy stays at (or below a small multiple of)
chance for every configuration — the paper reports "< 1%" with a
100-value sensitive attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..attacks.budgeting import AttackBudgetRegime
from ..attacks.runner import AttackRunner
from ..datasets.adult import AdultSyntheticGenerator
from ..query.model import Aggregation
from ..storage.tensor import build_count_tensor
from .reporting import format_series_table
from .scenarios import build_system

__all__ = ["AttackCell", "run_attack_resilience", "format_attack_resilience"]


@dataclass(frozen=True)
class AttackCell:
    """One cell of Table 1."""

    regime: str
    aggregation: str
    total_epsilon: float
    accuracy: float
    chance_accuracy: float
    num_queries: int
    per_query_epsilon: float


def run_attack_resilience(
    *,
    xis: Sequence[float] = (1.0, 20.0, 50.0, 100.0),
    regimes: Sequence[AttackBudgetRegime] = (
        AttackBudgetRegime.SEQUENTIAL,
        AttackBudgetRegime.ADVANCED,
        AttackBudgetRegime.COALITION,
    ),
    aggregations: Sequence[Aggregation] = (Aggregation.COUNT, Aggregation.SUM),
    num_rows: int = 12_000,
    sensitive: str = "fnlwgt",
    quasi_identifiers: Sequence[str] = ("education_num", "occupation", "income"),
    sensitive_domain: int = 100,
    psi: float = 1e-6,
    evaluation_rows: int = 300,
    seed: int = 0,
) -> list[AttackCell]:
    """Run the attack grid and return one cell per configuration.

    The sensitive attribute defaults to ``fnlwgt`` restricted to a 100-value
    domain (matching the paper's ``||SA|| = 100``); quasi-identifiers are
    three small-domain Adult attributes so the query grid stays tractable.
    """
    generator = AdultSyntheticGenerator(num_rows=num_rows, seed=seed)
    raw = generator.table()
    # Restrict the sensitive attribute to the requested domain size so the
    # chance baseline matches the paper's 1 / 100.
    sensitive_column = raw.column(sensitive) % sensitive_domain
    columns = {name: raw.column(name) for name in raw.schema.column_names}
    columns[sensitive] = sensitive_column
    limited_dimensions = tuple(
        dimension if dimension.name != sensitive else type(dimension)(
            sensitive, 0, sensitive_domain - 1
        )
        for dimension in raw.schema.dimensions
    )
    from ..storage.schema import Schema
    from ..storage.table import Table

    limited_schema = Schema(limited_dimensions)
    limited_table = Table(limited_schema, columns)

    tensor_dimensions = (sensitive, *quasi_identifiers)
    tensor = build_count_tensor(limited_table, tensor_dimensions)
    partition_rows = max(1, tensor.num_rows // 4)
    system = build_system(
        tensor,
        cluster_size=max(50, partition_rows // 50),
        sampling_rate=0.2,
        seed=seed,
    )
    runner = AttackRunner(
        system=system,
        original_table=limited_table,
        sensitive=sensitive,
        quasi_identifiers=tuple(quasi_identifiers),
        evaluation_rows=evaluation_rows,
    )

    cells: list[AttackCell] = []
    for regime in regimes:
        for aggregation in aggregations:
            for xi in xis:
                outcome = runner.run(regime, aggregation, xi, total_delta=psi)
                cells.append(
                    AttackCell(
                        regime=regime.value,
                        aggregation=aggregation.value,
                        total_epsilon=xi,
                        accuracy=outcome.accuracy,
                        chance_accuracy=outcome.chance_accuracy,
                        num_queries=outcome.num_queries,
                        per_query_epsilon=outcome.per_query_epsilon,
                    )
                )
    return cells


def format_attack_resilience(cells: Sequence[AttackCell]) -> str:
    """Text rendition of Table 1."""
    rows = [
        {
            "regime": cell.regime,
            "agg": cell.aggregation,
            "xi": cell.total_epsilon,
            "accuracy_%": 100 * cell.accuracy,
            "chance_%": 100 * cell.chance_accuracy,
            "n_queries": cell.num_queries,
            "eps_per_query": cell.per_query_epsilon,
        }
        for cell in cells
    ]
    return format_series_table(
        "Learning-based attack accuracy (Table 1)",
        rows,
        ["regime", "agg", "xi", "accuracy_%", "chance_%", "n_queries", "eps_per_query"],
    )
