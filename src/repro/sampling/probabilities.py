"""Probability-proportional-to-size (pps) sampling probabilities (Equation 1).

Given the approximate per-cluster proportions ``R_j`` (fraction of the
cluster's rows matching the query, estimated from metadata under the
dimension-independence assumption), the sampling probability of cluster ``j``
is ``p_j = R_j / sum_i R_i``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SamplingError

__all__ = ["normalise_proportions", "sampling_probabilities"]


def normalise_proportions(proportions: Sequence[float]) -> np.ndarray:
    """Validate raw proportions: finite, non-negative, one-dimensional."""
    array = np.asarray(proportions, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise SamplingError("proportions must be a non-empty one-dimensional sequence")
    if not np.all(np.isfinite(array)):
        raise SamplingError("proportions must be finite")
    if np.any(array < 0):
        raise SamplingError("proportions must be non-negative")
    return array


def sampling_probabilities(
    proportions: Sequence[float], *, floor: float = 1e-12
) -> np.ndarray:
    """pps probabilities ``p_j = R_j / sum(R)`` with a degenerate-case fallback.

    When every proportion is zero (the metadata approximation found no
    matching rows in any covering cluster — possible because Equation 1 is an
    approximation) the probabilities fall back to uniform so that sampling and
    estimation remain well defined.

    Parameters
    ----------
    floor:
        Minimum probability assigned to any cluster.  A strictly positive
        floor keeps the Hansen-Hurwitz weights ``Q(C)/p`` finite even for
        clusters whose approximate proportion is zero but that do contain
        matching rows.
    """
    array = normalise_proportions(proportions)
    total = float(array.sum())
    if total <= 0.0:
        return np.full(array.size, 1.0 / array.size)
    probabilities = array / total
    if floor > 0:
        probabilities = np.maximum(probabilities, floor)
        probabilities = probabilities / probabilities.sum()
    return probabilities
