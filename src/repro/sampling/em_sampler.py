"""DP cluster sampling via the Exponential Mechanism (the paper's Algorithm 2).

Each data provider receives an allocation ``s`` and must pick ``s`` of its
covering clusters ``C^Q``.  The selection is biased by the pps probabilities
``p_j`` (the score of a cluster is its own sampling probability), and made
differentially private by the Exponential Mechanism with score sensitivity
``Δp = 1 / (N_min * (N_min + 1))`` (Theorem 5.2).  The total budget
``eps_S`` is split evenly across the ``s`` selections (Algorithm 2, line 3).

Estimator-consistency note (see DESIGN.md): the sampler also exposes the
*actual* selection distribution induced by the Exponential Mechanism.  The
Hansen-Hurwitz estimator is unbiased only when the inverse-probability
weights match the distribution the clusters were drawn from, so the provider
weights by these selection probabilities rather than the raw pps
probabilities of Equation 1 — when ``eps_S`` is large the two coincide, and
when ``eps_S`` is small this choice prevents the estimate from exploding on
clusters whose approximate proportion is near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dp.mechanisms import ExponentialMechanism
from ..errors import SamplingError
from ..utils.rng import RngLike, ensure_rng
from .probabilities import sampling_probabilities

__all__ = [
    "SamplingOutcome",
    "EMClusterSampler",
    "sampling_probability_sensitivity",
]


def sampling_probability_sensitivity(n_min: int) -> float:
    """``Δp = 1 / (N_min * (N_min + 1))`` — Theorem 5.2.

    ``N_min`` is the provider's approximation threshold: the smallest number
    of covering clusters for which sampling is triggered, hence the smallest
    possible ``N^Q`` and the largest possible sensitivity of any cluster's
    sampling probability.
    """
    if n_min < 1:
        raise SamplingError(f"n_min must be >= 1, got {n_min}")
    return 1.0 / (n_min * (n_min + 1))


@dataclass(frozen=True)
class SamplingOutcome:
    """Result of one DP cluster-sampling run.

    Attributes
    ----------
    selected_indices:
        Positions (into the covering-cluster list) of the sampled clusters;
        the same cluster may appear several times (with-replacement design,
        matching the Hansen-Hurwitz estimator).
    pps_probabilities:
        The Equation-1 pps probabilities of *all* covering clusters.
    selection_probabilities:
        The Exponential-Mechanism distribution each selection was drawn from
        — the weights the Hansen-Hurwitz estimator should use.
    epsilon_spent:
        The Exponential-Mechanism budget consumed (``eps_S``).
    """

    selected_indices: tuple[int, ...]
    pps_probabilities: np.ndarray
    selection_probabilities: np.ndarray
    epsilon_spent: float

    @property
    def probabilities(self) -> np.ndarray:
        """Alias for :attr:`pps_probabilities` (Equation 1)."""
        return self.pps_probabilities


class EMClusterSampler:
    """Exponential-Mechanism sampler over the covering clusters of a query."""

    def __init__(
        self,
        epsilon: float,
        n_min: int,
        *,
        replace: bool = True,
        rng: RngLike = None,
    ) -> None:
        if epsilon <= 0:
            raise SamplingError(f"epsilon must be > 0, got {epsilon}")
        self._epsilon = float(epsilon)
        self._n_min = int(n_min)
        self._replace = bool(replace)
        self._rng = ensure_rng(rng)
        self._sensitivity = sampling_probability_sensitivity(self._n_min)

    @property
    def epsilon(self) -> float:
        """Total sampling budget ``eps_S``."""
        return self._epsilon

    @property
    def score_sensitivity(self) -> float:
        """Sensitivity ``Δp`` used to calibrate the Exponential Mechanism."""
        return self._sensitivity

    def selection_distribution(self, proportions, sample_size: int) -> np.ndarray:
        """The per-selection Exponential-Mechanism distribution (Algorithm 2, line 5)."""
        if sample_size < 1:
            raise SamplingError(f"sample_size must be >= 1, got {sample_size}")
        pps = sampling_probabilities(proportions)
        mechanism = ExponentialMechanism(
            epsilon=self._epsilon, sensitivity=self._sensitivity, rng=self._rng
        )
        per_selection_epsilon = self._epsilon / sample_size
        return mechanism.selection_probabilities(pps, epsilon=per_selection_epsilon)

    def sample(self, proportions, sample_size: int) -> SamplingOutcome:
        """Run Algorithm 2: pick ``sample_size`` clusters from ``proportions``.

        Parameters
        ----------
        proportions:
            The approximate per-cluster proportions ``R̂`` of the covering
            clusters (any non-negative sizes; normalised internally).
        sample_size:
            The provider's allocation ``s``.  Clamped to the number of
            available clusters when sampling without replacement.
        """
        pps = sampling_probabilities(proportions)
        if sample_size < 1:
            raise SamplingError(f"sample_size must be >= 1, got {sample_size}")
        count = sample_size if self._replace else min(sample_size, pps.size)

        mechanism = ExponentialMechanism(
            epsilon=self._epsilon, sensitivity=self._sensitivity, rng=self._rng
        )
        per_selection_epsilon = self._epsilon / count
        selection = mechanism.selection_probabilities(pps, epsilon=per_selection_epsilon)

        if self._replace:
            # One vectorised multinomial draw instead of ``count`` independent
            # single-choice calls; the selections stay i.i.d. from the same
            # Exponential-Mechanism distribution.
            chosen = [int(c) for c in self._rng.choice(selection.size, size=count, p=selection)]
        else:
            chosen = mechanism.select_many(pps, count, replace=False)

        return SamplingOutcome(
            selected_indices=tuple(chosen),
            pps_probabilities=pps,
            selection_probabilities=selection,
            epsilon_spent=self._epsilon,
        )
