"""Non-private sampling baselines.

These samplers are the comparison points used in the problem statement and in
the ablation benches:

* :class:`UniformRowSampler` — Bernoulli-style row-level sampling (fast to
  reason about, but requires touching every row, so it yields no speed-up),
* :class:`UniformClusterSampler` — equal-probability cluster sampling (no
  distribution awareness),
* :class:`ExactPPSSampler` — pps cluster sampling using the *exact*
  proportions (upper bound on what the metadata approximation can achieve,
  and the non-DP "global sampling" reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SamplingError
from ..query.executor import execute_on_table, selection_mask
from ..query.model import RangeQuery
from ..storage.cluster import Cluster
from ..utils.rng import RngLike, ensure_rng
from .estimator import hansen_hurwitz_estimate
from .probabilities import sampling_probabilities

__all__ = ["UniformRowSampler", "UniformClusterSampler", "ExactPPSSampler"]


@dataclass
class UniformRowSampler:
    """Row-level Bernoulli sampling followed by inverse-rate scaling."""

    sampling_rate: float
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not 0 < self.sampling_rate <= 1:
            raise SamplingError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )
        self._generator = ensure_rng(self.rng)

    def estimate(self, clusters: Sequence[Cluster], query: RangeQuery) -> float:
        """Estimate the query over the union of ``clusters``."""
        if not clusters:
            return 0.0
        total = 0.0
        for cluster in clusters:
            table = cluster.rows
            if table.num_rows == 0:
                continue
            keep = self._generator.random(table.num_rows) < self.sampling_rate
            if not keep.any():
                continue
            mask = selection_mask(table, query) & keep
            total += float(table.measure_column()[mask].sum())
        return total / self.sampling_rate


@dataclass
class UniformClusterSampler:
    """Equal-probability cluster sampling with Hansen-Hurwitz estimation."""

    sampling_rate: float
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not 0 < self.sampling_rate <= 1:
            raise SamplingError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )
        self._generator = ensure_rng(self.rng)

    def estimate(self, clusters: Sequence[Cluster], query: RangeQuery) -> float:
        """Estimate the query over ``clusters`` by sampling clusters uniformly."""
        if not clusters:
            return 0.0
        count = max(1, int(round(self.sampling_rate * len(clusters))))
        count = min(count, len(clusters))
        indices = self._generator.choice(len(clusters), size=count, replace=False)
        probabilities = np.full(len(clusters), 1.0 / len(clusters))
        values = [execute_on_table(clusters[i].rows, query) for i in indices]
        return hansen_hurwitz_estimate(values, probabilities[indices])


@dataclass
class ExactPPSSampler:
    """pps cluster sampling using exact per-cluster proportions.

    Computing the exact proportions costs as much as answering the query, so
    this sampler is a reference point for accuracy, not a practical method —
    exactly the argument the paper makes for approximating ``R``.
    """

    sampling_rate: float
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not 0 < self.sampling_rate <= 1:
            raise SamplingError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )
        self._generator = ensure_rng(self.rng)

    def estimate(self, clusters: Sequence[Cluster], query: RangeQuery) -> float:
        """Estimate using pps probabilities derived from exact match counts."""
        if not clusters:
            return 0.0
        exact_counts = np.array(
            [execute_on_table(cluster.rows, query) for cluster in clusters], dtype=float
        )
        probabilities = sampling_probabilities(exact_counts)
        count = max(1, int(round(self.sampling_rate * len(clusters))))
        count = min(count, len(clusters))
        indices = self._generator.choice(
            len(clusters), size=count, replace=True, p=probabilities
        )
        values = exact_counts[indices]
        return hansen_hurwitz_estimate(values, probabilities[indices])
