"""Statistical estimators for unequal-probability cluster samples.

The paper uses the Hansen-Hurwitz estimator (Equation 3):

    E(Q, C^Q_S) = (1 / N_S) * sum_i Q(C_i) / p_i

where ``p_i`` is the pps sampling probability of the ``i``-th sampled cluster
and ``Q(C_i)`` the exact query result on it.  The Horvitz-Thompson estimator
is provided as an alternative for without-replacement designs and is used by
ablation benches.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SamplingError

__all__ = ["hansen_hurwitz_estimate", "horvitz_thompson_estimate"]


def _validate(values: Sequence[float], probabilities: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    vals = np.asarray(values, dtype=float)
    probs = np.asarray(probabilities, dtype=float)
    if vals.ndim != 1 or probs.ndim != 1:
        raise SamplingError("values and probabilities must be one-dimensional")
    if vals.size != probs.size:
        raise SamplingError(
            f"values ({vals.size}) and probabilities ({probs.size}) must be aligned"
        )
    if vals.size == 0:
        raise SamplingError("cannot estimate from an empty sample")
    if not np.all(np.isfinite(vals)) or not np.all(np.isfinite(probs)):
        raise SamplingError("values and probabilities must be finite")
    if np.any(probs <= 0) or np.any(probs > 1):
        raise SamplingError("probabilities must lie in (0, 1]")
    return vals, probs


def hansen_hurwitz_estimate(
    values: Sequence[float], probabilities: Sequence[float]
) -> float:
    """Hansen-Hurwitz estimate of the population total (Equation 3).

    Parameters
    ----------
    values:
        Exact per-cluster query results ``Q(C_i)`` for the sampled clusters.
    probabilities:
        The pps selection probabilities ``p_i`` of those clusters.
    """
    vals, probs = _validate(values, probabilities)
    return float(np.mean(vals / probs))


def horvitz_thompson_estimate(
    values: Sequence[float], inclusion_probabilities: Sequence[float]
) -> float:
    """Horvitz-Thompson estimate ``sum_i Q(C_i) / pi_i``.

    ``pi_i`` is the probability that cluster ``i`` appears in the sample at
    all (inclusion probability), appropriate for without-replacement designs.
    """
    vals, probs = _validate(values, inclusion_probabilities)
    return float(np.sum(vals / probs))
