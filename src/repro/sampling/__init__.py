"""Sampling and estimation substrate.

Implements the paper's distribution-aware cluster sampling pipeline:

* pps probabilities from approximate proportions (Equation 1),
* the Hansen-Hurwitz estimator (Equation 3),
* the DP Exponential-Mechanism cluster sampler (Algorithm 2),
* non-private baselines (uniform row sampling, uniform cluster sampling,
  exact pps sampling) used for comparison and ablation benches.
"""

from .baselines import (
    ExactPPSSampler,
    UniformClusterSampler,
    UniformRowSampler,
)
from .em_sampler import EMClusterSampler, SamplingOutcome
from .estimator import hansen_hurwitz_estimate, horvitz_thompson_estimate
from .probabilities import normalise_proportions, sampling_probabilities

__all__ = [
    "sampling_probabilities",
    "normalise_proportions",
    "hansen_hurwitz_estimate",
    "horvitz_thompson_estimate",
    "EMClusterSampler",
    "SamplingOutcome",
    "UniformClusterSampler",
    "UniformRowSampler",
    "ExactPPSSampler",
]
