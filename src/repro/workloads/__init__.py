"""Random range-query workload generation (the paper's ``(m, n)`` workloads)."""

from .generator import Workload, WorkloadGenerator

__all__ = ["Workload", "WorkloadGenerator"]
