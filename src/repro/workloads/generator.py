"""Random range-query workloads.

A workload ``(m, n)`` is a set of ``m`` distinct queries, each constraining
``n`` dimensions with random ranges (Section 6.1).  The generator draws the
constrained dimensions uniformly, draws each range as a random sub-interval
covering a configurable fraction of the domain, and can optionally filter out
queries whose exact answer is empty or whose covering-cluster count would not
trigger the approximation (the paper only runs queries with
``N^Q > N_min`` on all providers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ..errors import WorkloadError
from ..query.model import Aggregation, Interval, RangeQuery
from ..storage.schema import Schema
from ..utils.rng import RngLike, ensure_rng

__all__ = ["Workload", "WorkloadGenerator"]


@dataclass(frozen=True)
class Workload:
    """A named set of range queries."""

    name: str
    queries: tuple[RangeQuery, ...]

    def __post_init__(self) -> None:
        if not self.queries:
            raise WorkloadError(f"workload {self.name!r} is empty")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[RangeQuery]:
        return iter(self.queries)

    def repeated(
        self, total: int, *, rng: RngLike = None, name: str | None = None
    ) -> "Workload":
        """Repeated-predicate workload: this workload's queries cycled to ``total``.

        Models query locality — dashboards and monitoring traffic re-issue a
        small pool of predicates over and over — which is the regime the
        cross-query release cache (:mod:`repro.cache`) is built for.

        Parameters
        ----------
        total:
            Length of the returned workload; every unique query appears
            ``total // len(self)`` or one more times (round-robin), so each
            predicate is guaranteed at least once when ``total >= len(self)``.
        rng:
            Optional seed-like input; when given the repeated sequence is
            shuffled, interleaving the repetitions like arrival order would.
        name:
            Optional name; defaults to ``"<name>-xN"``.
        """
        if total < 1:
            raise WorkloadError(f"total must be >= 1, got {total}")
        queries = [self.queries[index % len(self.queries)] for index in range(total)]
        if rng is not None:
            generator = ensure_rng(rng)
            order = generator.permutation(total)
            queries = [queries[int(position)] for position in order]
        label = name or f"{self.name}-x{total}"
        return Workload(name=label, queries=tuple(queries))


@dataclass
class WorkloadGenerator:
    """Generate random ``(m, n)`` workloads against a schema.

    Parameters
    ----------
    schema:
        Schema of the queried table (the measure column is never constrained).
    dimensions:
        Optional subset of queryable dimensions; defaults to every dimension.
    min_coverage, max_coverage:
        Each range covers a uniformly drawn fraction of its dimension's domain
        in ``[min_coverage, max_coverage]`` — wide enough ranges keep the
        covering-cluster count above ``N_min`` so the approximation triggers.
    """

    schema: Schema
    dimensions: Sequence[str] | None = None
    min_coverage: float = 0.2
    max_coverage: float = 0.7
    rng: RngLike = None
    _queryable: tuple[str, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        names = tuple(self.dimensions) if self.dimensions else self.schema.dimension_names
        for name in names:
            self.schema.dimension(name)
        if not names:
            raise WorkloadError("at least one queryable dimension is required")
        if not 0 < self.min_coverage <= self.max_coverage <= 1:
            raise WorkloadError(
                "coverage bounds must satisfy 0 < min <= max <= 1, got "
                f"({self.min_coverage}, {self.max_coverage})"
            )
        self._queryable = names
        self._generator = ensure_rng(self.rng)

    def random_query(self, num_dimensions: int, aggregation: Aggregation) -> RangeQuery:
        """Draw one random query constraining ``num_dimensions`` dimensions."""
        if not 1 <= num_dimensions <= len(self._queryable):
            raise WorkloadError(
                f"num_dimensions must be in [1, {len(self._queryable)}], got {num_dimensions}"
            )
        chosen = self._generator.choice(
            len(self._queryable), size=num_dimensions, replace=False
        )
        ranges: dict[str, Interval] = {}
        for index in chosen:
            name = self._queryable[int(index)]
            dimension = self.schema.dimension(name)
            coverage = self._generator.uniform(self.min_coverage, self.max_coverage)
            width = max(1, int(round(coverage * dimension.domain_size)))
            max_start = dimension.high - width + 1
            start = int(self._generator.integers(dimension.low, max(dimension.low, max_start) + 1))
            ranges[name] = Interval(start, min(dimension.high, start + width - 1))
        return RangeQuery(aggregation, ranges)

    def generate(
        self,
        num_queries: int,
        num_dimensions: int,
        aggregation: Aggregation = Aggregation.COUNT,
        *,
        name: str | None = None,
        accept: Callable[[RangeQuery], bool] | None = None,
        accept_batch: Callable[[Sequence[RangeQuery]], Sequence[bool]] | None = None,
        max_attempts_per_query: int = 200,
    ) -> Workload:
        """Generate a workload of ``num_queries`` distinct queries.

        ``accept`` (when given) filters candidate queries — e.g. "exact answer
        is non-zero" or "covering clusters exceed N_min on every provider".
        ``accept_batch`` is the amortised form: candidates are screened in
        chunks with one call, which lets metadata-based predicates evaluate a
        whole chunk against the dense index in one pass.  The candidate
        stream is identical either way, so an ``accept_batch`` that agrees
        with ``accept`` pointwise generates the same workload.  If the
        acceptance predicate is too strict the generator raises rather than
        looping forever.
        """
        if num_queries < 1:
            raise WorkloadError(f"num_queries must be >= 1, got {num_queries}")
        if accept is not None and accept_batch is not None:
            raise WorkloadError("pass either accept or accept_batch, not both")
        queries: list[RangeQuery] = []
        seen: set[str] = set()
        attempts_left = num_queries * max_attempts_per_query
        chunk_size = max(1, num_queries) if accept_batch is not None else 1
        while len(queries) < num_queries:
            if attempts_left <= 0:
                raise WorkloadError(
                    f"could not generate {num_queries} acceptable queries "
                    f"(got {len(queries)}); relax the acceptance predicate or coverage bounds"
                )
            chunk: list[RangeQuery] = []
            while len(chunk) < chunk_size and attempts_left > 0:
                attempts_left -= 1
                candidate = self.random_query(num_dimensions, aggregation)
                key = candidate.to_sql()
                if key in seen:
                    continue
                seen.add(key)
                chunk.append(candidate)
            if not chunk:
                continue
            if accept_batch is not None:
                verdicts = list(accept_batch(chunk))
                if len(verdicts) != len(chunk):
                    raise WorkloadError(
                        "accept_batch must return one verdict per candidate"
                    )
            elif accept is not None:
                verdicts = [accept(candidate) for candidate in chunk]
            else:
                verdicts = [True] * len(chunk)
            for candidate, verdict in zip(chunk, verdicts):
                if verdict and len(queries) < num_queries:
                    queries.append(candidate)
        label = name or f"{aggregation.value}-m{num_queries}-n{num_dimensions}"
        return Workload(name=label, queries=tuple(queries))
