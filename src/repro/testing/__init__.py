"""Test-support subsystems shipped with the library.

Currently holds the deterministic fault-injection layer
(:mod:`repro.testing.faults`) used by the chaos test suite and wired into
the engine through :attr:`repro.config.ParallelismConfig.injected_faults`.
Living in ``src`` (not ``tests/``) is deliberate: the engine itself honours
the hooks, so downstream users can chaos-test their own deployments.
"""

from .faults import (
    FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    PROTOCOL_PHASES,
    PROVIDER_FAULT_KINDS,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FiredFault,
)

__all__ = [
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "PROTOCOL_PHASES",
    "PROVIDER_FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FiredFault",
]
