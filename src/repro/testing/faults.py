"""Deterministic fault injection for chaos-testing the federated drain path.

The federated setting of the paper assumes data providers that can slow
down, crash, or disappear mid-protocol.  This module gives the test suite a
way to *script* those failures instead of hoping for them:

* a :class:`FaultSpec` names one failure — drop a provider, crash or hang a
  process-pool worker, kill a worker connection, delay or drop a simulated
  network message — pinned to a protocol phase (``"summary"`` vs.
  ``"answer"``) of a chosen batch;
* a :class:`FaultSchedule` is a frozen, hashable set of specs.  It rides on
  :attr:`~repro.config.ParallelismConfig.injected_faults`, and
  :meth:`FaultSchedule.from_seed` derives one deterministically from an
  integer seed, so a randomised chaos run replays bit-identically from its
  seed alone;
* a :class:`FaultInjector` is the runtime half: the aggregator (and the
  simulated network) consult it before each provider call / message send,
  and every fault that actually fires is appended to
  :attr:`FaultInjector.trace` — the failure trace that replay tests compare
  and that CI uploads on a red chaos run.

Faults are consumed **parent-side only**: worker processes never see the
schedule.  A ``crash_worker``/``hang_worker`` spec makes the pool send a
tiny chaos directive ahead of the real command (the worker then calls
``os._exit`` or sleeps); ``drop_provider`` and ``kill_connection`` are
applied at the call site.  This keeps the injection deterministic and the
worker protocol untouched when no schedule is installed.

>>> schedule = FaultSchedule.from_seed(7, num_providers=4)
>>> schedule == FaultSchedule.from_seed(7, num_providers=4)
True
>>> schedule.faults[0].kind in FAULT_KINDS
True
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "PROVIDER_FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "TRANSPORT_FAULT_KINDS",
    "PROTOCOL_PHASES",
    "FaultSpec",
    "FaultSchedule",
    "FiredFault",
    "FaultInjector",
]

PROVIDER_FAULT_KINDS = (
    "drop_provider",
    "crash_worker",
    "hang_worker",
    "kill_connection",
)
"""Faults applied to one provider's phase call (any backend)."""

MESSAGE_FAULT_KINDS = ("delay_message", "drop_message")
"""Faults applied to one :class:`~repro.federation.network.SimulatedNetwork` send."""

TRANSPORT_FAULT_KINDS = (
    "drop_frame",
    "delay_frame",
    "disconnect",
    "duplicate_frame",
)
"""Faults applied at the wire boundary of a serializing transport
(:mod:`repro.federation.transport`), keyed by (batch, phase, provider) like
the provider faults.  ``drop_frame`` loses the request frame before it
reaches the provider and ``disconnect`` severs the connection mid-phase —
both surface as :class:`~repro.errors.TransportError` and enter the
resilience retry/degrade path; ``delay_frame`` stalls the frame (a slow
link); ``duplicate_frame`` delivers the reply twice, exercising the
receiver's sequence-based duplicate discard."""

FAULT_KINDS = PROVIDER_FAULT_KINDS + MESSAGE_FAULT_KINDS + TRANSPORT_FAULT_KINDS

PROTOCOL_PHASES = ("summary", "answer")
"""The two provider-facing phases of the batched protocol."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    provider_index:
        Federation index of the provider hit (provider faults only).
    phase:
        Protocol phase the fault arms at (provider faults only).
    batch:
        Batch counter value the fault arms at; ``None`` arms it at every
        batch (until ``repeat`` is exhausted).
    repeat:
        How many times the spec fires before disarming.  A retried call
        consumes one firing per attempt, so ``repeat=1`` with one retry
        means the provider recovers on the retry; a large ``repeat``
        models a provider that is permanently down.
    hang_seconds:
        Sleep injected into the worker for ``hang_worker`` (should exceed
        the configured provider timeout to actually trip it).
    delay_seconds:
        Extra simulated latency for ``delay_message``.
    message_class:
        Traffic class a message fault applies to (``"query"``/``"ingest"``).
    message_index:
        0-based per-class send counter value the message fault fires at;
        ``None`` fires on the next send of that class.
    """

    kind: str
    provider_index: int = 0
    phase: str = "summary"
    batch: int | None = 0
    repeat: int = 1
    hang_seconds: float = 30.0
    delay_seconds: float = 0.01
    message_class: str = "query"
    message_index: int | None = 0

    def __post_init__(self) -> None:
        _require(self.kind in FAULT_KINDS, f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        _require(
            self.phase in PROTOCOL_PHASES,
            f"phase must be one of {PROTOCOL_PHASES}, got {self.phase!r}",
        )
        _require(self.provider_index >= 0, f"provider_index must be >= 0, got {self.provider_index}")
        if self.batch is not None:
            _require(self.batch >= 0, f"batch must be >= 0, got {self.batch}")
        _require(self.repeat >= 1, f"repeat must be >= 1, got {self.repeat}")
        _require(self.hang_seconds >= 0, f"hang_seconds must be >= 0, got {self.hang_seconds}")
        _require(self.delay_seconds >= 0, f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.message_index is not None:
            _require(
                self.message_index >= 0,
                f"message_index must be >= 0, got {self.message_index}",
            )

    def matches_call(self, batch: int, phase: str, provider_index: int) -> bool:
        """Whether this spec arms for one provider phase call."""
        return (
            self.kind in PROVIDER_FAULT_KINDS
            and (self.batch is None or self.batch == batch)
            and self.phase == phase
            and self.provider_index == provider_index
        )

    def matches_transport(self, batch: int, phase: str, provider_index: int) -> bool:
        """Whether this spec arms for one transport-level provider call."""
        return (
            self.kind in TRANSPORT_FAULT_KINDS
            and (self.batch is None or self.batch == batch)
            and self.phase == phase
            and self.provider_index == provider_index
        )

    def matches_message(self, message_class: str, message_index: int) -> bool:
        """Whether this spec arms for one simulated-network send."""
        return (
            self.kind in MESSAGE_FAULT_KINDS
            and self.message_class == message_class
            and (self.message_index is None or self.message_index == message_index)
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A frozen, hashable set of scripted failures.

    Hangs off :attr:`~repro.config.ParallelismConfig.injected_faults`; the
    owning aggregator builds one :class:`FaultInjector` per schedule at
    construction, so one schedule drives one deterministic chaos run.
    """

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        _require(
            isinstance(self.faults, tuple)
            and all(isinstance(fault, FaultSpec) for fault in self.faults),
            "faults must be a tuple of FaultSpec",
        )

    @classmethod
    def of(cls, *faults: FaultSpec) -> "FaultSchedule":
        """Build a schedule from individual specs."""
        return cls(tuple(faults))

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        num_providers: int,
        num_batches: int = 4,
        num_faults: int = 2,
        kinds: tuple[str, ...] = PROVIDER_FAULT_KINDS,
        phases: tuple[str, ...] = PROTOCOL_PHASES,
        repeat: int = 1,
    ) -> "FaultSchedule":
        """Derive a schedule deterministically from an integer seed.

        The same ``(seed, shape)`` arguments always produce the same
        schedule, which (together with the system seed) makes a whole chaos
        run replayable from two integers.

        >>> a = FaultSchedule.from_seed(3, num_providers=2, num_faults=3)
        >>> b = FaultSchedule.from_seed(3, num_providers=2, num_faults=3)
        >>> a == b and len(a.faults) == 3
        True
        """
        _require(num_providers >= 1, f"num_providers must be >= 1, got {num_providers}")
        _require(num_batches >= 1, f"num_batches must be >= 1, got {num_batches}")
        _require(num_faults >= 0, f"num_faults must be >= 0, got {num_faults}")
        _require(bool(kinds), "kinds must not be empty")
        rng = np.random.default_rng(seed)
        faults: list[FaultSpec] = []
        for _ in range(num_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            if kind in PROVIDER_FAULT_KINDS:
                faults.append(
                    FaultSpec(
                        kind=kind,
                        provider_index=int(rng.integers(num_providers)),
                        phase=phases[int(rng.integers(len(phases)))],
                        batch=int(rng.integers(num_batches)),
                        repeat=repeat,
                        hang_seconds=float(rng.uniform(1.0, 5.0)),
                    )
                )
            else:
                faults.append(
                    FaultSpec(
                        kind=kind,
                        message_class="query",
                        message_index=int(rng.integers(8)),
                        delay_seconds=float(rng.uniform(1e-3, 1e-2)),
                    )
                )
        return cls(tuple(faults))


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired, with the context it fired in."""

    kind: str
    batch: int
    attempt: int
    phase: str | None = None
    provider_index: int | None = None
    message_class: str | None = None
    message_index: int | None = None


class FaultInjector:
    """Runtime consumer of one :class:`FaultSchedule`.

    The aggregator consults :meth:`take_call_fault` before every provider
    phase call (each retry is a new attempt) and the simulated network
    consults :meth:`take_message_fault` on every send.  Consumption is
    guarded by a lock so the thread backend's concurrent fan-out stays
    deterministic: a spec is keyed by ``(batch, phase, provider)``, never
    by thread timing.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._lock = threading.Lock()
        self._remaining = [spec.repeat for spec in schedule.faults]
        self._batch = 0
        self._message_counters: dict[str, int] = {}
        self.trace: list[FiredFault] = []

    def begin_batch(self, batch_index: int) -> None:
        """Arm the injector for one aggregator batch."""
        with self._lock:
            self._batch = batch_index

    def take_call_fault(
        self, phase: str, provider_index: int, attempt: int
    ) -> FaultSpec | None:
        """Consume (and record) the armed fault for one provider call, if any."""
        with self._lock:
            for index, spec in enumerate(self.schedule.faults):
                if self._remaining[index] <= 0:
                    continue
                if spec.matches_call(self._batch, phase, provider_index):
                    self._remaining[index] -= 1
                    self.trace.append(
                        FiredFault(
                            kind=spec.kind,
                            batch=self._batch,
                            attempt=attempt,
                            phase=phase,
                            provider_index=provider_index,
                        )
                    )
                    return spec
            return None

    def take_transport_fault(
        self, phase: str, provider_index: int, attempt: int
    ) -> FaultSpec | None:
        """Consume (and record) the armed transport fault for one call, if any.

        Consulted by the serializing transports
        (:mod:`repro.federation.transport`) before each provider phase call
        crosses the wire; each retry is a new attempt, mirroring
        :meth:`take_call_fault`.
        """
        with self._lock:
            for index, spec in enumerate(self.schedule.faults):
                if self._remaining[index] <= 0:
                    continue
                if spec.matches_transport(self._batch, phase, provider_index):
                    self._remaining[index] -= 1
                    self.trace.append(
                        FiredFault(
                            kind=spec.kind,
                            batch=self._batch,
                            attempt=attempt,
                            phase=phase,
                            provider_index=provider_index,
                        )
                    )
                    return spec
            return None

    def take_message_fault(self, message_class: str) -> FaultSpec | None:
        """Consume (and record) the armed fault for one network send, if any."""
        with self._lock:
            sequence = self._message_counters.get(message_class, 0)
            self._message_counters[message_class] = sequence + 1
            for index, spec in enumerate(self.schedule.faults):
                if self._remaining[index] <= 0:
                    continue
                if spec.matches_message(message_class, sequence):
                    self._remaining[index] -= 1
                    self.trace.append(
                        FiredFault(
                            kind=spec.kind,
                            batch=self._batch,
                            attempt=1,
                            message_class=message_class,
                            message_index=sequence,
                        )
                    )
                    return spec
            return None

    @property
    def fired(self) -> int:
        """Number of faults that have fired so far."""
        with self._lock:
            return len(self.trace)

    def signature(self) -> tuple[tuple, ...]:
        """Hashable form of the failure trace (for replay equality checks)."""
        with self._lock:
            return tuple(
                (
                    fired.kind,
                    fired.batch,
                    fired.attempt,
                    fired.phase,
                    fired.provider_index,
                    fired.message_class,
                    fired.message_index,
                )
                for fired in self.trace
            )

    def as_dict(self) -> dict:
        """JSON-friendly form of the schedule and the trace so far."""
        with self._lock:
            return {
                "schedule": [asdict(spec) for spec in self.schedule.faults],
                "trace": [asdict(fired) for fired in self.trace],
            }

    def dump_trace(self, path: str) -> None:
        """Write the failure trace as JSON (the CI chaos artifact)."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
