"""Seeded random-number-generator helpers.

All stochastic components of the library (DP mechanisms, samplers, dataset
generators, workload generators) accept either a seed, an existing
``numpy.random.Generator``, or ``None``.  These helpers normalise that input
and derive independent child generators so that a single top-level seed makes
an entire experiment reproducible without the components sharing one stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ensure_rng", "derive_rng", "spawn_child_rngs"]

RngLike = int | np.random.Generator | np.random.SeedSequence | None


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed-like input.

    ``None`` yields a non-deterministic generator; an ``int`` or
    ``SeedSequence`` seeds a fresh generator; an existing generator is
    returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    return np.random.default_rng(rng)


def derive_rng(rng: RngLike, *key: int | str) -> np.random.Generator:
    """Derive a child generator keyed by ``key`` from a seed-like input.

    Deriving (rather than sharing) generators keeps independent components
    statistically independent and reproducible: the same ``(seed, key)`` pair
    always produces the same stream, regardless of how many draws other
    components made.
    """
    base = ensure_rng(rng)
    material = [int(base.integers(0, 2**32))]
    for part in key:
        if isinstance(part, str):
            material.extend(part.encode("utf-8"))
        else:
            material.append(int(part) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_child_rngs(rng: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Spawn ``count`` independent child generators from one seed-like input."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
