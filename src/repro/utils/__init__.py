"""Small shared utilities: seeded RNG management, timers, validation."""

from .rng import derive_rng, ensure_rng, spawn_child_rngs
from .timing import Stopwatch, Timer
from .validation import (
    require_fraction,
    require_non_negative,
    require_positive,
    require_probability_vector,
)

__all__ = [
    "derive_rng",
    "ensure_rng",
    "spawn_child_rngs",
    "Stopwatch",
    "Timer",
    "require_fraction",
    "require_non_negative",
    "require_positive",
    "require_probability_vector",
]
