"""Numeric validation helpers shared across subsystems."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_fraction",
    "require_probability_vector",
]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if it is finite and strictly positive, else raise."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is finite and non-negative, else raise."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value}")
    return value


def require_fraction(value: float, name: str, *, inclusive: bool = False) -> float:
    """Return ``value`` if it lies in ``(0, 1)`` (or ``[0, 1]``), else raise."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if inclusive:
        if not 0 <= value <= 1:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    elif not 0 < value < 1:
        raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def require_probability_vector(values: Sequence[float], name: str) -> np.ndarray:
    """Validate and return a probability vector (non-negative, sums to one)."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"{name} must be a non-empty one-dimensional sequence")
    if not np.all(np.isfinite(array)) or np.any(array < 0):
        raise ValueError(f"{name} must contain finite non-negative values")
    total = float(array.sum())
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return array
