"""Wall-clock timing helpers used by the execution traces and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


@dataclass
class Timer:
    """Context manager measuring a single elapsed wall-clock interval.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(10))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None


@dataclass
class Stopwatch:
    """Accumulates named wall-clock intervals (one per protocol phase)."""

    laps: dict[str, float] = field(default_factory=dict)

    def measure(self, name: str) -> "_Lap":
        """Return a context manager adding its elapsed time under ``name``."""
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated time of ``name``."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.laps[name] = self.laps.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Total time across all named laps."""
        return sum(self.laps.values())

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the recorded laps."""
        return dict(self.laps)


class _Lap:
    """Context manager recording one interval into a :class:`Stopwatch`."""

    def __init__(self, stopwatch: Stopwatch, name: str) -> None:
        self._stopwatch = stopwatch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stopwatch.add(self._name, time.perf_counter() - self._start)
