"""Configuration dataclasses shared across the library.

The paper exposes a small number of system-level knobs:

* the privacy budget ``(epsilon, delta)`` per query and its split across the
  three protocol phases (``hp1 + hp2 + hp3 = 1`` — Section 5.4),
* the sampling rate ``sr`` and the per-provider approximation threshold
  ``N_min`` (Section 5.2),
* the common maximum cluster size ``S`` shared by all providers (Section 7),
* the simulated network / SMC cost model (Section 6.1 hardware).

Each knob lives in a dedicated frozen dataclass validated at construction so
invalid settings fail fast with a :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from .errors import ConfigurationError
from .testing.faults import FaultSchedule

__all__ = [
    "PrivacyConfig",
    "SamplingConfig",
    "NetworkConfig",
    "SMCConfig",
    "ParallelismConfig",
    "ResilienceConfig",
    "ExecutionConfig",
    "CacheConfig",
    "ServiceConfig",
    "IngestConfig",
    "TransportConfig",
    "ObservabilityConfig",
    "SystemConfig",
    "DEFAULT_PRIVACY",
    "DEFAULT_SAMPLING",
    "DEFAULT_NETWORK",
    "DEFAULT_SMC",
    "DEFAULT_RESILIENCE",
    "DEFAULT_EXECUTION",
    "DENSE_EXECUTION",
    "DEFAULT_CACHE",
    "DEFAULT_SERVICE",
    "DEFAULT_INGEST",
    "DEFAULT_TRANSPORT",
    "DEFAULT_OBSERVABILITY",
    "DEFAULT_SYSTEM",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class PrivacyConfig:
    """Per-query privacy budget and its split across protocol phases.

    Attributes
    ----------
    epsilon:
        Total epsilon consumed by one query.
    delta:
        Failure probability of the smooth-sensitivity release.
    hp_allocation:
        Fraction of ``epsilon`` spent publishing the allocation summaries
        (``N^Q`` and ``Avg(R̂)``) — the paper's ``hp1`` (default 0.1).
    hp_sampling:
        Fraction spent by the Exponential Mechanism cluster sampler — ``hp2``
        (default 0.1).
    hp_estimation:
        Fraction spent releasing the final estimate — ``hp3`` (default 0.8).
    """

    epsilon: float = 1.0
    delta: float = 1e-3
    hp_allocation: float = 0.1
    hp_sampling: float = 0.1
    hp_estimation: float = 0.8

    def __post_init__(self) -> None:
        _require(self.epsilon > 0, f"epsilon must be > 0, got {self.epsilon}")
        _require(0 < self.delta < 1, f"delta must be in (0, 1), got {self.delta}")
        for name in ("hp_allocation", "hp_sampling", "hp_estimation"):
            value = getattr(self, name)
            _require(0 < value < 1, f"{name} must be in (0, 1), got {value}")
        total = self.hp_allocation + self.hp_sampling + self.hp_estimation
        _require(
            math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9),
            f"hp_allocation + hp_sampling + hp_estimation must equal 1, got {total}",
        )

    @property
    def epsilon_allocation(self) -> float:
        """Budget ``eps_O`` spent on the allocation-phase summaries."""
        return self.hp_allocation * self.epsilon

    @property
    def epsilon_sampling(self) -> float:
        """Budget ``eps_S`` spent by the Exponential Mechanism sampler."""
        return self.hp_sampling * self.epsilon

    @property
    def epsilon_estimation(self) -> float:
        """Budget ``eps_E`` spent releasing the final estimate."""
        return self.hp_estimation * self.epsilon

    def with_epsilon(self, epsilon: float) -> "PrivacyConfig":
        """Return a copy with a different total epsilon (same split)."""
        return replace(self, epsilon=epsilon)

    def split(self) -> Mapping[str, float]:
        """Return the per-phase epsilon budgets as a mapping."""
        return {
            "allocation": self.epsilon_allocation,
            "sampling": self.epsilon_sampling,
            "estimation": self.epsilon_estimation,
        }


@dataclass(frozen=True)
class SamplingConfig:
    """Sampling-rate and approximation-threshold settings.

    Attributes
    ----------
    sampling_rate:
        Fraction ``sr`` of the query-covering clusters processed in total
        across the federation (strictly between 0 and 1).
    min_clusters_for_approximation:
        The paper's ``N_min``: a provider answers exactly (no sampling) when
        fewer than this many of its clusters cover the query.
    min_allocation:
        Lower bound on the per-provider sample size when it does approximate
        (the paper constrains ``s_i ∈ ]1, N^Q_i[``; we use an integer floor).
    """

    sampling_rate: float = 0.1
    min_clusters_for_approximation: int = 4
    min_allocation: int = 1

    def __post_init__(self) -> None:
        _require(
            0 < self.sampling_rate < 1,
            f"sampling_rate must be in (0, 1), got {self.sampling_rate}",
        )
        _require(
            self.min_clusters_for_approximation >= 1,
            "min_clusters_for_approximation must be >= 1, got "
            f"{self.min_clusters_for_approximation}",
        )
        _require(
            self.min_allocation >= 1,
            f"min_allocation must be >= 1, got {self.min_allocation}",
        )

    def with_rate(self, sampling_rate: float) -> "SamplingConfig":
        """Return a copy with a different sampling rate."""
        return replace(self, sampling_rate=sampling_rate)


@dataclass(frozen=True)
class NetworkConfig:
    """Cost model for the simulated federation network.

    Costs are expressed in seconds and are charged by the simulated network
    for every message: ``latency + payload_bytes / bandwidth``.
    """

    latency_seconds: float = 1e-3
    bandwidth_bytes_per_second: float = 125e6  # 1 Gbps
    enabled: bool = True

    def __post_init__(self) -> None:
        _require(
            self.latency_seconds >= 0,
            f"latency_seconds must be >= 0, got {self.latency_seconds}",
        )
        _require(
            self.bandwidth_bytes_per_second > 0,
            "bandwidth_bytes_per_second must be > 0, got "
            f"{self.bandwidth_bytes_per_second}",
        )

    def transfer_cost(self, payload_bytes: int) -> float:
        """Simulated cost in seconds of sending ``payload_bytes`` once."""
        if not self.enabled:
            return 0.0
        return self.latency_seconds + payload_bytes / self.bandwidth_bytes_per_second


@dataclass(frozen=True)
class SMCConfig:
    """Cost model for the simulated secure multiparty computation layer.

    The per-element costs are deliberately large relative to plain messages:
    secret-sharing one value requires one share per party plus interactive
    rounds, which is what makes row-sharing under SMC so expensive in the
    paper's Figure 1.
    """

    share_cost_seconds: float = 2e-4
    reconstruct_cost_seconds: float = 2e-4
    secure_addition_cost_seconds: float = 1e-6
    secure_comparison_cost_seconds: float = 1e-3
    bytes_per_share: int = 32
    field_bits: int = 61
    fixed_point_fraction_bits: int = 20

    def __post_init__(self) -> None:
        for name in (
            "share_cost_seconds",
            "reconstruct_cost_seconds",
            "secure_addition_cost_seconds",
            "secure_comparison_cost_seconds",
        ):
            _require(getattr(self, name) >= 0, f"{name} must be >= 0")
        _require(self.bytes_per_share > 0, "bytes_per_share must be > 0")
        _require(8 <= self.field_bits <= 63, "field_bits must be in [8, 63]")
        _require(
            0 <= self.fixed_point_fraction_bits < self.field_bits,
            "fixed_point_fraction_bits must be in [0, field_bits)",
        )


@dataclass(frozen=True)
class ParallelismConfig:
    """Aggregator-side fan-out across providers during batch execution.

    When enabled, the aggregator dispatches the per-provider batch phases
    (summary preparation and local answering) to a worker pool.  Each provider
    owns its own RNG derivation tree, so results are bit-identical with and
    without parallelism; only wall-clock changes.

    Attributes
    ----------
    enabled:
        Master switch; disabled means strictly sequential fan-out.
    max_workers:
        Pool size cap (``None`` means one worker per provider).
    backend:
        ``"thread"`` (default) runs the per-provider phases on a thread
        pool inside the aggregator process — cheap, but mask/reduction
        kernels still contend for the GIL between numpy calls.
        ``"process"`` hosts each provider in a persistent worker process:
        the provider's column buffers are exported once into
        :mod:`multiprocessing.shared_memory` and only the compact protocol
        messages cross process boundaries per batch, so multi-provider
        federations scale past the GIL.  Both backends are bit-identical
        to sequential execution under the same seed.
    injected_faults:
        Optional :class:`~repro.testing.faults.FaultSchedule` of scripted
        failures (chaos testing).  ``None`` — the default — injects
        nothing and leaves every hot path untouched.  With a schedule
        installed, the owning aggregator consumes it deterministically:
        the same schedule and system seed replay the same failure trace
        bit-identically on every backend.
    """

    enabled: bool = False
    max_workers: int | None = None
    backend: str = "thread"
    injected_faults: FaultSchedule | None = None

    def __post_init__(self) -> None:
        if self.max_workers is not None:
            _require(
                self.max_workers >= 1,
                f"max_workers must be >= 1, got {self.max_workers}",
            )
        _require(
            self.backend in ("thread", "process"),
            f'backend must be "thread" or "process", got {self.backend!r}',
        )
        if self.injected_faults is not None:
            _require(
                isinstance(self.injected_faults, FaultSchedule),
                "injected_faults must be a FaultSchedule or None, got "
                f"{type(self.injected_faults).__name__}",
            )

    def with_faults(self, injected_faults: FaultSchedule | None) -> "ParallelismConfig":
        """Return a copy with a different (or no) fault schedule."""
        return replace(self, injected_faults=injected_faults)

    def resolve_workers(self, num_providers: int) -> int:
        """Number of pool workers to use for ``num_providers`` providers."""
        if self.max_workers is None:
            return max(1, num_providers)
        return max(1, min(self.max_workers, num_providers))


@dataclass(frozen=True)
class ResilienceConfig:
    """Graceful-degradation policy of the federated drain path.

    Disabled (the default), any provider failure fails the whole batch
    exactly as before — the seed behaviour.  Enabled, the aggregator
    retries failed provider phase calls with bounded backoff, respawns
    dead process-pool workers from their existing shared-memory blocks,
    quarantines providers that keep failing, and settles the batch with
    **partial** answers: the per-query results carry ``degraded`` /
    ``providers_missing`` and are charged exactly what the surviving (and
    partially-released) providers actually spent.

    Attributes
    ----------
    enabled:
        Master switch for graceful degradation.
    provider_timeout_seconds:
        How long the process backend waits for one provider's phase reply
        before declaring the worker hung and killing it (``None`` waits
        forever — hangs then behave like the seed).  Serial and thread
        backends cannot preempt an in-process provider; injected hangs
        are accounted as immediate timeouts there.
    max_retries:
        Failed phase calls per provider and batch retried at most this
        many times (0 disables retry).
    retry_backoff_seconds:
        Sleep before the first retry, doubling per further retry
        (0 retries immediately — the right setting for tests).
    quarantine_after:
        Consecutive failed *batches* after which a provider is
        quarantined — skipped outright (reported missing) by later
        batches until :meth:`~repro.federation.aggregator.Aggregator.reinstate`.
        ``None`` never quarantines.
    respawn_workers:
        Whether the process pool may respawn a dead worker from the
        provider's existing shared-memory blocks (RNG checkpoint +
        summary replay keep the respawn bit-identical).
    min_providers:
        Fewest surviving providers a batch may settle with; fewer fails
        the batch (and the drain) outright.
    """

    enabled: bool = False
    provider_timeout_seconds: float | None = 30.0
    max_retries: int = 1
    retry_backoff_seconds: float = 0.0
    quarantine_after: int | None = 3
    respawn_workers: bool = True
    min_providers: int = 1

    def __post_init__(self) -> None:
        if self.provider_timeout_seconds is not None:
            _require(
                self.provider_timeout_seconds > 0,
                "provider_timeout_seconds must be > 0 or None, got "
                f"{self.provider_timeout_seconds}",
            )
        _require(self.max_retries >= 0, f"max_retries must be >= 0, got {self.max_retries}")
        _require(
            self.retry_backoff_seconds >= 0,
            f"retry_backoff_seconds must be >= 0, got {self.retry_backoff_seconds}",
        )
        if self.quarantine_after is not None:
            _require(
                self.quarantine_after >= 1,
                f"quarantine_after must be >= 1, got {self.quarantine_after}",
            )
        _require(
            self.min_providers >= 1,
            f"min_providers must be >= 1, got {self.min_providers}",
        )

    def with_enabled(self, enabled: bool = True) -> "ResilienceConfig":
        """Return a copy with degradation switched on or off."""
        return replace(self, enabled=enabled)


@dataclass(frozen=True)
class ExecutionConfig:
    """Kernel-level policy of the exact execution engine.

    Controls how the vectorised ``Q(C)`` kernels of
    :class:`~repro.storage.layout.ClusterLayout` evaluate a batch.  Every
    combination of switches returns bit-identical values (integer sums are
    exact under reordering); the knobs trade work and peak memory only.

    Attributes
    ----------
    prune:
        Intersect query bounds with the per-cluster zone maps first: clusters
        that cannot overlap a query are skipped outright and clusters fully
        inside a query's box short-circuit to their precomputed segment sum —
        no row is touched in either case.  Only straddling (partially
        overlapping) clusters fall back to row evaluation.
    sorted_bisect:
        For clusters whose rows are sorted on a dimension and whose only
        straddling dimension is that one, answer with two binary searches
        over the sorted column plus a measure prefix-sum difference —
        ``O(log rows)`` instead of a row scan.
    max_kernel_bytes:
        Peak-temporary budget of the row-evaluation kernels.  Batches whose
        dense intermediates would exceed it are evaluated tile by tile
        (query blocks × segment-aligned row chunks).  ``None`` disables
        tiling.  A single (query, cluster) pair is never split, so the hard
        peak is ``max(max_kernel_bytes, bytes_per_row * largest_cluster)``.
    kernel_backend:
        Implementation tier of the straddler row kernels.  ``"auto"``
        (default) uses the compiled numba kernels when numba is importable
        and the pure-NumPy kernels otherwise; ``"numpy"`` forces the
        reference path; ``"numba"`` requests the compiled path and falls
        back to NumPy with a one-time :class:`RuntimeWarning` (reason
        recorded in the kernel telemetry) when numba is missing.  Backends
        are bit-identical — only throughput changes.
    """

    prune: bool = True
    sorted_bisect: bool = True
    max_kernel_bytes: int | None = 64 * 2**20
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.max_kernel_bytes is not None:
            _require(
                self.max_kernel_bytes >= 4096,
                f"max_kernel_bytes must be >= 4096, got {self.max_kernel_bytes}",
            )
        _require(
            self.kernel_backend in ("auto", "numpy", "numba"),
            'kernel_backend must be "auto", "numpy" or "numba", '
            f"got {self.kernel_backend!r}",
        )

    @classmethod
    def dense(cls) -> "ExecutionConfig":
        """The reference engine: dense evaluation, no pruning, no tiling."""
        return cls(prune=False, sorted_bisect=False, max_kernel_bytes=None)

    def with_max_kernel_bytes(self, max_kernel_bytes: int | None) -> "ExecutionConfig":
        """Return a copy with a different kernel memory budget."""
        return replace(self, max_kernel_bytes=max_kernel_bytes)

    def with_kernel_backend(self, kernel_backend: str) -> "ExecutionConfig":
        """Return a copy with a different kernel backend selection."""
        return replace(self, kernel_backend=kernel_backend)


@dataclass(frozen=True)
class CacheConfig:
    """Cross-query summary-cache policy (see :mod:`repro.cache`).

    Every data provider owns a :class:`~repro.cache.store.ReleaseCache` that
    memoizes its *released* DP artifacts — the noisy allocation summaries and
    the noisy local estimates.  Re-serving a released value is differential
    privacy post-processing, so a cache hit consumes **no** privacy budget
    and skips the sampling / cluster-scan work entirely.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled by default: with the cache off the engine
        is bit-identical to the plain batched protocol under the same seed.
    max_entries:
        Capacity per provider cache; the least recently used entry is
        evicted beyond it.
    ttl_rounds:
        Optional time-to-live measured in protocol rounds (one summary
        phase = one round).  ``None`` means entries never expire by age;
        layout changes still invalidate them via the epoch check.
    min_epsilon:
        Epsilon-aware admission floor: releases whose phase budget is below
        this are not admitted (their reuse value rarely justifies pinning a
        very noisy release).  The cache *key* additionally embeds the exact
        per-phase epsilons, so a hit is only ever served at precisely the
        budget of the original release.
    """

    enabled: bool = False
    max_entries: int = 4096
    ttl_rounds: int | None = None
    min_epsilon: float = 0.0

    def __post_init__(self) -> None:
        _require(self.max_entries >= 1, f"max_entries must be >= 1, got {self.max_entries}")
        if self.ttl_rounds is not None:
            _require(
                self.ttl_rounds >= 1, f"ttl_rounds must be >= 1, got {self.ttl_rounds}"
            )
        _require(
            self.min_epsilon >= 0, f"min_epsilon must be >= 0, got {self.min_epsilon}"
        )

    def with_enabled(self, enabled: bool = True) -> "CacheConfig":
        """Return a copy with the cache switched on or off."""
        return replace(self, enabled=enabled)


@dataclass(frozen=True)
class ServiceConfig:
    """Multi-tenant serving-layer policy (see :mod:`repro.service`).

    Controls how the :class:`~repro.service.scheduler.SessionScheduler`
    multiplexes per-tenant submissions onto the batched engine.

    Attributes
    ----------
    max_batch_size:
        Upper bound on the number of queries coalesced into one shared
        :class:`~repro.query.batch.QueryBatch`.  Larger batches amortise the
        metadata pass and provider round-trips over more tenants; the cap
        bounds per-batch latency and peak kernel footprint.
    max_pending:
        Bound of the submission queue.  Applies separately to the admitted
        pending queue and to the deferred park, so parked never-affordable
        work cannot starve other tenants' admissible submissions.  A full
        queue makes ``submit`` raise
        :class:`~repro.errors.ServiceOverloadedError` — load-shedding
        backpressure instead of unbounded memory growth.
    max_in_flight_batches:
        Depth of the dispatch pipeline: how many coalesced batches may be
        queued on the dispatcher worker at once.  Batch *execution* is FIFO
        on that single worker (the federation's providers are a shared,
        stateful resource; intra-batch parallelism comes from
        :class:`ParallelismConfig`); the look-ahead lets settlement —
        wallet charging and answer routing — of completed batches overlap
        the execution of later ones.
    admission:
        What to do with a submission whose priced upper bound does not fit
        the tenant's remaining budget: ``"reject"`` raises
        :class:`~repro.errors.AdmissionError` at submit time; ``"defer"``
        parks the submission and re-prices it on later drains (a workload
        can become affordable once its predicates are served by the release
        caches — with the caches disabled the price can never drop, so
        unaffordable work is rejected even under ``"defer"``).
    max_pending_ingest:
        Bound of the ingest request queue
        (:meth:`~repro.service.scheduler.SessionScheduler.submit_ingest`).
        A full queue raises :class:`~repro.errors.ServiceOverloadedError`,
        the same load-shedding backpressure the query queues apply —
        ingest bursts cannot grow memory without bound while drains lag.
    compute_exact:
        Also run the exact plain-text baselines for served queries (off by
        default: serving traffic wants throughput, not error measurement).
    drain_time_budget_ms:
        Per-chunk latency SLO for time-budgeted autopartitioning.  When set,
        a drain packs its coalesced workload greedily by the cost model's
        per-query estimates so no chunk's predicted wall-clock exceeds the
        budget (``max_batch_size`` stays a hard cap on top); answers settle
        at chunk granularity, so one expensive low-selectivity query no
        longer drags a whole fixed-size chunk of cheap ones with it.  The
        default ``None`` keeps count-only chunking — bit-for-bit today's
        behavior.
    max_queries_per_drain:
        Per-drain admission cap in queries.  When set, a drain admits at
        most this many queries (whole submissions; the last admitted
        submission may overshoot) in weighted-fair order and leaves the
        rest pending for later drains — bounded drains are what make tenant
        priorities meaningful.  ``None`` (default) drains everything.
    starvation_limit:
        Hard bound ``K`` on queueing fairness: a submission passed over by
        ``K - 1`` consecutive drains is force-admitted ahead of everything
        else on the next one, whatever its tenant's priority or deficit —
        every submission drains within ``K`` drains of being admitted.
    overlap_phases:
        Dispatch each chunk as two pipelined work items (summary+allocation,
        then answering) and run result combination on the settling thread,
        so the summary phase of chunk ``i+1`` executes on the dispatcher
        while chunk ``i`` combines and settles.  Answers are bit-identical
        to the serial path (per-tenant noise streams are keyed, not
        positional).  Off by default: the serial path routes through
        :meth:`~repro.core.system.FederatedAQPSystem.execute_batch`
        unchanged.
    """

    max_batch_size: int = 64
    max_pending: int = 1024
    max_in_flight_batches: int = 2
    admission: str = "reject"
    max_pending_ingest: int = 256
    compute_exact: bool = False
    drain_time_budget_ms: float | None = None
    max_queries_per_drain: int | None = None
    starvation_limit: int = 8
    overlap_phases: bool = False

    def __post_init__(self) -> None:
        _require(
            self.max_batch_size >= 1,
            f"max_batch_size must be >= 1, got {self.max_batch_size}",
        )
        _require(
            self.max_pending >= 1, f"max_pending must be >= 1, got {self.max_pending}"
        )
        _require(
            self.max_in_flight_batches >= 1,
            f"max_in_flight_batches must be >= 1, got {self.max_in_flight_batches}",
        )
        _require(
            self.admission in ("reject", "defer"),
            f'admission must be "reject" or "defer", got {self.admission!r}',
        )
        _require(
            self.max_pending_ingest >= 1,
            f"max_pending_ingest must be >= 1, got {self.max_pending_ingest}",
        )
        _require(
            self.drain_time_budget_ms is None or self.drain_time_budget_ms > 0,
            f"drain_time_budget_ms must be positive when set, "
            f"got {self.drain_time_budget_ms}",
        )
        _require(
            self.max_queries_per_drain is None or self.max_queries_per_drain >= 1,
            f"max_queries_per_drain must be >= 1 when set, "
            f"got {self.max_queries_per_drain}",
        )
        _require(
            self.starvation_limit >= 1,
            f"starvation_limit must be >= 1, got {self.starvation_limit}",
        )

    def with_admission(self, admission: str) -> "ServiceConfig":
        """Return a copy with a different admission policy."""
        return replace(self, admission=admission)

    def with_max_batch_size(self, max_batch_size: int) -> "ServiceConfig":
        """Return a copy with a different coalescing cap."""
        return replace(self, max_batch_size=max_batch_size)

    def with_drain_time_budget_ms(
        self, drain_time_budget_ms: float | None
    ) -> "ServiceConfig":
        """Return a copy with a different per-chunk latency SLO."""
        return replace(self, drain_time_budget_ms=drain_time_budget_ms)

    def with_overlap_phases(self, overlap_phases: bool = True) -> "ServiceConfig":
        """Return a copy with the phase-overlapped drain pipeline toggled."""
        return replace(self, overlap_phases=overlap_phases)


@dataclass(frozen=True)
class IngestConfig:
    """Streaming-ingestion policy (see :mod:`repro.ingest`).

    Every data provider owns a :class:`~repro.ingest.delta.DeltaStore` — an
    append buffer absorbing new rows while queries keep being answered from
    epoch-pinned snapshots.  A :class:`~repro.ingest.compaction.CompactionPolicy`
    built from this config decides when the buffered deltas are folded into
    the clustered layout (incrementally: only the affected tail clusters are
    re-clustered, the metadata index is patched in place, and only genuinely
    stale release-cache entries are purged).

    Attributes
    ----------
    auto_compact:
        Fold deltas automatically as soon as the thresholds below trip (and
        no per-query sessions are open).  Disabled, compaction only happens
        through an explicit :meth:`~repro.federation.provider.DataProvider.compact`.
    max_delta_rows:
        Compact once the delta buffer holds at least this many rows.
    max_delta_fraction:
        Optional second trigger: compact once the delta holds more than this
        fraction of the clustered rows (useful for small providers where an
        absolute row threshold would let the unclustered share grow
        unboundedly relative to the main table).
    """

    auto_compact: bool = True
    max_delta_rows: int = 4096
    max_delta_fraction: float | None = None

    def __post_init__(self) -> None:
        _require(
            self.max_delta_rows >= 1,
            f"max_delta_rows must be >= 1, got {self.max_delta_rows}",
        )
        if self.max_delta_fraction is not None:
            _require(
                0 < self.max_delta_fraction <= 1,
                f"max_delta_fraction must be in (0, 1], got {self.max_delta_fraction}",
            )

    def with_auto_compact(self, auto_compact: bool) -> "IngestConfig":
        """Return a copy with automatic compaction switched on or off."""
        return replace(self, auto_compact=auto_compact)

    def with_max_delta_rows(self, max_delta_rows: int) -> "IngestConfig":
        """Return a copy with a different row-count compaction trigger."""
        return replace(self, max_delta_rows=max_delta_rows)


@dataclass(frozen=True)
class TransportConfig:
    """How protocol messages travel between the aggregator and providers.

    Attributes
    ----------
    kind:
        ``"inprocess"`` (direct calls, the default), ``"loopback"`` (full
        serialize/frame/deserialize round trip without sockets), or
        ``"socket"`` (asyncio TCP on localhost with length-prefixed
        framing).  All three are bit-identical under a fixed seed; see
        :mod:`repro.federation.transport`.
    shard_workers:
        Target number of shards each logical provider's table is split
        into (:class:`~repro.federation.shard.ShardedProvider`); ``1``
        keeps the plain unsharded provider.  Sharded answers are
        bit-identical to unsharded ones for any value.
    max_frame_bytes:
        Per-frame size ceiling for the serializing transports; a frame
        announcing a larger payload is rejected with a typed
        :class:`~repro.errors.TransportError` instead of being buffered.
    connect_timeout_seconds:
        Socket-transport connection/startup timeout.  (Per-call timeouts
        come from :attr:`ResilienceConfig.provider_timeout_seconds`.)
    """

    kind: str = "inprocess"
    shard_workers: int = 1
    max_frame_bytes: int = 8 * 2**20
    connect_timeout_seconds: float = 5.0

    def __post_init__(self) -> None:
        _require(
            self.kind in ("inprocess", "loopback", "socket"),
            f"transport kind must be 'inprocess', 'loopback', or 'socket', "
            f"got {self.kind!r}",
        )
        _require(
            self.shard_workers >= 1,
            f"shard_workers must be >= 1, got {self.shard_workers}",
        )
        _require(
            self.max_frame_bytes >= 1024,
            f"max_frame_bytes must be >= 1024, got {self.max_frame_bytes}",
        )
        _require(
            self.connect_timeout_seconds > 0,
            f"connect_timeout_seconds must be > 0, got {self.connect_timeout_seconds}",
        )

    def with_kind(self, kind: str) -> "TransportConfig":
        """Return a copy using a different transport implementation."""
        return replace(self, kind=kind)

    def with_shard_workers(self, shard_workers: int) -> "TransportConfig":
        """Return a copy with a different per-provider shard target."""
        return replace(self, shard_workers=shard_workers)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing / metrics / budget-audit policy (see :mod:`repro.obs`).

    Attributes
    ----------
    enabled:
        Master switch.  Disabled (the default), the system carries no
        tracer and no audit ledger — every instrumentation hook
        short-circuits on one ``is None`` check, keeping answers, charges,
        and wire bytes bit-identical to the uninstrumented system.  The
        pull-based metrics registry exists either way (it reads existing
        stats objects only at snapshot time).
    trace_sample_rate:
        Fraction of traces kept, decided at trace start by a deterministic
        counter hash — **never** an RNG draw, so sampling can never shift
        a noise stream.  Descendant spans of an unsampled trace are
        skipped wholesale.
    ring_capacity:
        Maximum finished spans retained in the in-memory ring buffer;
        older spans fall off.
    """

    enabled: bool = False
    trace_sample_rate: float = 1.0
    ring_capacity: int = 65536

    def __post_init__(self) -> None:
        _require(
            0.0 <= self.trace_sample_rate <= 1.0,
            f"trace_sample_rate must be in [0, 1], got {self.trace_sample_rate}",
        )
        _require(
            self.ring_capacity >= 1,
            f"ring_capacity must be >= 1, got {self.ring_capacity}",
        )

    def with_enabled(self, enabled: bool = True) -> "ObservabilityConfig":
        """Return a copy with observability switched on or off."""
        return replace(self, enabled=enabled)

    def with_sample_rate(self, trace_sample_rate: float) -> "ObservabilityConfig":
        """Return a copy with a different head-sampling rate."""
        return replace(self, trace_sample_rate=trace_sample_rate)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration of the federated AQP system."""

    cluster_size: int = 1000
    num_providers: int = 4
    privacy: PrivacyConfig = field(default_factory=PrivacyConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    smc: SMCConfig = field(default_factory=SMCConfig)
    parallelism: ParallelismConfig = field(default_factory=ParallelismConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)
    transport: TransportConfig = field(default_factory=TransportConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    use_smc_for_result: bool = False
    seed: int | None = None

    def __post_init__(self) -> None:
        _require(self.cluster_size >= 1, f"cluster_size must be >= 1, got {self.cluster_size}")
        _require(self.num_providers >= 1, f"num_providers must be >= 1, got {self.num_providers}")
        if self.seed is not None:
            _require(self.seed >= 0, f"seed must be >= 0, got {self.seed}")
        _require(
            self.transport.kind == "inprocess"
            or not (self.parallelism.enabled and self.parallelism.backend == "process"),
            "a serializing transport cannot be combined with the process "
            "parallelism backend: the workers already hold the providers",
        )

    def with_privacy(self, privacy: PrivacyConfig) -> "SystemConfig":
        """Return a copy with a different privacy configuration."""
        return replace(self, privacy=privacy)

    def with_sampling(self, sampling: SamplingConfig) -> "SystemConfig":
        """Return a copy with a different sampling configuration."""
        return replace(self, sampling=sampling)

    def with_cache(self, cache: CacheConfig) -> "SystemConfig":
        """Return a copy with a different summary-cache policy."""
        return replace(self, cache=cache)

    def with_execution(self, execution: ExecutionConfig) -> "SystemConfig":
        """Return a copy with a different kernel execution policy."""
        return replace(self, execution=execution)

    def with_parallelism(self, parallelism: ParallelismConfig) -> "SystemConfig":
        """Return a copy with a different provider fan-out policy."""
        return replace(self, parallelism=parallelism)

    def with_resilience(self, resilience: ResilienceConfig) -> "SystemConfig":
        """Return a copy with a different graceful-degradation policy."""
        return replace(self, resilience=resilience)

    def with_service(self, service: ServiceConfig) -> "SystemConfig":
        """Return a copy with a different serving-layer policy."""
        return replace(self, service=service)

    def with_ingest(self, ingest: IngestConfig) -> "SystemConfig":
        """Return a copy with a different streaming-ingestion policy."""
        return replace(self, ingest=ingest)

    def with_transport(self, transport: TransportConfig) -> "SystemConfig":
        """Return a copy with a different provider-boundary transport."""
        return replace(self, transport=transport)

    def with_observability(
        self, observability: ObservabilityConfig
    ) -> "SystemConfig":
        """Return a copy with a different observability policy."""
        return replace(self, observability=observability)


DEFAULT_PRIVACY = PrivacyConfig()
DEFAULT_SAMPLING = SamplingConfig()
DEFAULT_NETWORK = NetworkConfig()
DEFAULT_SMC = SMCConfig()
DEFAULT_RESILIENCE = ResilienceConfig()
DEFAULT_EXECUTION = ExecutionConfig()
DENSE_EXECUTION = ExecutionConfig.dense()
DEFAULT_CACHE = CacheConfig()
DEFAULT_SERVICE = ServiceConfig()
DEFAULT_INGEST = IngestConfig()
DEFAULT_TRANSPORT = TransportConfig()
DEFAULT_OBSERVABILITY = ObservabilityConfig()
DEFAULT_SYSTEM = SystemConfig()
