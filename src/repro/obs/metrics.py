"""Pull-based metrics registry with a Prometheus text exporter.

The system already accumulates counters in per-layer stats dataclasses
(``NetworkStats``, ``CacheStats``, ``ServiceStats``, ``ResilienceStats``,
``ProcPoolStats``, ``KernelTelemetry``).  Rather than duplicating every
counter bump onto a second object, the registry **pulls**: each layer
registers a *group supplier* — typically ``lambda: stats.as_dict()`` — and
:meth:`MetricsRegistry.snapshot` reads them all at once.  Registration is
O(1) and the hot path never touches the registry, so an idle registry costs
nothing.

Push-style :class:`Counter` / :class:`Gauge` / :class:`Histogram`
instruments exist for values no stats object owns (trace counts, export
sizes); they are plain attribute bumps under no lock — slightly stale reads
under concurrency are fine for monitoring.

>>> registry = MetricsRegistry()
>>> registry.counter("queries_total").inc(3)
>>> registry.register_group("demo", lambda: {"hits": 2, "rate": 0.5})
>>> snap = registry.snapshot()
>>> snap["counters"]["queries_total"], snap["groups"]["demo"]["hits"]
(3, 2)
>>> print(registry.render_prometheus().splitlines()[0])
# TYPE repro_queries_total counter
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)
"""Default histogram bucket upper bounds, in seconds."""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics."""

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last bucket is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def as_dict(self) -> dict[str, float]:
        """Summary form: count, sum, and per-bucket cumulative counts."""
        out: dict[str, float] = {"count": self.count, "sum": self.total}
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            out[f"le_{bound}"] = running
        return out


class MetricsRegistry:
    """Named instruments plus pull-based groups over existing stats objects."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._groups: dict[str, Callable[[], Mapping[str, object]]] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the named histogram."""
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name, buckets))

    def register_group(
        self, name: str, supplier: Callable[[], Mapping[str, object]]
    ) -> None:
        """Attach a stats supplier (usually ``lambda: stats.as_dict()``).

        Re-registering a name replaces the supplier — a rebuilt layer
        (e.g. a respawned process pool) just registers again.
        """
        with self._lock:
            self._groups[name] = supplier

    def snapshot(self) -> dict:
        """Read every instrument and group into one JSON-able dict.

        A group supplier that raises is reported under ``"error"`` instead
        of failing the whole snapshot — monitoring must not take the
        system down.
        """
        with self._lock:
            counters = {name: metric.value for name, metric in self._counters.items()}
            gauges = {name: metric.value for name, metric in self._gauges.items()}
            histograms = {
                name: metric.as_dict() for name, metric in self._histograms.items()
            }
            groups = dict(self._groups)
        group_values: dict[str, dict] = {}
        for name, supplier in groups.items():
            try:
                group_values[name] = dict(supplier())
            except Exception as error:  # noqa: BLE001 - monitoring must not raise
                group_values[name] = {"error": repr(error)}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "groups": group_values,
        }

    def render_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format.

        Metric names are prefixed ``repro_`` and sanitised; group entries
        become ``repro_<group>_<key>`` gauges.  Non-numeric group values
        (backend names, fallback reasons) are skipped — Prometheus carries
        numbers only.
        """
        snapshot = self.snapshot()
        lines: list[str] = []

        def emit(name: str, kind: str, value: float) -> None:
            metric = "repro_" + _NAME_SANITIZER.sub("_", name)
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {value}")

        for name, value in sorted(snapshot["counters"].items()):
            emit(name, "counter", value)
        for name, value in sorted(snapshot["gauges"].items()):
            emit(name, "gauge", value)
        for name, summary in sorted(snapshot["histograms"].items()):
            metric = "repro_" + _NAME_SANITIZER.sub("_", name)
            lines.append(f"# TYPE {metric} histogram")
            for key, value in summary.items():
                if key.startswith("le_"):
                    lines.append(f'{metric}_bucket{{le="{key[3:]}"}} {value}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {summary["count"]}')
            lines.append(f"{metric}_sum {summary['sum']}")
            lines.append(f"{metric}_count {summary['count']}")
        for group, values in sorted(snapshot["groups"].items()):
            for key, value in sorted(values.items()):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                if isinstance(value, float) and not math.isfinite(value):
                    continue
                emit(f"{group}_{key}", "gauge", value)
        return "\n".join(lines) + "\n"
