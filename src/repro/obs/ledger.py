"""Append-only DP budget audit ledger, reconcilable bit-for-bit.

Every movement of privacy budget through an audited
:class:`~repro.core.accounting.EndUserBudget` lands here as one
:class:`LedgerEvent`:

* ``"reserve"`` — an admission-time hold (the priced upper bound),
* ``"release"`` — a hold coming off (settlement or abort); the recorded
  amounts are the **clamped actual deltas** the wallet applied, so replay
  matches the wallet's ``max(0, …)`` arithmetic exactly,
* ``"charge"`` — an accountant charge.  ``cache_reuse`` flags zero-cost
  charges (the query was served entirely from released artifacts);
  ``degraded`` flags charges settled by a degraded (partial-answer) drain.

Reconciliation is deliberately *bit-for-bit*, not approximate: charge
events replay through the exact
:meth:`~repro.dp.composition.PrivacySpend.__add__` left-fold the
:class:`~repro.dp.accountant.PrivacyAccountant` uses, and reservation
events replay the wallet's ``+=`` / ``max(0, -)`` ops in recorded order.
Because audit events are emitted at the same call sites, in the same
order, with the same floats as the state they mirror, any drift — a
missed event, a double charge, a leaked reservation — shows up as exact
inequality.

>>> from repro.core.accounting import EndUserBudget
>>> ledger = BudgetAuditLedger()
>>> wallet = EndUserBudget.create(total_epsilon=10.0, total_delta=1e-2)
>>> wallet.audit, wallet.audit_owner = ledger, "alice"
>>> wallet.reserve(2.0, 1e-3)
>>> wallet.charge_spends([(0.5, 1e-4, "q1")], enforce=False).epsilon
0.5
>>> wallet.release(2.0, 1e-3)
>>> [event.kind for event in ledger.events("alice")]
['reserve', 'charge', 'release']
>>> ledger.reconcile("alice", wallet).exact
True
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Iterable

from ..dp.composition import PrivacySpend

__all__ = ["LedgerEvent", "BudgetAuditLedger", "ReconciliationReport"]

EVENT_KINDS = ("reserve", "release", "charge")
"""Every event kind the ledger accepts, in lifecycle order."""


@dataclass(frozen=True)
class LedgerEvent:
    """One budget movement: who, what kind, and exactly how much."""

    seq: int
    owner: str
    kind: str
    epsilon: float
    delta: float
    label: str = ""
    cache_reuse: bool = False
    degraded: bool = False

    def as_dict(self) -> dict:
        """JSON-able form (for exports and trace artifacts)."""
        return {
            "seq": self.seq,
            "owner": self.owner,
            "kind": self.kind,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "label": self.label,
            "cache_reuse": self.cache_reuse,
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class ReconciliationReport:
    """Outcome of replaying one owner's events against wallet state."""

    owner: str
    charged: PrivacySpend
    accountant_spent: PrivacySpend
    reserved_epsilon: float
    reserved_delta: float
    wallet_reserved_epsilon: float
    wallet_reserved_delta: float
    events: int

    @property
    def charges_exact(self) -> bool:
        """Replayed charges equal the accountant's running total exactly."""
        return (
            self.charged.epsilon == self.accountant_spent.epsilon
            and self.charged.delta == self.accountant_spent.delta
        )

    @property
    def reservations_exact(self) -> bool:
        """Replayed reservations equal the wallet's live holds exactly."""
        return (
            self.reserved_epsilon == self.wallet_reserved_epsilon
            and self.reserved_delta == self.wallet_reserved_delta
        )

    @property
    def exact(self) -> bool:
        """Bit-for-bit agreement on both charges and reservations."""
        return self.charges_exact and self.reservations_exact


class BudgetAuditLedger:
    """Thread-safe append-only stream of :class:`LedgerEvent` records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[LedgerEvent] = []

    def record(
        self,
        owner: str,
        kind: str,
        epsilon: float,
        delta: float,
        *,
        label: str = "",
        cache_reuse: bool = False,
        degraded: bool = False,
    ) -> LedgerEvent:
        """Append one event and return it."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}, got {kind!r}")
        with self._lock:
            event = LedgerEvent(
                seq=len(self._events),
                owner=owner,
                kind=kind,
                epsilon=float(epsilon),
                delta=float(delta),
                label=label,
                cache_reuse=cache_reuse,
                degraded=degraded,
            )
            self._events.append(event)
        return event

    def events(self, owner: str | None = None) -> tuple[LedgerEvent, ...]:
        """Every recorded event (optionally one owner's), in append order."""
        with self._lock:
            events = tuple(self._events)
        if owner is None:
            return events
        return tuple(event for event in events if event.owner == owner)

    def owners(self) -> tuple[str, ...]:
        """Distinct owners in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events():
            seen.setdefault(event.owner, None)
        return tuple(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def export_jsonl(self, path=None) -> str:
        """Every event as one JSON object per line (optionally to a file)."""
        lines = "\n".join(json.dumps(event.as_dict()) for event in self.events())
        if lines:
            lines += "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(lines)
        return lines

    # -- reconciliation ----------------------------------------------------

    def replay_charges(self, events: Iterable[LedgerEvent]) -> PrivacySpend:
        """Left-fold charge events exactly as the accountant folds entries."""
        total = PrivacySpend.zero()
        for event in events:
            if event.kind == "charge":
                total = total + PrivacySpend(event.epsilon, event.delta)
        return total

    def replay_reservations(
        self, events: Iterable[LedgerEvent]
    ) -> tuple[float, float]:
        """Replay reserve/release ops with the wallet's exact arithmetic."""
        epsilon = delta = 0.0
        for event in events:
            if event.kind == "reserve":
                epsilon += event.epsilon
                delta += event.delta
            elif event.kind == "release":
                epsilon = max(0.0, epsilon - event.epsilon)
                delta = max(0.0, delta - event.delta)
        return epsilon, delta

    def reconcile(self, owner: str, wallet) -> ReconciliationReport:
        """Replay ``owner``'s events against an audited wallet's live state.

        ``wallet`` is an :class:`~repro.core.accounting.EndUserBudget`.
        The report's :attr:`~ReconciliationReport.exact` is the bit-for-bit
        verdict; the individual totals are kept for diagnostics.
        """
        events = self.events(owner)
        charged = self.replay_charges(events)
        reserved_epsilon, reserved_delta = self.replay_reservations(events)
        return ReconciliationReport(
            owner=owner,
            charged=charged,
            accountant_spent=wallet.accountant.spent,
            reserved_epsilon=reserved_epsilon,
            reserved_delta=reserved_delta,
            wallet_reserved_epsilon=wallet.reserved_epsilon,
            wallet_reserved_delta=wallet.reserved_delta,
            events=len(events),
        )
