"""Per-query distributed tracing with a deterministic, RNG-free sampler.

A :class:`Tracer` collects :class:`Span` records into a bounded in-memory
ring buffer.  Spans form trees under a per-submission (or per-batch) trace
id; the ``(trace_id, span_id)`` pair is the **span context** that crosses
component and process boundaries:

* the scheduler opens a root span per submission and stores its context on
  the submission;
* the aggregator stamps the context into every
  :class:`~repro.federation.messages.QueryRequest` (a plain tuple field, so
  the ``RAQP`` wire codec round-trips it untouched) and into the
  serializing transports' payloads, so the provider side of a socket
  transport parents its spans correctly;
* process-pool workers carry no tracer — they record finished spans with a
  :class:`SpanRecorder` and ship the plain dicts back in the reply payload,
  which the parent folds into its ring via :meth:`Tracer.absorb`.

Two properties keep tracing safe to enable on a DP system:

* **no randomness** — the head-based sampling decision is a multiplicative
  hash of a trace counter, never an RNG draw, so enabling tracing cannot
  shift any noise stream;
* **no hot-path work when disabled** — a disabled system has no tracer at
  all; every call site guards on ``tracer is None`` (or the module-level
  :func:`ambient_span`, a single global read) and the protocol messages
  carry ``trace_context=None``, leaving wire bytes bit-identical.

Wall-clock timestamps use ``time.time()`` (not ``perf_counter``) so spans
recorded in worker *processes* share the parent's clock and the waterfall
rendered by ``tools/trace_report.py`` lines up across process boundaries.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Tracer",
    "ambient_span",
    "ambient_tracer",
]

SpanContext = tuple[str, str]
"""``(trace_id, span_id)`` — the only state that crosses boundaries."""

_NOT_SAMPLED: SpanContext = ("", "")
"""Sentinel context marking an active-but-unsampled trace: descendants see
it and skip span creation instead of starting spurious new traces."""

_CURRENT: ContextVar[SpanContext | None] = ContextVar("repro_obs_span", default=None)

_AMBIENT: "Tracer | None" = None


def ambient_tracer() -> "Tracer | None":
    """The process-wide tracer installed by the most recent enabled system."""
    return _AMBIENT


@contextmanager
def ambient_span(name: str, **tags) -> Iterator[SpanContext | None]:
    """Span on the ambient tracer; a cheap no-op when tracing is disabled.

    Used by layers that have no handle on the owning system (providers,
    the reuse planner) — one module-global read decides everything.
    """
    tracer = _AMBIENT
    if tracer is None:
        yield None
        return
    with tracer.span(name, **tags) as ctx:
        yield ctx


@dataclass
class Span:
    """One finished (or still-open) timed operation in a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float = 0.0
    tags: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    def as_dict(self) -> dict:
        """JSON-line form used by :meth:`Tracer.export_jsonl`."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "tags": dict(self.tags),
        }


def _hash_sampled(sequence: int, rate: float) -> bool:
    """Deterministic head-sampling decision for trace number ``sequence``.

    Knuth multiplicative hash mapped into [0, 1) — uniform enough for
    sampling, needs no RNG state, and replays identically run to run.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return ((sequence * 2654435761) & 0xFFFFFFFF) / 2**32 < rate


class Tracer:
    """Thread-safe span collector with a bounded ring buffer.

    Parameters
    ----------
    sample_rate:
        Fraction of traces kept, decided at trace start (head sampling);
        descendants of an unsampled trace are skipped wholesale.
    ring_capacity:
        Maximum finished spans retained; older spans fall off the ring.
    """

    def __init__(self, *, sample_rate: float = 1.0, ring_capacity: int = 65536) -> None:
        self._sample_rate = float(sample_rate)
        self._ring: deque[Span] = deque(maxlen=int(ring_capacity))
        self._open: dict[str, Span] = {}
        self._lock = threading.Lock()
        self._trace_seq = 0
        self._span_seq = 0
        self.traces_started = 0
        self.traces_sampled = 0

    # -- identifiers -------------------------------------------------------

    def _next_trace(self) -> tuple[str | None, bool]:
        with self._lock:
            self._trace_seq += 1
            sequence = self._trace_seq
            self.traces_started += 1
            sampled = _hash_sampled(sequence, self._sample_rate)
            if sampled:
                self.traces_sampled += 1
        return (f"t{sequence:06d}" if sampled else None, sampled)

    def _next_span_id(self) -> str:
        with self._lock:
            self._span_seq += 1
            return f"s{self._span_seq:06d}"

    # -- context -----------------------------------------------------------

    def context(self) -> SpanContext | None:
        """The current span context of this thread/task (``None`` outside)."""
        current = _CURRENT.get()
        if current is None or current == _NOT_SAMPLED:
            return None
        return current

    def activate_ambient(self) -> None:
        """Install this tracer as the process-wide ambient tracer."""
        global _AMBIENT
        _AMBIENT = self

    # -- span creation -----------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: SpanContext | None | str = "inherit",
        **tags,
    ) -> Iterator[SpanContext | None]:
        """Record one timed span; children inherit via contextvar or ``parent``.

        ``parent="inherit"`` (default) uses the calling context's span.
        An explicit ``parent=ctx`` pins the span under a context captured
        on another thread.  No active/sampled parent starts a **new
        trace** — the head-sampling decision happens here.
        """
        if parent == "inherit":
            parent = _CURRENT.get()
        if parent == _NOT_SAMPLED:
            yield None
            return
        if parent is None:
            trace_id, sampled = self._next_trace()
            if not sampled:
                token = _CURRENT.set(_NOT_SAMPLED)
                try:
                    yield None
                finally:
                    _CURRENT.reset(token)
                return
            parent_id = None
        else:
            trace_id, parent_id = parent
        span_id = self._next_span_id()
        context = (trace_id, span_id)
        record = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start=time.time(),
            tags=dict(tags),
        )
        token = _CURRENT.set(context)
        try:
            yield context
        except BaseException as error:
            record.tags.setdefault("error", type(error).__name__)
            raise
        finally:
            _CURRENT.reset(token)
            record.end = time.time()
            with self._lock:
                self._ring.append(record)

    def begin_trace(self, name: str, **tags) -> SpanContext | None:
        """Open a long-lived root span (e.g. one submission's lifetime).

        Returns its context for explicit parenting, or ``None`` when the
        trace was not sampled.  Close with :meth:`end_span`; an unfinished
        root is still exported (with ``end == 0``) so abandoned
        submissions remain visible in trace dumps.
        """
        trace_id, sampled = self._next_trace()
        if not sampled:
            return None
        span_id = self._next_span_id()
        record = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=None,
            name=name,
            start=time.time(),
            tags=dict(tags),
        )
        with self._lock:
            self._open[span_id] = record
        return (trace_id, span_id)

    def end_span(self, context: SpanContext | None, **tags) -> None:
        """Finish a span opened with :meth:`begin_trace` (idempotent)."""
        if context is None or context == _NOT_SAMPLED:
            return
        with self._lock:
            record = self._open.pop(context[1], None)
            if record is None:
                return
            record.end = time.time()
            record.tags.update(tags)
            self._ring.append(record)

    def absorb(self, records: Iterable[Mapping]) -> None:
        """Fold finished span dicts from a worker/remote into the ring."""
        spans = [
            Span(
                trace_id=str(record["trace_id"]),
                span_id=str(record["span_id"]),
                parent_id=record.get("parent_id"),
                name=str(record["name"]),
                start=float(record["start"]),
                end=float(record["end"]),
                tags=dict(record.get("tags") or {}),
            )
            for record in records
        ]
        with self._lock:
            self._ring.extend(spans)

    # -- export ------------------------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """Finished spans followed by still-open roots, in recording order."""
        with self._lock:
            return tuple(self._ring) + tuple(self._open.values())

    def export_jsonl(self, path=None) -> str:
        """Render every span as one JSON object per line (optionally to a file)."""
        lines = "\n".join(json.dumps(span.as_dict()) for span in self.spans())
        if lines:
            lines += "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(lines)
        return lines


class SpanRecorder:
    """Tracer stand-in for processes that cannot own the ring buffer.

    Process-pool workers record finished spans as plain dicts under a
    propagated parent context; the dicts travel back in the reply payload
    and the parent calls :meth:`Tracer.absorb`.  ``prefix`` keeps worker
    span ids globally unique (e.g. the provider id).
    """

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = 0
        self.records: list[dict] = []

    @contextmanager
    def span(
        self, name: str, parent: SpanContext | None, **tags
    ) -> Iterator[SpanContext | None]:
        """Record one span under ``parent``; no-op when ``parent`` is None."""
        if not parent or parent == _NOT_SAMPLED:
            yield None
            return
        self._counter += 1
        span_id = f"{self._prefix}:{self._counter}"
        start = time.time()
        try:
            yield (parent[0], span_id)
        finally:
            self.records.append(
                {
                    "trace_id": parent[0],
                    "span_id": span_id,
                    "parent_id": parent[1],
                    "name": name,
                    "start": start,
                    "end": time.time(),
                    "tags": dict(tags),
                }
            )
