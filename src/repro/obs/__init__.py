"""Unified observability: tracing, metrics, and the DP budget audit ledger.

The package bundles three independently usable pieces behind one
:class:`Observability` handle owned by
:class:`~repro.core.system.FederatedAQPSystem`:

* :mod:`repro.obs.trace` — per-submission distributed traces.  Spans cover
  admission, pricing, chunking, every protocol phase per provider (and per
  retry attempt), transport frames, and settlement; span context propagates
  through :class:`~repro.federation.messages.QueryRequest` envelopes and the
  serializing transports' payloads, so work executed behind a socket
  transport or inside a process-pool worker lands in the same trace.  Spans
  collect into an in-memory ring buffer exportable as JSON-lines.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry that
  *pulls* the existing per-layer stats objects (``NetworkStats``,
  ``CacheStats``, ``ServiceStats``, ``ResilienceStats``, ``ProcPoolStats``,
  ``KernelTelemetry``) through their uniform ``as_dict()`` instead of
  copying them, with a Prometheus text exporter.
* :mod:`repro.obs.ledger` — an append-only stream of every budget
  reservation, charge, and release (cache-reuse zero-charges and
  degraded-drain partial charges flagged), reconcilable bit-for-bit against
  :class:`~repro.core.accounting.EndUserBudget` / accountant state.

Everything is **disabled by default** (:class:`~repro.config.ObservabilityConfig`):
a disabled system carries ``tracer is None`` / ``ledger is None`` and every
hook short-circuits on that check, keeping answers, charges, and message
bytes bit-identical to the uninstrumented system.  Tracing draws no
randomness — trace sampling is a deterministic hash of a trace counter —
so enabling it never shifts a noise stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ObservabilityConfig
from .ledger import BudgetAuditLedger, LedgerEvent, ReconciliationReport
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, SpanRecorder, Tracer, ambient_span, ambient_tracer

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "SpanRecorder",
    "ambient_span",
    "ambient_tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "BudgetAuditLedger",
    "LedgerEvent",
    "ReconciliationReport",
]


@dataclass
class Observability:
    """One system's observability surface: tracer + metrics + audit ledger.

    Built from an :class:`~repro.config.ObservabilityConfig` via
    :meth:`from_config`.  The metrics registry always exists (it is
    pull-based, so registering suppliers costs nothing on the hot path);
    the tracer and the budget audit ledger exist only when the config is
    enabled, which is what lets every instrumentation site gate on a single
    ``is None`` check.
    """

    config: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    tracer: Tracer | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    ledger: BudgetAuditLedger | None = None

    @classmethod
    def from_config(cls, config: ObservabilityConfig) -> "Observability":
        """Build the bundle; enabled configs get a live tracer and ledger."""
        tracer = None
        ledger = None
        if config.enabled:
            tracer = Tracer(
                sample_rate=config.trace_sample_rate,
                ring_capacity=config.ring_capacity,
            )
            tracer.activate_ambient()
            ledger = BudgetAuditLedger()
        return cls(config=config, tracer=tracer, metrics=MetricsRegistry(), ledger=ledger)

    @property
    def enabled(self) -> bool:
        """Whether tracing and ledger auditing are live."""
        return self.tracer is not None

    def snapshot(self) -> dict:
        """One JSON-able dict over every registered metric, trace, and event."""
        out = {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
        }
        if self.tracer is not None:
            out["traces"] = {
                "started": self.tracer.traces_started,
                "sampled": self.tracer.traces_sampled,
                "spans": len(self.tracer.spans()),
            }
        if self.ledger is not None:
            out["ledger"] = {
                "events": len(self.ledger),
                "owners": sorted(self.ledger.owners()),
            }
        return out
