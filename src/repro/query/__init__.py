"""Range-query model, SQL-like parser, batches, and exact executor."""

from .batch import QueryBatch
from .executor import ExactExecutor, execute_on_cluster, execute_on_clusters, execute_on_table
from .model import Aggregation, Interval, RangeQuery
from .parser import parse_query

__all__ = [
    "Aggregation",
    "Interval",
    "RangeQuery",
    "QueryBatch",
    "parse_query",
    "ExactExecutor",
    "execute_on_table",
    "execute_on_cluster",
    "execute_on_clusters",
]
