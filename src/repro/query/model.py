"""Range-query model.

A :class:`RangeQuery` is the paper's
``SELECT Aggregation FROM Table WHERE Range``: an aggregation (``COUNT(*)``
or ``SUM(Measure)``) plus one inclusive interval per queried dimension
(Section 3, "Queries").
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Mapping

from ..errors import QueryError
from ..storage.schema import Schema

__all__ = ["Aggregation", "Interval", "RangeQuery"]

_MEASURE_NAME_RE = re.compile(r"\w+")


class Aggregation(enum.Enum):
    """Supported aggregation functions."""

    COUNT = "count"
    SUM = "sum"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Interval:
    """An inclusive integer interval ``[low, high]`` on one dimension."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(f"interval low ({self.low}) must be <= high ({self.high})")

    @property
    def width(self) -> int:
        """Number of integer values covered by the interval."""
        return self.high - self.low + 1

    def contains(self, value: int) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def intersects(self, other: "Interval") -> bool:
        """True when the two intervals share at least one value."""
        return self.low <= other.high and other.low <= self.high

    def as_tuple(self) -> tuple[int, int]:
        """The interval as a ``(low, high)`` tuple."""
        return (self.low, self.high)


@dataclass(frozen=True)
class RangeQuery:
    """A multidimensional range aggregation query.

    Attributes
    ----------
    aggregation:
        ``COUNT`` (counts represented individuals, i.e. sums the measure on
        count tensors) or ``SUM`` (sums the measure column explicitly).
    ranges:
        Mapping from dimension name to its inclusive interval.  Dimensions not
        mentioned are unconstrained.
    measure:
        Name of the summed column as written in the SQL text.  Tables carry a
        single measure, so the name is presentational: it round-trips through
        :meth:`to_sql` / :func:`repro.query.parser.parse_query` but does not
        change what is computed.  Normalised to ``"measure"`` for SUM queries
        and ``None`` for COUNT queries.
    """

    aggregation: Aggregation
    ranges: Mapping[str, Interval]
    measure: str | None = None

    def __post_init__(self) -> None:
        if not self.ranges:
            raise QueryError("a range query must constrain at least one dimension")
        object.__setattr__(self, "ranges", _normalise_ranges(self.ranges))
        if self.aggregation is Aggregation.SUM:
            measure = self.measure or "measure"
            if not _MEASURE_NAME_RE.fullmatch(measure):
                raise QueryError(f"invalid measure column name: {self.measure!r}")
            object.__setattr__(self, "measure", measure)
        else:
            object.__setattr__(self, "measure", None)

    # -- constructors -----------------------------------------------------

    @classmethod
    def count(cls, ranges: Mapping[str, tuple[int, int] | Interval]) -> "RangeQuery":
        """Build a COUNT query from ``{dimension: (low, high)}``."""
        return cls(Aggregation.COUNT, _normalise_ranges(ranges))

    @classmethod
    def sum(
        cls,
        ranges: Mapping[str, tuple[int, int] | Interval],
        *,
        measure: str | None = None,
    ) -> "RangeQuery":
        """Build a SUM(Measure) query from ``{dimension: (low, high)}``."""
        return cls(Aggregation.SUM, _normalise_ranges(ranges), measure=measure)

    # -- accessors ---------------------------------------------------------

    @property
    def dimensions(self) -> tuple[str, ...]:
        """Names of the constrained dimensions (``D^Q``)."""
        return tuple(self.ranges)

    @property
    def num_dimensions(self) -> int:
        """Number of constrained dimensions."""
        return len(self.ranges)

    def range_tuples(self) -> dict[str, tuple[int, int]]:
        """Ranges as plain ``(low, high)`` tuples (metadata-friendly form)."""
        return {name: interval.as_tuple() for name, interval in self.ranges.items()}

    def validate_against(self, schema: Schema) -> None:
        """Raise :class:`QueryError` if the query does not fit ``schema``."""
        for name, interval in self.ranges.items():
            if name not in schema:
                raise QueryError(
                    f"query constrains unknown dimension {name!r}; "
                    f"schema has {list(schema.dimension_names)}"
                )
            dimension = schema.dimension(name)
            if interval.high < dimension.low or interval.low > dimension.high:
                raise QueryError(
                    f"range {interval.as_tuple()} on {name!r} is disjoint from the "
                    f"domain [{dimension.low}, {dimension.high}]"
                )
        if self.aggregation is Aggregation.SUM and not schema.has_measure:
            # SUM(Measure) on a raw table degenerates to COUNT; we allow it but
            # the executor treats the implicit measure as 1 per row.
            return

    def clipped_to(self, schema: Schema) -> "RangeQuery":
        """Return a copy with every interval clipped into the schema domain.

        Returns ``self`` unchanged when every interval already lies inside
        the domain (the common case on generated workloads), so the hot path
        pays no object construction.
        """
        needs_clipping = False
        for name, interval in self.ranges.items():
            dimension = schema.dimension(name)
            if interval.low < dimension.low or interval.high > dimension.high:
                needs_clipping = True
                break
        if not needs_clipping:
            return self
        clipped: dict[str, Interval] = {}
        for name, interval in self.ranges.items():
            dimension = schema.dimension(name)
            clipped[name] = Interval(
                max(interval.low, dimension.low), min(interval.high, dimension.high)
            )
        return RangeQuery(self.aggregation, clipped, measure=self.measure)

    def to_sql(self, table_name: str = "T") -> str:
        """Render the query as the SQL text form used in the paper."""
        select = (
            "COUNT(*)" if self.aggregation is Aggregation.COUNT else f"SUM({self.measure})"
        )
        predicates = [
            f"{interval.low} <= {name} AND {name} <= {interval.high}"
            for name, interval in self.ranges.items()
        ]
        return f"SELECT {select} FROM {table_name} WHERE " + " AND ".join(predicates)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_sql()


def _normalise_ranges(
    ranges: Mapping[str, tuple[int, int] | Interval],
) -> dict[str, Interval]:
    normalised: dict[str, Interval] = {}
    for name, value in ranges.items():
        if isinstance(value, Interval):
            normalised[name] = value
        else:
            low, high = value
            normalised[name] = Interval(int(low), int(high))
    return normalised
