"""Query batches: the unit of work of the vectorised execution engine.

A :class:`QueryBatch` wraps an ordered sequence of :class:`RangeQuery` and
precomputes the array form the vectorised kernels consume: per-dimension
``(lows, highs)`` bound vectors with open sentinel bounds for queries that do
not constrain a dimension.  Everything downstream — covering-set
identification, proportion lookup, and exact per-cluster evaluation — runs
once per batch instead of once per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import QueryError
from ..storage.schema import Schema
from .model import RangeQuery

__all__ = ["QueryBatch"]


@dataclass(frozen=True)
class QueryBatch:
    """An immutable ordered batch of range queries."""

    queries: tuple[RangeQuery, ...]

    def __post_init__(self) -> None:
        if not self.queries:
            raise QueryError("a query batch must contain at least one query")
        object.__setattr__(self, "queries", tuple(self.queries))

    @classmethod
    def coerce(cls, queries: "QueryBatch" | Sequence[RangeQuery]) -> "QueryBatch":
        """Normalise a batch-or-sequence into a :class:`QueryBatch`."""
        if isinstance(queries, cls):
            return queries
        return cls(tuple(queries))

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[RangeQuery]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> RangeQuery:
        return self.queries[index]

    # -- schema plumbing ---------------------------------------------------

    def validate_against(self, schema: Schema) -> None:
        """Validate every query of the batch against ``schema``."""
        for query in self.queries:
            query.validate_against(schema)

    def clipped_to(self, schema: Schema) -> "QueryBatch":
        """Batch with every query's intervals clipped into the schema domain."""
        return QueryBatch(tuple(query.clipped_to(schema) for query in self.queries))

    def range_tuples_list(self) -> list[dict[str, tuple[int, int]]]:
        """Per-query plain ``{dimension: (low, high)}`` mappings."""
        return [query.range_tuples() for query in self.queries]

    def chunked(self, size: int) -> Iterator["QueryBatch"]:
        """Split the batch into consecutive sub-batches of at most ``size``.

        The multi-tenant scheduler coalesces pending submissions into one
        long canonical sequence and then chunks it to the configured
        ``max_batch_size``; order is preserved, every query appears exactly
        once, and the last chunk may be short.
        """
        if size < 1:
            raise QueryError(f"chunk size must be >= 1, got {size}")
        for start in range(0, len(self.queries), size):
            yield QueryBatch(self.queries[start : start + size])

    # -- vectorised form ---------------------------------------------------

    @property
    def constrained_dimensions(self) -> tuple[str, ...]:
        """Dimensions constrained by at least one query (first-seen order)."""
        seen: dict[str, None] = {}
        for query in self.queries:
            for name in query.ranges:
                seen.setdefault(name, None)
        return tuple(seen)

    def bounds(
        self, open_low: int, open_high: int
    ) -> Mapping[str, tuple[np.ndarray, np.ndarray]]:
        """Per-dimension ``(lows, highs)`` bound vectors over the batch.

        Queries that do not constrain a dimension get the open sentinel
        bounds, which keep every row selected on that dimension — the exact
        semantics of the scalar executor skipping the dimension.
        """
        result: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name in self.constrained_dimensions:
            lows = np.full(len(self.queries), open_low, dtype=np.int64)
            highs = np.full(len(self.queries), open_high, dtype=np.int64)
            for index, query in enumerate(self.queries):
                interval = query.ranges.get(name)
                if interval is not None:
                    lows[index] = interval.low
                    highs[index] = interval.high
            result[name] = (lows, highs)
        return result
