"""A tiny SQL-like parser for the paper's query form.

Accepted grammar (case-insensitive keywords)::

    SELECT COUNT(*) FROM <table> WHERE <predicates>
    SELECT SUM(<column>) FROM <table> WHERE <predicates>

where ``<predicates>`` is an ``AND``-separated list of range predicates on
dimensions, each in one of the forms::

    20 <= age AND age <= 40        -- two half-bounds
    20 <= age <= 40                -- chained comparison
    age BETWEEN 20 AND 40
    age >= 20 / age <= 40 / age = 30

Half-open predicates (only a lower or only an upper bound) are completed with
a very large sentinel bound and are expected to be clipped to the schema
domain by the caller (``RangeQuery.clipped_to``).
"""

from __future__ import annotations

import re

from ..errors import QueryParseError
from .model import Aggregation, Interval, RangeQuery

__all__ = ["parse_query"]

_UNBOUNDED_LOW = -(2**62)
_UNBOUNDED_HIGH = 2**62

_SELECT_RE = re.compile(
    r"^\s*select\s+(?P<agg>count\s*\(\s*\*\s*\)|sum\s*\(\s*(?P<measure>[\w]+)\s*\))\s+"
    r"from\s+(?P<table>[\w\.]+)\s+where\s+(?P<where>.+?)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_BETWEEN_RE = re.compile(
    r"^(?P<dim>\w+)\s+between\s+(?P<low>-?\d+)\s+and\s+(?P<high>-?\d+)$", re.IGNORECASE
)
_CHAIN_RE = re.compile(
    r"^(?P<low>-?\d+)\s*<=\s*(?P<dim>\w+)\s*<=\s*(?P<high>-?\d+)$"
)
_COMPARISON_RE = re.compile(
    r"^(?P<lhs>-?\d+|\w+)\s*(?P<op><=|>=|<|>|=)\s*(?P<rhs>-?\d+|\w+)$"
)


def parse_query(sql: str) -> tuple[RangeQuery, str]:
    """Parse ``sql`` into a :class:`RangeQuery` plus the referenced table name.

    Raises
    ------
    QueryParseError
        When the text does not match the supported grammar.
    """
    match = _SELECT_RE.match(sql)
    if match is None:
        raise QueryParseError(f"cannot parse query: {sql!r}")
    aggregation_text = re.sub(r"\s+", "", match.group("agg").lower())
    aggregation = Aggregation.COUNT if aggregation_text.startswith("count") else Aggregation.SUM
    measure = match.group("measure") if aggregation is Aggregation.SUM else None
    table_name = match.group("table")
    bounds = _parse_where(match.group("where"))
    ranges = {
        dim: Interval(low if low is not None else _UNBOUNDED_LOW,
                      high if high is not None else _UNBOUNDED_HIGH)
        for dim, (low, high) in bounds.items()
    }
    return RangeQuery(aggregation, ranges, measure=measure), table_name


def _split_top_level_and(where: str) -> list[str]:
    return [part.strip() for part in re.split(r"\band\b", where, flags=re.IGNORECASE) if part.strip()]


def _parse_where(where: str) -> dict[str, tuple[int | None, int | None]]:
    bounds: dict[str, tuple[int | None, int | None]] = {}

    def update(dim: str, low: int | None, high: int | None) -> None:
        current_low, current_high = bounds.get(dim, (None, None))
        if low is not None:
            current_low = low if current_low is None else max(current_low, low)
        if high is not None:
            current_high = high if current_high is None else min(current_high, high)
        bounds[dim] = (current_low, current_high)

    # BETWEEN predicates contain an AND, so extract them before splitting.
    remaining_parts: list[str] = []
    cursor = where
    while True:
        between = re.search(
            r"(\w+)\s+between\s+(-?\d+)\s+and\s+(-?\d+)", cursor, re.IGNORECASE
        )
        if between is None:
            remaining_parts.append(cursor)
            break
        remaining_parts.append(cursor[: between.start()])
        update(between.group(1), int(between.group(2)), int(between.group(3)))
        cursor = cursor[between.end():]

    for chunk in remaining_parts:
        for predicate in _split_top_level_and(chunk):
            _parse_predicate(predicate, update)
    if not bounds:
        raise QueryParseError(f"no range predicates found in WHERE clause: {where!r}")
    for dim, (low, high) in bounds.items():
        if low is not None and high is not None and low > high:
            raise QueryParseError(
                f"contradictory bounds for {dim!r}: low {low} > high {high}"
            )
    return bounds


def _parse_predicate(predicate: str, update) -> None:
    if not predicate:
        return
    between = _BETWEEN_RE.match(predicate)
    if between is not None:
        update(between.group("dim"), int(between.group("low")), int(between.group("high")))
        return
    chained = _CHAIN_RE.match(predicate)
    if chained is not None:
        update(chained.group("dim"), int(chained.group("low")), int(chained.group("high")))
        return
    comparison = _COMPARISON_RE.match(predicate)
    if comparison is None:
        raise QueryParseError(f"cannot parse predicate: {predicate!r}")
    lhs, op, rhs = comparison.group("lhs"), comparison.group("op"), comparison.group("rhs")
    lhs_is_number = re.fullmatch(r"-?\d+", lhs) is not None
    rhs_is_number = re.fullmatch(r"-?\d+", rhs) is not None
    if lhs_is_number == rhs_is_number:
        raise QueryParseError(
            f"predicate must compare a dimension with a constant: {predicate!r}"
        )
    if lhs_is_number:
        # Rewrite "20 <= age" as "age >= 20" by flipping the operator.
        flipped = {"<=": ">=", ">=": "<=", "<": ">", ">": "<", "=": "="}[op]
        lhs, rhs, op = rhs, lhs, flipped
    dim, value = lhs, int(rhs)
    if op == "=":
        update(dim, value, value)
    elif op == ">=":
        update(dim, value, None)
    elif op == ">":
        update(dim, value + 1, None)
    elif op == "<=":
        update(dim, None, value)
    elif op == "<":
        update(dim, None, value - 1)
