"""Exact execution of range queries over tables, clusters and clustered tables.

The exact path is both the non-private baseline the paper compares against
("normal computation" in the speed-up metric) and the per-cluster primitive
``Q(C)`` used inside the Hansen-Hurwitz estimator (Equation 3).

Semantics
---------
``COUNT(*)`` counts represented individuals: on a raw table that is the
number of matching rows, on a count tensor it is the sum of the ``Measure``
column over matching tensor rows — the two agree by construction of the
tensor.  ``SUM(Measure)`` is identical on tensors and degenerates to the row
count on raw tables (implicit measure of 1), matching the paper's usage where
both aggregations reduce to summing the measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config import ExecutionConfig
from ..storage.cluster import Cluster
from ..storage.clustered_table import ClusteredTable
from ..storage.metadata import MetadataStore
from ..storage.table import Table
from .batch import QueryBatch
from .model import RangeQuery

__all__ = [
    "selection_mask",
    "execute_on_table",
    "execute_on_cluster",
    "execute_on_clusters",
    "ExactExecutor",
    "ExactExecution",
]


def selection_mask(table: Table, query: RangeQuery) -> np.ndarray:
    """Boolean mask of the table rows matching every range predicate."""
    query.validate_against(table.schema)
    mask = np.ones(table.num_rows, dtype=bool)
    for name, interval in query.ranges.items():
        column = table.column(name)
        mask &= (column >= interval.low) & (column <= interval.high)
    return mask


def execute_on_table(table: Table, query: RangeQuery) -> int:
    """Exact answer of ``query`` on a single table (raw or tensor)."""
    mask = selection_mask(table, query)
    if not mask.any():
        return 0
    return int(table.measure_column()[mask].sum())


def execute_on_cluster(cluster: Cluster, query: RangeQuery) -> int:
    """Exact answer of ``query`` on one cluster (the paper's ``Q(C)``)."""
    return execute_on_table(cluster.rows, query)


def execute_on_clusters(clusters: Iterable[Cluster], query: RangeQuery) -> int:
    """Exact answer of ``query`` over a set of clusters (their union)."""
    return sum(execute_on_cluster(cluster, query) for cluster in clusters)


@dataclass(frozen=True)
class ExactExecution:
    """Result of an exact execution with work accounting.

    ``clusters_scanned`` and ``rows_scanned`` feed the deterministic
    work-ratio speed-up metric used alongside wall-clock time.
    """

    value: int
    clusters_scanned: int
    rows_scanned: int


class ExactExecutor:
    """Exact query execution over a clustered table, with optional pruning.

    With a :class:`~repro.storage.metadata.MetadataStore` the executor only
    scans clusters whose min/max bounds overlap the query (Equation 2), which
    is also what the "normal computation" baseline in the paper's speed-up
    metric does — the approximation's gain comes from sampling *within* the
    covering set, not from pruning alone.
    """

    def __init__(
        self,
        clustered: ClusteredTable,
        metadata: MetadataStore | None = None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        self._clustered = clustered
        self._metadata = metadata
        self._execution = execution

    @property
    def clustered_table(self) -> ClusteredTable:
        """The underlying clustered table."""
        return self._clustered

    def covering_clusters(self, query: RangeQuery) -> Sequence[Cluster]:
        """Clusters that may contain matching rows (``C^Q``)."""
        if self._metadata is None:
            return self._clustered.clusters
        ids = self._metadata.covering_cluster_ids(query.range_tuples())
        return self._clustered.subset(ids)

    def execute(self, query: RangeQuery) -> ExactExecution:
        """Exact answer plus work accounting over the covering clusters."""
        return self.execute_batch([query])[0]

    def execute_batch(
        self, queries: QueryBatch | Sequence[RangeQuery]
    ) -> list[ExactExecution]:
        """Exact answers for a whole workload in one vectorised pass.

        Covering sets for every query are identified with one batched pass
        over the metadata, then ``Q(C)`` for all needed (query, cluster) pairs
        is evaluated with boolean masks + segmented reduction over the
        contiguous cluster layout restricted to the union of covering
        clusters.  A batch of one therefore scans exactly the clusters the
        sequential per-cluster loop did.
        """
        batch = QueryBatch.coerce(queries)
        batch.validate_against(self._clustered.schema)
        layout = self._clustered.layout()
        if self._metadata is None:
            covering_positions = [
                np.arange(layout.num_clusters, dtype=np.int64) for _ in batch
            ]
        elif tuple(self._metadata.cluster_ids) == layout.cluster_ids:
            # Metadata and layout share the storage order (the always-true
            # case for provider-built executors), so the metadata's position
            # arrays index the layout directly — no per-id Python mapping.
            covering_positions = self._metadata.covering_positions_batch(
                batch.range_tuples_list()
            )
        else:
            position_of = layout.position_of()
            covering_lists = self._metadata.covering_cluster_ids_batch(
                batch.range_tuples_list()
            )
            covering_positions = [
                np.array([position_of[cluster_id] for cluster_id in ids], dtype=np.int64)
                for ids in covering_lists
            ]
        values_list = layout.query_cluster_values(
            batch, covering_positions, execution=self._execution
        )
        return [
            ExactExecution(
                value=int(values.sum()),
                clusters_scanned=int(positions.size),
                rows_scanned=int(layout.cluster_rows[positions].sum()),
            )
            for positions, values in zip(covering_positions, values_list)
        ]
