"""Synthetic Adult-like dataset (UCI Adult scaled up, as in the paper).

The real Adult table has 15 attributes; the paper scales it synthetically to
4 million rows and builds a count tensor over six of its dimensions.  This
generator reproduces that shape: the full 15-attribute relational table (with
categorical attributes integer-encoded) and a count tensor keeping the seven
range-queryable dimensions used by the dimension sweep (n ∈ [2, 7]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..storage.schema import Dimension, Schema
from ..storage.table import Table
from ..storage.tensor import build_count_tensor
from ..utils.rng import RngLike, derive_rng
from .distributions import mixture_integers, zipf_integers

__all__ = ["AdultSyntheticGenerator", "ADULT_DIMENSIONS", "ADULT_TENSOR_DIMENSIONS"]

ADULT_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension("age", 17, 90),
    Dimension("workclass", 0, 8),
    Dimension("fnlwgt", 0, 999),
    Dimension("education", 0, 15),
    Dimension("education_num", 1, 16),
    Dimension("marital_status", 0, 6),
    Dimension("occupation", 0, 14),
    Dimension("relationship", 0, 5),
    Dimension("race", 0, 4),
    Dimension("sex", 0, 1),
    Dimension("capital_gain", 0, 99),
    Dimension("capital_loss", 0, 99),
    Dimension("hours_per_week", 1, 99),
    Dimension("native_country", 0, 40),
    Dimension("income", 0, 1),
)
"""The 15 Adult attributes with integer-encoded domains."""

ADULT_TENSOR_DIMENSIONS: tuple[str, ...] = (
    "age",
    "education_num",
    "hours_per_week",
    "capital_gain",
    "capital_loss",
    "occupation",
    "native_country",
)
"""Dimensions kept in the count tensor (supports queries with 2-7 dimensions)."""


@dataclass
class AdultSyntheticGenerator:
    """Generate an Adult-like table and its count tensor.

    Parameters
    ----------
    num_rows:
        Number of rows of the raw relational table (the paper uses 4e6; the
        default here is laptop-sized and every experiment accepts overrides).
    seed:
        Seed making the generated data reproducible.
    """

    num_rows: int = 200_000
    seed: RngLike = 7

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise DatasetError(f"num_rows must be >= 1, got {self.num_rows}")

    @property
    def schema(self) -> Schema:
        """Schema of the raw relational table."""
        return Schema(ADULT_DIMENSIONS)

    def table(self) -> Table:
        """Generate the raw relational table."""
        n = self.num_rows
        rng = derive_rng(self.seed, "adult")
        columns: dict[str, np.ndarray] = {
            "age": mixture_integers(17, 90, n, num_modes=3, rng=derive_rng(rng, "age")),
            "workclass": zipf_integers(0, 8, n, rng=derive_rng(rng, "workclass")),
            "fnlwgt": zipf_integers(0, 999, n, exponent=1.05, rng=derive_rng(rng, "fnlwgt")),
            "education": zipf_integers(0, 15, n, rng=derive_rng(rng, "education")),
            "education_num": mixture_integers(1, 16, n, num_modes=2, rng=derive_rng(rng, "edu_num")),
            "marital_status": zipf_integers(0, 6, n, rng=derive_rng(rng, "marital")),
            "occupation": zipf_integers(0, 14, n, exponent=1.1, rng=derive_rng(rng, "occupation")),
            "relationship": zipf_integers(0, 5, n, rng=derive_rng(rng, "relationship")),
            "race": zipf_integers(0, 4, n, exponent=2.0, rng=derive_rng(rng, "race")),
            "sex": derive_rng(rng, "sex").integers(0, 2, n),
            "capital_gain": zipf_integers(0, 99, n, exponent=1.8, rng=derive_rng(rng, "gain")),
            "capital_loss": zipf_integers(0, 99, n, exponent=2.0, rng=derive_rng(rng, "loss")),
            "hours_per_week": mixture_integers(1, 99, n, num_modes=2, rng=derive_rng(rng, "hours")),
            "native_country": zipf_integers(0, 40, n, exponent=1.6, rng=derive_rng(rng, "country")),
            "income": derive_rng(rng, "income").integers(0, 2, n),
        }
        return Table(self.schema, columns)

    def count_tensor(self, dimensions: tuple[str, ...] = ADULT_TENSOR_DIMENSIONS) -> Table:
        """Generate the count tensor over the range-queryable dimensions."""
        return build_count_tensor(self.table(), dimensions)
