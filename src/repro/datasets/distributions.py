"""Skewed integer distributions for synthetic data generation.

Real OLAP data is rarely uniform across clusters — the whole point of the
paper's distribution-aware sampling.  These helpers generate discrete values
on ``[low, high]`` following Zipf, truncated-Gaussian-mixture, or generic
skewed distributions, so the synthetic Adult/Amazon tables show the same kind
of inter-cluster skew the paper's real tables do.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..utils.rng import RngLike, ensure_rng

__all__ = ["zipf_integers", "mixture_integers", "skewed_integers"]


def _check_bounds(low: int, high: int, size: int) -> None:
    if low > high:
        raise DatasetError(f"low ({low}) must be <= high ({high})")
    if size < 0:
        raise DatasetError(f"size must be >= 0, got {size}")


def zipf_integers(
    low: int, high: int, size: int, *, exponent: float = 1.3, rng: RngLike = None
) -> np.ndarray:
    """Zipf-distributed integers mapped onto the domain ``[low, high]``.

    The most frequent value is ``low``; frequency decays as ``rank^-exponent``.
    """
    _check_bounds(low, high, size)
    if exponent <= 0:
        raise DatasetError(f"exponent must be > 0, got {exponent}")
    generator = ensure_rng(rng)
    domain = high - low + 1
    ranks = np.arange(1, domain + 1, dtype=float)
    weights = ranks**-exponent
    weights /= weights.sum()
    return low + generator.choice(domain, size=size, p=weights)


def mixture_integers(
    low: int,
    high: int,
    size: int,
    *,
    num_modes: int = 3,
    spread: float = 0.08,
    rng: RngLike = None,
) -> np.ndarray:
    """Gaussian-mixture integers truncated to ``[low, high]``.

    Produces multi-modal data (e.g. ages clustering around distinct cohorts),
    which creates strong per-cluster skew once the table is sorted and split
    into clusters.
    """
    _check_bounds(low, high, size)
    if num_modes < 1:
        raise DatasetError(f"num_modes must be >= 1, got {num_modes}")
    if spread <= 0:
        raise DatasetError(f"spread must be > 0, got {spread}")
    generator = ensure_rng(rng)
    domain = high - low + 1
    centers = generator.uniform(low, high, size=num_modes)
    sigma = max(1.0, spread * domain)
    assignments = generator.integers(0, num_modes, size=size)
    values = generator.normal(centers[assignments], sigma)
    return np.clip(np.rint(values), low, high).astype(np.int64)


def skewed_integers(
    low: int,
    high: int,
    size: int,
    *,
    kind: str = "zipf",
    rng: RngLike = None,
) -> np.ndarray:
    """Dispatch helper: ``kind`` is one of ``zipf``, ``mixture``, ``uniform``."""
    _check_bounds(low, high, size)
    generator = ensure_rng(rng)
    if kind == "zipf":
        return zipf_integers(low, high, size, rng=generator)
    if kind == "mixture":
        return mixture_integers(low, high, size, rng=generator)
    if kind == "uniform":
        return generator.integers(low, high + 1, size=size)
    raise DatasetError(f"unknown distribution kind: {kind!r}")
