"""Synthetic Amazon-Review-like dataset.

The real Amazon Review table has three range-queryable dimensions (rating,
timestamp, helpful votes); the paper adds three randomly populated dimensions
and synthetically scales the table to ~1 billion rows.  This generator
reproduces that shape at configurable scale: three "organic" skewed
dimensions plus three synthetic uniform dimensions, and a count tensor over
the six of them (supporting queries with 2-5 dimensions as in Figure 4).

The Amazon-like table is intentionally generated *larger* than the Adult-like
table (matching the paper's size ordering), which is what drives the
"bigger data -> lower relative error and higher speed-up" trends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..storage.schema import Dimension, Schema
from ..storage.table import Table
from ..storage.tensor import build_count_tensor
from ..utils.rng import RngLike, derive_rng
from .distributions import mixture_integers, zipf_integers

__all__ = [
    "AmazonReviewSyntheticGenerator",
    "AMAZON_DIMENSIONS",
    "AMAZON_TENSOR_DIMENSIONS",
]

AMAZON_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension("rating", 1, 5),
    Dimension("day", 0, 364),
    Dimension("helpful_votes", 0, 199),
    Dimension("synthetic_a", 0, 99),
    Dimension("synthetic_b", 0, 499),
    Dimension("synthetic_c", 0, 49),
)
"""Three organic range-queryable dimensions plus three synthetic ones."""

AMAZON_TENSOR_DIMENSIONS: tuple[str, ...] = (
    "rating",
    "day",
    "helpful_votes",
    "synthetic_a",
    "synthetic_b",
)
"""Dimensions kept in the count tensor (supports queries with 2-5 dimensions)."""


@dataclass
class AmazonReviewSyntheticGenerator:
    """Generate an Amazon-Review-like table and its count tensor."""

    num_rows: int = 600_000
    seed: RngLike = 11

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise DatasetError(f"num_rows must be >= 1, got {self.num_rows}")

    @property
    def schema(self) -> Schema:
        """Schema of the raw review table."""
        return Schema(AMAZON_DIMENSIONS)

    def table(self) -> Table:
        """Generate the raw review table."""
        n = self.num_rows
        rng = derive_rng(self.seed, "amazon")
        columns: dict[str, np.ndarray] = {
            # Ratings are heavily skewed towards 5 stars on real platforms.
            "rating": 6 - zipf_integers(1, 5, n, exponent=1.4, rng=derive_rng(rng, "rating")),
            "day": mixture_integers(0, 364, n, num_modes=4, rng=derive_rng(rng, "day")),
            "helpful_votes": zipf_integers(0, 199, n, exponent=1.7, rng=derive_rng(rng, "votes")),
            "synthetic_a": derive_rng(rng, "a").integers(0, 100, n),
            "synthetic_b": derive_rng(rng, "b").integers(0, 500, n),
            "synthetic_c": derive_rng(rng, "c").integers(0, 50, n),
        }
        return Table(self.schema, columns)

    def count_tensor(self, dimensions: tuple[str, ...] = AMAZON_TENSOR_DIMENSIONS) -> Table:
        """Generate the count tensor over the range-queryable dimensions."""
        return build_count_tensor(self.table(), dimensions)
