"""Synthetic dataset generators used by the evaluation.

The paper evaluates on a synthetically scaled Adult table and on the Amazon
Review table with added synthetic dimensions.  Neither raw dataset ships with
this repository (no network access, and the Amazon table is ~120 GB), so the
generators here reproduce their *shape*: schema, discrete ordered domains,
skewed value distributions, and the count-tensor construction — at a
configurable row count.  See DESIGN.md, "Substitutions".
"""

from .adult import AdultSyntheticGenerator, ADULT_TENSOR_DIMENSIONS
from .amazon import AmazonReviewSyntheticGenerator, AMAZON_TENSOR_DIMENSIONS
from .distributions import skewed_integers, zipf_integers, mixture_integers

__all__ = [
    "AdultSyntheticGenerator",
    "AmazonReviewSyntheticGenerator",
    "ADULT_TENSOR_DIMENSIONS",
    "AMAZON_TENSOR_DIMENSIONS",
    "skewed_integers",
    "zipf_integers",
    "mixture_integers",
]
