"""Multi-tenant serving layer over the federated AQP engine.

The paper's protocol serves one analyst; the serving layer turns the
batched engine into a front-end for many concurrent tenants with isolated
privacy budgets:

* :mod:`repro.service.tenants` — :class:`~repro.service.tenants.TenantRegistry`,
  mapping tenant ids to isolated
  :class:`~repro.core.accounting.EndUserBudget`s and per-tenant noise-stream
  sequences;
* :mod:`repro.service.scheduler` —
  :class:`~repro.service.scheduler.SessionScheduler`, which admits
  submissions against per-tenant budgets (priced by the
  :class:`~repro.cache.planner.ReusePlanner` upper bound), coalesces them
  across tenants into shared query batches, dispatches with bounded
  backpressure, and settles exact per-tenant charges.

See ``docs/serving.md`` for the design and the isolation guarantees.
"""

from .scheduler import ServiceStats, SessionScheduler, SubmissionReceipt, TenantAnswer
from .tenants import Tenant, TenantRegistry

__all__ = [
    "Tenant",
    "TenantRegistry",
    "SessionScheduler",
    "SubmissionReceipt",
    "TenantAnswer",
    "ServiceStats",
]
