"""Multi-tenant serving layer over the federated AQP engine.

The paper's protocol serves one analyst; the serving layer turns the
batched engine into a front-end for many concurrent tenants with isolated
privacy budgets:

* :mod:`repro.service.tenants` — :class:`~repro.service.tenants.TenantRegistry`,
  mapping tenant ids to isolated
  :class:`~repro.core.accounting.EndUserBudget`s and per-tenant noise-stream
  sequences;
* :mod:`repro.service.scheduler` —
  :class:`~repro.service.scheduler.SessionScheduler`, which admits
  submissions against per-tenant budgets (priced by the
  :class:`~repro.cache.planner.ReusePlanner` upper bound), coalesces them
  across tenants into shared query batches (weighted-fair under priority
  classes, cost-packed under a drain time budget), dispatches with bounded
  backpressure (optionally overlapping the engine's combination phase with
  the next chunk's provider phases), and settles exact per-tenant charges;
* :mod:`repro.service.costmodel` —
  :class:`~repro.service.costmodel.CostModel`, the zone-map-derived
  per-query work estimator behind time-budgeted chunking, calibrated
  online against measured chunk seconds.

See ``docs/serving.md`` for the design and the isolation guarantees.
"""

from .costmodel import CostEstimate, CostModel
from .scheduler import (
    AdmissionCandidate,
    LatencyHistogram,
    ServiceStats,
    SessionScheduler,
    SubmissionReceipt,
    TenantAnswer,
    plan_weighted_admission,
)
from .tenants import Tenant, TenantRegistry

__all__ = [
    "Tenant",
    "TenantRegistry",
    "SessionScheduler",
    "SubmissionReceipt",
    "TenantAnswer",
    "ServiceStats",
    "LatencyHistogram",
    "AdmissionCandidate",
    "plan_weighted_admission",
    "CostModel",
    "CostEstimate",
]
