"""Per-query cost estimation for the serving layer's scheduler.

The paper's protocol makes query cost *predictable before execution*: the
covering set ``C^Q`` and the covered-vs-straddler split are known from the
offline metadata (zone maps + occupancy) without touching a row.
:class:`CostModel` turns those statistics into a scalar per-query work
estimate the :class:`~repro.service.scheduler.SessionScheduler` packs
drain chunks with (see
:func:`~repro.federation.partitioning.work_balanced_chunks`):

* **Structural units** — per provider, a query costs a constant protocol
  overhead (summary, allocation, estimate round-trips and noise draws) plus
  per-cluster work for every cluster of its covering set plus per-row work
  for the rows a pruned executor actually inspects: straddler rows and the
  provider's unfolded delta buffer.  A provider whose
  :class:`~repro.config.ExecutionConfig` disables pruning scans every row
  of every covering cluster instead — the backend changes the estimate, not
  just the execution.
* **Online calibration** — structural units only *rank* queries; the
  mapping to wall-clock is machine- and backend-dependent, so the scheduler
  feeds every executed chunk's ``(predicted units, measured seconds)`` back
  into :meth:`CostModel.observe`.  An EWMA of the implied seconds-per-unit
  converges the scale, and an EWMA of the relative prediction error is
  exposed through :class:`~repro.service.scheduler.ServiceStats` so
  operators can see how trustworthy the packing currently is.

Estimates are only as fresh as the layout they were read from: compaction
rewrites zone maps and occupancy, so cached estimates carry the
:meth:`CostModel.layout_signature` they were computed under and are
recomputed when it moves (the deferred-resubmission staleness fix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..config import ExecutionConfig
from ..query.model import RangeQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (system -> service)
    from ..core.system import FederatedAQPSystem

__all__ = ["CostEstimate", "CostModel"]

# Structural unit weights.  Only the *ratios* matter for packing (the online
# EWMA owns the absolute scale): a cluster visit amortises to roughly a
# hundred row operations' worth of per-cluster overhead in the vectorised
# kernels, and each query carries a fixed protocol overhead per provider
# (session bookkeeping, noise draws, message accounting).
UNITS_PER_QUERY = 200.0
UNITS_PER_CLUSTER = 100.0
UNITS_PER_ROW = 1.0

#: Seconds-per-unit prior used until the first chunk has been observed.
DEFAULT_SECONDS_PER_UNIT = 2e-7

#: Smoothing factor of the calibration EWMAs: heavy enough that one outlier
#: chunk does not whipsaw the packing, light enough to converge in a handful
#: of drains.
EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class CostEstimate:
    """One query's predicted work, summed across the federation."""

    units: float
    clusters_touched: int
    clusters_covered: int
    straddler_rows: int


class CostModel:
    """Estimates per-query drain cost and calibrates itself online.

    Thread-safety: :meth:`estimate` reads provider metadata and must run
    where provider state is quiescent (the scheduler calls it under its
    drain lock); :meth:`observe` and the properties touch only the model's
    own scalars.
    """

    def __init__(self, system: "FederatedAQPSystem") -> None:
        self.system = system
        self._seconds_per_unit: float | None = None
        self._error_ewma: float | None = None
        self._observations = 0

    # -- estimation -------------------------------------------------------------

    def layout_signature(self) -> tuple[tuple[int, int], ...]:
        """Per-provider ``(layout_epoch, delta_watermark)`` freshness stamp.

        Any estimate computed under a different signature is stale: a
        compaction rewrote the zone maps, or ingested rows changed the scan
        volume every query pays.
        """
        return tuple(
            (provider.layout_epoch, provider.delta_watermark)
            for provider in self.system.providers
        )

    def estimate(self, queries: Sequence[RangeQuery]) -> list[CostEstimate]:
        """Predict each query's work units against the current layout."""
        if not queries:
            return []
        totals = [0.0] * len(queries)
        clusters = [0] * len(queries)
        covered = [0] * len(queries)
        straddler_rows = [0] * len(queries)
        for provider in self.system.providers:
            execution = provider.execution_config or ExecutionConfig()
            delta_rows = provider.delta_rows
            for index, stats in enumerate(provider.cost_stats_batch(queries)):
                clusters[index] += stats.clusters_touched
                covered[index] += stats.clusters_covered
                straddler_rows[index] += stats.straddler_rows
                if execution.prune:
                    # Covered clusters short-circuit to metadata sums; only
                    # straddler rows (and the unfolded delta buffer, which
                    # every query scans) cost row work.
                    rows = stats.straddler_rows + delta_rows
                else:
                    rows = stats.covered_rows + stats.straddler_rows + delta_rows
                totals[index] += (
                    UNITS_PER_QUERY
                    + UNITS_PER_CLUSTER * stats.clusters_touched
                    + UNITS_PER_ROW * rows
                )
        return [
            CostEstimate(
                units=totals[index],
                clusters_touched=clusters[index],
                clusters_covered=covered[index],
                straddler_rows=straddler_rows[index],
            )
            for index in range(len(queries))
        ]

    def predicted_seconds(self, units: float) -> float:
        """Map work units to wall-clock with the calibrated scale."""
        return units * self.seconds_per_unit

    # -- calibration ------------------------------------------------------------

    def observe(self, predicted_units: float, actual_seconds: float) -> None:
        """Fold one executed chunk's measurement into the calibration.

        ``predicted_units`` is the chunk's estimated unit sum at dispatch;
        ``actual_seconds`` its measured execution wall-clock.  The relative
        prediction error is recorded against the *pre-update* scale — it
        measures how wrong the packing's prediction actually was.
        """
        if predicted_units <= 0 or actual_seconds < 0:
            return
        predicted = self.predicted_seconds(predicted_units)
        if predicted > 0:
            error = abs(predicted - actual_seconds) / predicted
            self._error_ewma = (
                error
                if self._error_ewma is None
                else (1.0 - EWMA_ALPHA) * self._error_ewma + EWMA_ALPHA * error
            )
        ratio = actual_seconds / predicted_units
        self._seconds_per_unit = (
            ratio
            if self._seconds_per_unit is None
            else (1.0 - EWMA_ALPHA) * self._seconds_per_unit + EWMA_ALPHA * ratio
        )
        self._observations += 1

    @property
    def seconds_per_unit(self) -> float:
        """The calibrated unit scale (the prior until first observation)."""
        if self._seconds_per_unit is None:
            return DEFAULT_SECONDS_PER_UNIT
        return self._seconds_per_unit

    @property
    def prediction_error(self) -> float:
        """EWMA of relative ``|predicted - actual| / predicted`` per chunk."""
        return 0.0 if self._error_ewma is None else self._error_ewma

    @property
    def observations(self) -> int:
        """Number of chunk measurements folded in so far."""
        return self._observations
