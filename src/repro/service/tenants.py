"""Tenant registry: isolated per-tenant budgets and noise-stream identities.

A *tenant* is one end user of the serving layer.  Each tenant owns

* an isolated :class:`~repro.core.accounting.EndUserBudget` ``(xi, psi)`` —
  one tenant exhausting its wallet never touches another tenant's headroom,
* a monotonically increasing *query sequence*.  Query ``k`` of tenant ``T``
  is answered with provider noise streams keyed by ``(T, k)`` (see
  :attr:`~repro.federation.messages.QueryRequest.seed_material`), so under a
  fixed system seed a tenant's answers are bit-identical whether its
  submissions ran alone or coalesced with arbitrary other tenants' traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.accounting import EndUserBudget
from ..errors import ServiceError, UnknownTenantError

__all__ = ["Tenant", "TenantRegistry"]


@dataclass
class Tenant:
    """One registered tenant: identity, wallet, and stream sequence.

    ``rows_ingested`` counts the rows this tenant pushed through
    :meth:`~repro.service.scheduler.SessionScheduler.submit_ingest`,
    credited when the rows actually land at drain time — ingestion spends
    no privacy budget (appending rows releases nothing), but per-tenant
    write volume stays auditable next to the epsilon ledger.

    ``degraded_queries`` counts this tenant's answers that were produced by
    a partial federation (providers missing after a degraded drain); the
    epsilon charged for them is still exact — only the delivered releases
    were priced.

    ``priority_class`` is the tenant's weight in the scheduler's
    weighted-fair admission (see
    :func:`~repro.service.scheduler.plan_weighted_admission`): a tenant of
    priority ``w`` is served roughly ``w`` queries for every one query a
    priority-1 tenant gets when both are backlogged.  Priorities shape
    *latency* only — answers and charges are priority-independent.
    """

    tenant_id: str
    budget: EndUserBudget
    priority_class: int = 1
    sequence: int = 0
    rows_ingested: int = 0
    degraded_queries: int = 0

    def next_seed_token(self) -> tuple[int, ...]:
        """Allocate the noise-stream key of this tenant's next query.

        The token is the tenant id's UTF-8 bytes followed by the tenant-local
        sequence number — collision-free across tenants (the final element is
        always the sequence, everything before it the id bytes) and
        independent of every other tenant's activity.
        """
        token = tuple(self.tenant_id.encode("utf-8")) + (self.sequence,)
        self.sequence += 1
        return token

    @property
    def remaining_epsilon(self) -> float:
        """Epsilon still available to this tenant."""
        return self.budget.remaining_epsilon

    @property
    def remaining_delta(self) -> float:
        """Delta still available to this tenant."""
        return self.budget.remaining_delta


@dataclass
class TenantRegistry:
    """Maps tenant ids to isolated end-user budgets.

    The registry is the serving layer's source of truth for *who* may spend
    *how much*: the scheduler prices every submission against the submitting
    tenant's own wallet and charges the actual (reuse-discounted) cost back
    to it, so the fleet-wide epsilon spend is simply the sum of the
    per-tenant ledgers — auditable tenant by tenant.
    """

    _tenants: dict[str, Tenant] = field(default_factory=dict)

    def register(
        self,
        tenant_id: str,
        *,
        total_epsilon: float,
        total_delta: float = 1.0,
        priority_class: int = 1,
    ) -> Tenant:
        """Register a new tenant with budget ``(total_epsilon, total_delta)``.

        ``priority_class`` is the tenant's weighted-fair admission weight
        (``>= 1``; higher drains sooner under contention).

        Raises
        ------
        ServiceError
            When the id is empty or already registered (re-registration
            would silently reset a wallet), or ``priority_class`` is below
            one.
        """
        if not tenant_id:
            raise ServiceError("tenant_id must be a non-empty string")
        if tenant_id in self._tenants:
            raise ServiceError(f"tenant {tenant_id!r} is already registered")
        if priority_class < 1:
            raise ServiceError(f"priority_class must be >= 1, got {priority_class}")
        tenant = Tenant(
            tenant_id=tenant_id,
            budget=EndUserBudget.create(total_epsilon, total_delta),
            priority_class=priority_class,
        )
        self._tenants[tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        """Look a tenant up, raising :class:`UnknownTenantError` when absent."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenantError(
                f"unknown tenant {tenant_id!r}; registered: {sorted(self._tenants)}"
            )
        return tenant

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    @property
    def tenant_ids(self) -> tuple[str, ...]:
        """Registered tenant ids in registration order."""
        return tuple(self._tenants)

    def remaining_budget(self, tenant_id: str) -> tuple[float, float]:
        """The tenant's remaining ``(epsilon, delta)``."""
        tenant = self.get(tenant_id)
        return (tenant.remaining_epsilon, tenant.remaining_delta)
