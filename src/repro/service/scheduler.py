"""Concurrent session scheduler: many tenants, one batched federation pass.

The protocol answers one analyst's workload at a time; a serving deployment
faces many concurrent tenants.  :class:`SessionScheduler` multiplexes them
onto one :class:`~repro.core.system.FederatedAQPSystem`:

* **Submission** — :meth:`SessionScheduler.submit` accepts a per-tenant list
  of queries, prices it with the :class:`~repro.cache.planner.ReusePlanner`'s
  sound upper bound, and admits it only when the bound fits the tenant's
  remaining budget (reserving the bound until the actual charge is known).
  Unaffordable work is rejected (:class:`~repro.errors.AdmissionError`) or
  deferred for re-pricing, per :class:`~repro.config.ServiceConfig`; a full
  pending queue sheds load with
  :class:`~repro.errors.ServiceOverloadedError` (backpressure).
* **Coalescing** — :meth:`SessionScheduler.drain` flattens the pending
  submissions in *canonical order* — ``(tenant_id, tenant-local submission
  sequence)``, independent of arrival interleaving — and chunks the combined
  workload into shared :class:`~repro.query.batch.QueryBatch`es of at most
  ``max_batch_size`` queries, amortising the metadata pass and the provider
  round-trips across tenants.
* **Dispatch** — batches execute FIFO on one dispatcher worker (the
  federation's providers are a shared, stateful resource; intra-batch
  parallelism comes from :class:`~repro.config.ParallelismConfig`'s
  thread/process fan-out), with up to ``max_in_flight_batches`` batches in
  the pipeline so result routing overlaps the next batch's execution.
* **Settlement** — per-query actual charges come back from the engine
  (reuse-discounted, zero for fully cached queries), are grouped per
  submission, charged atomically to the owning tenant's wallet, and returned
  as :class:`TenantAnswer`s.
* **Ingestion** — :meth:`SessionScheduler.submit_ingest` queues appended
  rows (validated at the door; bounded by ``max_pending_ingest``, shedding
  load with :class:`~repro.errors.ServiceOverloadedError`);
  :meth:`SessionScheduler.drain` runs the queued ingests on the single
  dispatcher worker *after* the drain's query batches, FIFO — so writes
  (and any compaction they trigger) land where providers hold no per-query
  sessions, every batch of the drain sees the data its submissions were
  priced against, and the next drain's queries see the new rows.

Determinism: every query's provider noise streams are keyed by
``(tenant, tenant-local sequence)`` (see
:meth:`~repro.service.tenants.Tenant.next_seed_token`), and coalescing order
is canonical — so under a fixed system seed, a tenant's answers are
bit-identical however its submissions interleave with other tenants', and
identical to running the tenant's workload alone, across the serial, thread,
and process backends.  (With the release caches enabled, *charges* can
additionally drop when another tenant's traffic already released a repeated
predicate — that cross-tenant reuse is what keeps fleet-wide epsilon spend
sublinear in tenant count on overlapping workloads.)
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..config import ServiceConfig
from ..core.accounting import query_spend, split_query_budget
from ..core.result import BatchResult, QueryResult
from ..core.system import FederatedAQPSystem
from ..errors import AdmissionError, ServiceError, ServiceOverloadedError
from ..ingest.delta import IngestReceipt, validate_rows
from ..query.batch import QueryBatch
from ..query.model import RangeQuery
from ..storage.table import Table
from .tenants import Tenant, TenantRegistry

__all__ = ["SubmissionReceipt", "TenantAnswer", "ServiceStats", "SessionScheduler"]


@dataclass(frozen=True)
class SubmissionReceipt:
    """What :meth:`SessionScheduler.submit` hands back immediately.

    ``status`` is ``"queued"`` for admitted work (its budget bound is
    reserved) or ``"deferred"`` for parked work awaiting re-pricing.
    """

    submission_id: int
    tenant_id: str
    num_queries: int
    status: str
    bound_epsilon: float
    bound_delta: float


@dataclass(frozen=True)
class TenantAnswer:
    """One completed submission routed back to its tenant.

    ``epsilon_charged`` / ``delta_charged`` are the *exact* amounts debited
    from this tenant's wallet for this submission — the sum of the per-query
    actuals after reuse, never more than the bound reserved at admission
    (barring the documented LRU-eviction corner, where the ledger still
    records the true spend).
    """

    tenant_id: str
    submission_id: int
    results: tuple[QueryResult, ...]
    epsilon_charged: float
    delta_charged: float

    @property
    def num_queries(self) -> int:
        """Number of answered queries in the submission."""
        return len(self.results)

    @property
    def values(self) -> tuple[float, ...]:
        """The per-query DP answers, in submission order."""
        return tuple(result.value for result in self.results)

    @property
    def degraded(self) -> bool:
        """Whether any answer was produced by a partial federation."""
        return any(result.degraded for result in self.results)

    @property
    def providers_missing(self) -> tuple[str, ...]:
        """Union of provider ids missing from any answer (first-seen order)."""
        seen: dict[str, None] = {}
        for result in self.results:
            for provider_id in result.providers_missing:
                seen.setdefault(provider_id, None)
        return tuple(seen)


@dataclass
class ServiceStats:
    """Cumulative serving-layer counters (monotone; read anytime)."""

    submissions_accepted: int = 0
    submissions_rejected: int = 0
    submissions_deferred: int = 0
    queries_accepted: int = 0
    batches_dispatched: int = 0
    queries_dispatched: int = 0
    cross_tenant_batches: int = 0
    answers_delivered: int = 0
    degraded_queries: int = 0
    ingest_requests: int = 0
    rows_ingested: int = 0
    compactions: int = 0
    epsilon_charged: float = 0.0
    delta_charged: float = 0.0
    epsilon_by_tenant: dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    max_pending_seen: int = 0

    def _note_charge(self, tenant_id: str, epsilon: float, delta: float) -> None:
        self.epsilon_charged += epsilon
        self.delta_charged += delta
        self.epsilon_by_tenant[tenant_id] = (
            self.epsilon_by_tenant.get(tenant_id, 0.0) + epsilon
        )


@dataclass
class _Submission:
    """Internal bookkeeping of one accepted or deferred submission."""

    submission_id: int
    tenant: Tenant
    order: int  # tenant-local submission sequence: the canonical sort key
    queries: tuple[RangeQuery, ...]
    seed_tokens: tuple[tuple[int, ...], ...]
    bound_epsilon: float = 0.0
    bound_delta: float = 0.0
    reserved: bool = False


class SessionScheduler:
    """Multiplexes per-tenant submissions onto one federated system.

    Parameters
    ----------
    system:
        The federation to serve.  Must not carry its own end-user budget —
        wallets live in the registry, one per tenant.
    registry:
        The tenant registry; tenants must be registered before submitting.
    config:
        Serving policy; defaults to the system's
        :attr:`~repro.config.SystemConfig.service`.
    """

    def __init__(
        self,
        system: FederatedAQPSystem,
        registry: TenantRegistry,
        *,
        config: ServiceConfig | None = None,
    ) -> None:
        if system.end_user_budget is not None:
            raise ServiceError(
                "a served system must not hold its own end-user budget; "
                "per-tenant budgets live in the TenantRegistry"
            )
        self.system = system
        self.registry = registry
        self.config = config or system.config.service
        self.stats = ServiceStats()
        # ``_lock`` guards the queues, the wallets (reserve / charge /
        # release), and the stats; ``_drain_lock`` serialises whole drains —
        # the federation's providers hold mutable protocol state, so two
        # dispatch pipelines must never interleave on them.
        self._lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._pending: list[_Submission] = []
        self._deferred: list[_Submission] = []
        self._pending_ingest: list[tuple[Table, int | None, Tenant | None]] = []
        self._next_submission_id = 0
        self._query_budget = split_query_budget(system.config.privacy)

    # -- admission --------------------------------------------------------------

    def _price(self, queries: Sequence[RangeQuery]) -> tuple[float, float]:
        """Sound upper bound of a submission's charge.

        With the release caches enabled the :class:`ReusePlanner` lowers the
        bound to zero for queries guaranteed to be served by post-processing;
        otherwise every query is bounded at its full federation spend.
        """
        if self.system.config.cache.enabled:
            plan = self.system.aggregator.plan_reuse(queries, self._query_budget)
            return plan.upper_bound
        spend = query_spend(self._query_budget, self.system.num_providers)
        return (len(queries) * spend.epsilon, len(queries) * spend.delta)

    def submit(
        self, tenant_id: str, queries: Sequence[RangeQuery | str]
    ) -> SubmissionReceipt:
        """Accept (or defer, or refuse) one tenant's workload.

        Parameters
        ----------
        tenant_id:
            A registered tenant.
        queries:
            The workload: :class:`RangeQuery` objects or SQL texts.

        Returns
        -------
        SubmissionReceipt
            Queued or deferred acknowledgement; answers arrive from
            :meth:`drain`.

        Raises
        ------
        UnknownTenantError
            Unregistered ``tenant_id``.
        ServiceOverloadedError
            The bounded pending queue (or, for deferrals, the separately
            bounded deferred park) is full — backpressure: retry after a
            drain, or :meth:`discard_deferred`.
        AdmissionError
            The priced bound does not fit the tenant's remaining budget and
            the submission cannot be deferred — because the policy is
            ``"reject"``, or because the release caches are disabled, in
            which case the price can never drop and parking the work would
            only wedge the queue.  Atomic: nothing is queued, reserved, or
            charged.
        """
        if not queries:
            raise ServiceError("a submission must contain at least one query")
        tenant = self.registry.get(tenant_id)
        with self._lock:
            # Cheap shed before any pricing work: when both queues are full
            # no submission can be accepted whatever it prices at.
            if (
                len(self._pending) >= self.config.max_pending
                and len(self._deferred) >= self.config.max_pending
            ):
                raise ServiceOverloadedError(
                    f"pending queue and deferred park are both full "
                    f"({self.config.max_pending} submissions each); drain first"
                )
        range_queries = tuple(self.system._coerce_query(query) for query in queries)
        # Pricing peeks the release caches and may solve allocations — keep
        # it off the queue/wallet lock so concurrent settlement is never
        # blocked behind it.  The bound tolerates cache-state races by
        # design (see the planner's documented eviction corner); the
        # affordability check is re-taken under the lock before reserving.
        bound_epsilon, bound_delta = self._price(range_queries)
        with self._lock:
            affordable = tenant.budget.can_admit(bound_epsilon, bound_delta)
            defer = (
                not affordable
                and self.config.admission == "defer"
                and self.system.config.cache.enabled
            )
            if not affordable and not defer:
                self.stats.submissions_rejected += 1
                raise AdmissionError(
                    f"tenant {tenant_id!r}: bound ({bound_epsilon}, {bound_delta}) "
                    f"exceeds remaining budget "
                    f"({tenant.remaining_epsilon}, {tenant.remaining_delta})"
                )
            # Pending and deferred are bounded separately: a tenant parking
            # never-affordable work can fill the deferred park, but it cannot
            # starve other tenants' admissible submissions.
            if affordable and len(self._pending) >= self.config.max_pending:
                raise ServiceOverloadedError(
                    f"pending queue is full ({self.config.max_pending} submissions); "
                    "drain before submitting more"
                )
            if defer and len(self._deferred) >= self.config.max_pending:
                raise ServiceOverloadedError(
                    f"deferred park is full ({self.config.max_pending} submissions); "
                    "drain (after budgets or caches changed) or discard_deferred()"
                )
            submission = _Submission(
                submission_id=self._next_submission_id,
                tenant=tenant,
                order=tenant.sequence,
                queries=range_queries,
                seed_tokens=tuple(tenant.next_seed_token() for _ in range_queries),
                bound_epsilon=bound_epsilon,
                bound_delta=bound_delta,
            )
            self._next_submission_id += 1
            if affordable:
                tenant.budget.reserve(bound_epsilon, bound_delta)
                submission.reserved = True
                self._pending.append(submission)
                self.stats.submissions_accepted += 1
                self.stats.queries_accepted += len(range_queries)
                status = "queued"
            else:
                self._deferred.append(submission)
                self.stats.submissions_deferred += 1
                status = "deferred"
            self.stats.max_pending_seen = max(
                self.stats.max_pending_seen, len(self._pending) + len(self._deferred)
            )
            return SubmissionReceipt(
                submission_id=submission.submission_id,
                tenant_id=tenant_id,
                num_queries=len(range_queries),
                status=status,
                bound_epsilon=bound_epsilon,
                bound_delta=bound_delta,
            )

    def submit_ingest(
        self,
        rows: Table,
        *,
        provider_index: int | None = None,
        tenant_id: str | None = None,
    ) -> int:
        """Queue a batch of rows for ingestion on the next drain.

        Ingest requests ride the same dispatcher as query batches: the next
        :meth:`drain` applies them after its batches, FIFO, where no
        per-query session is open — in-flight queries keep their pinned
        snapshots, admission pricing stays consistent with the data the
        drain's batches actually see, and a triggered compaction is always
        safe.  Rows are validated here, at the door, so one writer's
        malformed batch is refused with a client error instead of aborting
        other tenants' drain later.

        Parameters
        ----------
        rows:
            The appended rows (provider schema; row order is preserved).
        provider_index:
            Target one provider; by default rows are dealt round-robin
            across the federation (see
            :meth:`~repro.core.system.FederatedAQPSystem.ingest`).
        tenant_id:
            Optional attribution: the registered tenant whose
            :attr:`~repro.service.tenants.Tenant.rows_ingested` ledger the
            rows are counted against — credited when the rows actually
            land, not at submit.  Ingestion spends no privacy budget.

        Returns
        -------
        int
            The ingest queue depth after this request.

        Raises
        ------
        IngestError
            The rows do not match the federation schema or leave a
            dimension domain.
        ServiceOverloadedError
            The bounded ingest queue is full — backpressure; drain first.
        """
        if rows.num_rows == 0:
            raise ServiceError("an ingest request must contain at least one row")
        validate_rows(self.system.providers[0].table.schema, rows)
        tenant = self.registry.get(tenant_id) if tenant_id is not None else None
        with self._lock:
            if len(self._pending_ingest) >= self.config.max_pending_ingest:
                raise ServiceOverloadedError(
                    f"ingest queue is full ({self.config.max_pending_ingest} "
                    "requests); drain before submitting more"
                )
            self._pending_ingest.append((rows, provider_index, tenant))
            self.stats.ingest_requests += 1
            return len(self._pending_ingest)

    @property
    def num_pending_ingest(self) -> int:
        """Queued ingest requests awaiting the next drain."""
        with self._lock:
            return len(self._pending_ingest)

    @property
    def num_pending(self) -> int:
        """Admitted-but-undispatched submissions (deferred ones included)."""
        with self._lock:
            return len(self._pending) + len(self._deferred)

    @property
    def num_deferred(self) -> int:
        """Submissions parked by admission control, awaiting re-pricing."""
        with self._lock:
            return len(self._deferred)

    def discard_deferred(self, tenant_id: str | None = None) -> int:
        """Drop parked submissions (all of them, or one tenant's).

        Deferred work holds no reservation, so discarding it only frees the
        park.  Returns the number of submissions dropped.
        """
        with self._lock:
            kept = [
                submission
                for submission in self._deferred
                if tenant_id is not None and submission.tenant.tenant_id != tenant_id
            ]
            dropped = len(self._deferred) - len(kept)
            self._deferred = kept
            return dropped

    # -- dispatch ---------------------------------------------------------------

    def drain(self) -> list[TenantAnswer]:
        """Coalesce, execute, and settle everything pending.

        Deferred submissions are re-priced first (in canonical order) and
        admitted when they now fit — a workload whose predicates were
        released by other tenants' traffic since it was parked prices lower
        on re-admission.  The admitted set is then flattened canonically,
        chunked to ``max_batch_size``, executed FIFO with a bounded
        dispatch pipeline (settlement of completed batches overlaps the
        execution of later ones), and charged per submission.  Queued
        ingest requests run on the same dispatcher *after* the drain's
        batches, FIFO — writes (and any compaction they trigger) land
        where no provider session is open, and never between a
        submission's admission pricing and its execution (an ingest
        advancing the watermark mid-drain could invalidate the cached
        releases a zero-priced submission was admitted on).

        Drains serialise on an internal lock: the federation's providers
        hold mutable protocol state, so only one dispatch pipeline runs at
        a time; :meth:`submit` stays concurrent with a running drain.

        If a batch fails mid-drain, the queries that *did* complete have
        already released their noise — their actual charges are recorded
        against the owning tenants before the exception propagates (the
        ledger never under-reports real privacy loss); unexecuted work
        only has its reservation returned.

        Returns
        -------
        list of TenantAnswer
            One answer per completed submission, in canonical
            ``(tenant_id, submission order)`` order.  Deferred submissions
            that still cannot fit stay parked and are not in the list.
        """
        with self._drain_lock:
            admitted = self._admit_for_drain()
            with self._lock:
                ingests = self._pending_ingest
                self._pending_ingest = []
            if not admitted and not ingests:
                return []
            return self._run_pipeline(admitted, ingests)

    def _admit_for_drain(self) -> list[_Submission]:
        """Re-price the deferred park and collect the admitted set (locked)."""
        with self._lock:
            still_deferred: list[_Submission] = []
            for submission in sorted(
                self._deferred, key=lambda s: (s.tenant.tenant_id, s.order)
            ):
                bound_epsilon, bound_delta = self._price(submission.queries)
                if submission.tenant.budget.can_admit(bound_epsilon, bound_delta):
                    submission.tenant.budget.reserve(bound_epsilon, bound_delta)
                    submission.bound_epsilon = bound_epsilon
                    submission.bound_delta = bound_delta
                    submission.reserved = True
                    self._pending.append(submission)
                    self.stats.submissions_accepted += 1
                    self.stats.queries_accepted += len(submission.queries)
                else:
                    still_deferred.append(submission)
            self._deferred = still_deferred
            admitted = sorted(
                self._pending, key=lambda s: (s.tenant.tenant_id, s.order)
            )
            self._pending = []
            return admitted

    def _run_pipeline(
        self,
        admitted: Sequence[_Submission],
        ingests: Sequence[tuple[Table, int | None, Tenant | None]] = (),
    ) -> list[TenantAnswer]:
        """Flatten canonically, chunk, execute FIFO, settle as batches land.

        One dispatcher worker keeps provider state and FIFO order sound;
        up to ``max_in_flight_batches`` work items queue ahead of it, so
        the main thread settles (charges wallets, routes answers) for
        batch ``i`` while the dispatcher executes batch ``i+1``.  Ingest
        requests are work items on the same dispatcher, queued after every
        batch of the drain — no provider session is open there (a
        triggered compaction is safe), and no batch executes against data
        newer than what its submissions were priced on.
        """
        flat_queries: list[RangeQuery] = []
        flat_tokens: list[tuple[int, ...]] = []
        flat_tenants: list[str] = []
        offsets = [0]
        for submission in admitted:
            flat_queries.extend(submission.queries)
            flat_tokens.extend(submission.seed_tokens)
            flat_tenants.extend([submission.tenant.tenant_id] * len(submission.queries))
            offsets.append(offsets[-1] + len(submission.queries))
        chunks: list[tuple[QueryBatch, list[tuple[int, ...]], set[str]]] = []
        if flat_queries:
            combined = QueryBatch(tuple(flat_queries))
            start = 0
            for chunk in combined.chunked(self.config.max_batch_size):
                stop = start + len(chunk)
                chunks.append(
                    (chunk, flat_tokens[start:stop], set(flat_tenants[start:stop]))
                )
                start = stop
        # Batches first, then the queued ingests (FIFO): a drain with no
        # query work just applies the ingests.
        work: list[tuple[str, tuple]] = [("batch", entry) for entry in chunks]
        work.extend(("ingest", entry) for entry in ingests)

        def run(chunk: QueryBatch, tokens: list[tuple[int, ...]]) -> BatchResult:
            return self.system.execute_batch(
                chunk.queries,
                compute_exact=self.config.compute_exact,
                seed_tokens=tokens,
            )

        def run_ingest(
            rows: Table, provider_index: int | None, tenant: Tenant | None
        ) -> tuple[list[IngestReceipt | None], Tenant | None]:
            return self.system.ingest(rows, provider_index=provider_index), tenant

        results_flat: list[QueryResult] = []
        answers: list[TenantAnswer] = []
        settled = 0  # submissions fully settled (canonical prefix)

        def absorb_batch(batch_result: BatchResult) -> None:
            nonlocal settled
            results_flat.extend(batch_result.results)
            with self._lock:
                self.stats.wall_seconds += batch_result.wall_seconds
                while settled < len(admitted) and len(results_flat) >= offsets[settled + 1]:
                    submission = admitted[settled]
                    answers.append(
                        self._settle_submission(
                            submission,
                            tuple(results_flat[offsets[settled] : offsets[settled + 1]]),
                        )
                    )
                    settled += 1

        def absorb_ingest(
            outcome: tuple[Sequence[IngestReceipt | None], Tenant | None]
        ) -> None:
            receipts, tenant = outcome
            with self._lock:
                for receipt in receipts:
                    if receipt is None:
                        continue
                    self.stats.rows_ingested += receipt.rows
                    # Attribution happens when the rows actually land, so a
                    # failed or aborted drain never inflates the ledger.
                    if tenant is not None:
                        tenant.rows_ingested += receipt.rows
                    if receipt.compacted:
                        self.stats.compactions += 1

        def absorb(kind: str, future: Future) -> None:
            if kind == "batch":
                absorb_batch(future.result())
            else:
                absorb_ingest(future.result())

        in_flight: deque[tuple[str, Future]] = deque()
        try:
            with ThreadPoolExecutor(max_workers=1) as dispatcher:
                try:
                    for kind, payload in work:
                        while len(in_flight) >= self.config.max_in_flight_batches:
                            absorb(*in_flight.popleft())
                        if kind == "batch":
                            chunk, tokens, tenants = payload
                            in_flight.append(
                                ("batch", dispatcher.submit(run, chunk, tokens))
                            )
                            self.stats.batches_dispatched += 1
                            self.stats.queries_dispatched += len(chunk)
                            if len(tenants) > 1:
                                self.stats.cross_tenant_batches += 1
                        else:
                            rows, provider_index, tenant = payload
                            in_flight.append(
                                (
                                    "ingest",
                                    dispatcher.submit(
                                        run_ingest, rows, provider_index, tenant
                                    ),
                                )
                            )
                    while in_flight:
                        absorb(*in_flight.popleft())
                except BaseException:
                    # Stop the pipeline: queued work is cancelled; one item
                    # may already be running on the dispatcher — if it
                    # completes, its releases (or appended rows) happened
                    # too and must be absorbed before the accounting below.
                    for _, future in in_flight:
                        future.cancel()
                    for kind, future in in_flight:
                        if not future.cancelled():
                            try:
                                absorb(kind, future)
                            except BaseException:
                                pass
                    raise
        except BaseException:
            self._abort(admitted, offsets, results_flat, settled)
            raise
        return answers

    def _settle_submission(
        self, submission: _Submission, results: tuple[QueryResult, ...]
    ) -> TenantAnswer:
        """Charge one completed submission's actuals (caller holds the lock)."""
        tenant = submission.tenant
        charges = [
            (
                result.epsilon_spent,
                result.delta_spent,
                f"{tenant.tenant_id}/{submission.submission_id}: "
                + result.query.to_sql(),
            )
            for result in results
        ]
        # The noisy releases already happened; record the true actuals
        # unconditionally (same rationale as the system facade) and only
        # then hand the admission reservation back.
        total = tenant.budget.charge_spends(charges, enforce=False)
        tenant.budget.release(submission.bound_epsilon, submission.bound_delta)
        submission.reserved = False
        self.stats._note_charge(tenant.tenant_id, total.epsilon, total.delta)
        self.stats.answers_delivered += 1
        degraded = sum(1 for result in results if result.degraded)
        if degraded:
            # Degraded answers settle through the very same path — the
            # reservation/charge arithmetic needs no special case because
            # the per-query actuals already price only the delivered
            # releases — but they are counted so operators can see them.
            self.stats.degraded_queries += degraded
            tenant.degraded_queries += degraded
        return TenantAnswer(
            tenant_id=tenant.tenant_id,
            submission_id=submission.submission_id,
            results=results,
            epsilon_charged=total.epsilon,
            delta_charged=total.delta,
        )

    def _abort(
        self,
        admitted: Sequence[_Submission],
        offsets: Sequence[int],
        results_flat: Sequence[QueryResult],
        settled: int,
    ) -> None:
        """Account a failed drain honestly before the exception propagates.

        Queries that completed before the failure released real noise: their
        actual spends are charged to the owning tenants (a partially
        answered submission is charged for exactly its answered prefix —
        under-reporting real privacy loss is never an option).  Every
        unsettled reservation is returned; completed-but-unsettled answers
        are discarded, since their submissions never finish.
        """
        with self._lock:
            for index in range(settled, len(admitted)):
                submission = admitted[index]
                tenant = submission.tenant
                answered = results_flat[offsets[index] : offsets[index + 1]]
                if answered:
                    charges = [
                        (
                            result.epsilon_spent,
                            result.delta_spent,
                            f"{tenant.tenant_id}/{submission.submission_id} "
                            "(failed drain): " + result.query.to_sql(),
                        )
                        for result in answered
                    ]
                    total = tenant.budget.charge_spends(charges, enforce=False)
                    self.stats._note_charge(
                        tenant.tenant_id, total.epsilon, total.delta
                    )
                if submission.reserved:
                    tenant.budget.release(
                        submission.bound_epsilon, submission.bound_delta
                    )
                    submission.reserved = False

    # -- convenience ------------------------------------------------------------

    def serve(
        self, submissions: Sequence[tuple[str, Sequence[RangeQuery | str]]]
    ) -> list[TenantAnswer]:
        """Submit many ``(tenant_id, queries)`` pairs and drain once."""
        for tenant_id, queries in submissions:
            self.submit(tenant_id, queries)
        return self.drain()
