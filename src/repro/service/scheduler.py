"""Concurrent session scheduler: many tenants, one batched federation pass.

The protocol answers one analyst's workload at a time; a serving deployment
faces many concurrent tenants.  :class:`SessionScheduler` multiplexes them
onto one :class:`~repro.core.system.FederatedAQPSystem`:

* **Submission** — :meth:`SessionScheduler.submit` accepts a per-tenant list
  of queries, prices it with the :class:`~repro.cache.planner.ReusePlanner`'s
  sound upper bound, and admits it only when the bound fits the tenant's
  remaining budget (reserving the bound until the actual charge is known).
  Unaffordable work is rejected (:class:`~repro.errors.AdmissionError`) or
  deferred for re-pricing, per :class:`~repro.config.ServiceConfig`; a full
  pending queue sheds load with
  :class:`~repro.errors.ServiceOverloadedError` (backpressure).
* **Coalescing** — :meth:`SessionScheduler.drain` flattens the pending
  submissions in *canonical order* — ``(tenant_id, tenant-local submission
  sequence)``, independent of arrival interleaving — and chunks the combined
  workload into shared :class:`~repro.query.batch.QueryBatch`es of at most
  ``max_batch_size`` queries, amortising the metadata pass and the provider
  round-trips across tenants.
* **Dispatch** — batches execute FIFO on one dispatcher worker (the
  federation's providers are a shared, stateful resource; intra-batch
  parallelism comes from :class:`~repro.config.ParallelismConfig`'s
  thread/process fan-out), with up to ``max_in_flight_batches`` batches in
  the pipeline so result routing overlaps the next batch's execution.
* **Settlement** — per-query actual charges come back from the engine
  (reuse-discounted, zero for fully cached queries), are grouped per
  submission, charged atomically to the owning tenant's wallet, and returned
  as :class:`TenantAnswer`s.
* **Ingestion** — :meth:`SessionScheduler.submit_ingest` queues appended
  rows (validated at the door; bounded by ``max_pending_ingest``, shedding
  load with :class:`~repro.errors.ServiceOverloadedError`);
  :meth:`SessionScheduler.drain` runs the queued ingests on the single
  dispatcher worker *after* the drain's query batches, FIFO — so writes
  (and any compaction they trigger) land where providers hold no per-query
  sessions, every batch of the drain sees the data its submissions were
  priced against, and the next drain's queries see the new rows.

Three latency levers sit on top of that baseline, all off by default and
all answer-preserving (they move *when* work runs, never what it returns):

* **Cost-model-driven chunking** — with
  :attr:`~repro.config.ServiceConfig.drain_time_budget_ms` set, every
  submission is priced in work units by the
  :class:`~repro.service.costmodel.CostModel` (zone-map covering sets,
  covered-vs-straddler split, per-backend row volumes) and the drain's
  workload is packed by
  :func:`~repro.federation.partitioning.work_balanced_chunks` so no chunk's
  *estimated* wall-clock exceeds the budget; ``max_batch_size`` remains a
  hard per-chunk cap.  The model calibrates itself against each chunk's
  measured seconds, and estimates are recomputed whenever a provider's
  ``(layout_epoch, delta_watermark)`` moved since they were taken — a
  deferred submission re-admitted after a compaction is packed with fresh
  zone-map statistics, not the ones it was parked under.
* **Weighted-fair admission** — with per-tenant
  :attr:`~repro.service.tenants.Tenant.priority_class` weights (or
  :attr:`~repro.config.ServiceConfig.max_queries_per_drain` set), the drain
  picks submissions by deficit-weighted round robin
  (:func:`plan_weighted_admission`) instead of plain canonical order: a
  priority-``w`` tenant drains roughly ``w`` queries per contended slot for
  every priority-1 query, and an aging bound guarantees every submission
  drains within :attr:`~repro.config.ServiceConfig.starvation_limit`
  eligible drains regardless of weights.
* **Overlapped drain pipeline** — with
  :attr:`~repro.config.ServiceConfig.overlap_phases`, chunks run through
  the engine's phased API (:meth:`~repro.core.system.FederatedAQPSystem.
  begin_batch`): the dispatcher worker runs only the provider-facing
  summary/allocation and answer phases, while the combination math and
  settlement of chunk ``i`` run on the draining thread as the dispatcher
  already begins chunk ``i+1``'s summary phase.  (Ignored under SMC
  combination, whose aggregator-side RNG draws and network sends must stay
  on one thread.)

Determinism: every query's provider noise streams are keyed by
``(tenant, tenant-local sequence)`` (see
:meth:`~repro.service.tenants.Tenant.next_seed_token`), and coalescing order
is canonical — so under a fixed system seed, a tenant's answers are
bit-identical however its submissions interleave with other tenants', and
identical to running the tenant's workload alone, across the serial, thread,
and process backends.  (With the release caches enabled, *charges* can
additionally drop when another tenant's traffic already released a repeated
predicate — that cross-tenant reuse is what keeps fleet-wide epsilon spend
sublinear in tenant count on overlapping workloads.)
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from contextlib import nullcontext
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..config import ServiceConfig
from ..core.accounting import query_spend, split_query_budget
from ..core.result import BatchResult, QueryResult
from ..core.system import FederatedAQPSystem, PhasedExecution
from ..errors import AdmissionError, ServiceError, ServiceOverloadedError
from ..federation.partitioning import work_balanced_chunks
from ..ingest.delta import IngestReceipt, validate_rows
from ..query.batch import QueryBatch
from ..query.model import RangeQuery
from ..storage.table import Table
from .costmodel import CostModel
from .tenants import Tenant, TenantRegistry

__all__ = [
    "SubmissionReceipt",
    "TenantAnswer",
    "LatencyHistogram",
    "ServiceStats",
    "AdmissionCandidate",
    "plan_weighted_admission",
    "SessionScheduler",
]


@dataclass(frozen=True)
class SubmissionReceipt:
    """What :meth:`SessionScheduler.submit` hands back immediately.

    ``status`` is ``"queued"`` for admitted work (its budget bound is
    reserved) or ``"deferred"`` for parked work awaiting re-pricing.
    """

    submission_id: int
    tenant_id: str
    num_queries: int
    status: str
    bound_epsilon: float
    bound_delta: float


@dataclass(frozen=True)
class TenantAnswer:
    """One completed submission routed back to its tenant.

    ``epsilon_charged`` / ``delta_charged`` are the *exact* amounts debited
    from this tenant's wallet for this submission — the sum of the per-query
    actuals after reuse, never more than the bound reserved at admission
    (barring the documented LRU-eviction corner, where the ledger still
    records the true spend).

    ``latency_seconds`` is the submission's settlement latency within its
    drain: seconds from the drain's start until this answer was charged and
    routed.  It is what the priority classes and the time budget shape —
    the answer values themselves are latency-independent.
    """

    tenant_id: str
    submission_id: int
    results: tuple[QueryResult, ...]
    epsilon_charged: float
    delta_charged: float
    latency_seconds: float = 0.0

    @property
    def num_queries(self) -> int:
        """Number of answered queries in the submission."""
        return len(self.results)

    @property
    def values(self) -> tuple[float, ...]:
        """The per-query DP answers, in submission order."""
        return tuple(result.value for result in self.results)

    @property
    def degraded(self) -> bool:
        """Whether any answer was produced by a partial federation."""
        return any(result.degraded for result in self.results)

    @property
    def providers_missing(self) -> tuple[str, ...]:
        """Union of provider ids missing from any answer (first-seen order)."""
        seen: dict[str, None] = {}
        for result in self.results:
            for provider_id in result.providers_missing:
                seen.setdefault(provider_id, None)
        return tuple(seen)


@dataclass
class LatencyHistogram:
    """Recorded latency samples with percentile accessors.

    Samples are kept exactly (serving runs are bounded, and the benchmarks
    want true percentiles, not bucketed approximations).  Percentiles use
    linear interpolation between order statistics, matching
    ``numpy.percentile``'s default.
    """

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Add one sample (negative values are clamped to zero)."""
        self.samples.append(max(0.0, float(seconds)))

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (zero when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``; zero when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ServiceError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile latency (the SLO gate's usual subject)."""
        return self.percentile(99.0)

    def as_dict(self) -> dict[str, float]:
        """Summary statistics (count/mean/percentiles), not the raw samples."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


@dataclass
class ServiceStats:
    """Cumulative serving-layer counters (monotone; read anytime).

    The latency block feeds SLO monitoring: ``drain_latency`` is per-drain
    wall-clock, ``submission_latency`` per-submission settlement latency
    within its drain (what :attr:`TenantAnswer.latency_seconds` carries),
    ``chunk_latency`` per-chunk execution seconds.  With a drain time
    budget set, ``chunk_predicted_seconds`` / ``chunk_actual_seconds``
    record the cost model's per-chunk prediction against the measurement
    (aligned pairs, dispatch order) and ``cost_prediction_error`` mirrors
    the model's relative-error EWMA.
    """

    submissions_accepted: int = 0
    submissions_rejected: int = 0
    submissions_deferred: int = 0
    submissions_force_admitted: int = 0
    queries_accepted: int = 0
    batches_dispatched: int = 0
    queries_dispatched: int = 0
    cross_tenant_batches: int = 0
    answers_delivered: int = 0
    degraded_queries: int = 0
    ingest_requests: int = 0
    rows_ingested: int = 0
    compactions: int = 0
    epsilon_charged: float = 0.0
    delta_charged: float = 0.0
    epsilon_by_tenant: dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    max_pending_seen: int = 0
    cost_prediction_error: float = 0.0
    chunk_predicted_seconds: list[float] = field(default_factory=list)
    chunk_actual_seconds: list[float] = field(default_factory=list)
    drain_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    submission_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    chunk_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def _note_charge(self, tenant_id: str, epsilon: float, delta: float) -> None:
        self.epsilon_charged += epsilon
        self.delta_charged += delta
        self.epsilon_by_tenant[tenant_id] = (
            self.epsilon_by_tenant.get(tenant_id, 0.0) + epsilon
        )

    def as_dict(self) -> dict[str, float]:
        """Flat numeric view: scalar counters plus ``<histogram>_<stat>`` keys.

        Per-tenant and per-chunk collections are omitted — they are
        unbounded in cardinality; read them from the attributes directly.
        """
        out: dict[str, float] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, LatencyHistogram):
                for stat, number in value.as_dict().items():
                    out[f"{name}_{stat}"] = number
            elif isinstance(value, (int, float)):
                out[name] = value
        return out


@dataclass
class _Submission:
    """Internal bookkeeping of one accepted or deferred submission.

    ``query_costs`` caches the cost model's per-query unit estimates, valid
    only under ``cost_signature`` (the layout signature they were computed
    against); ``drains_skipped`` counts eligible drains that left the
    submission behind under a query cap — the aging input of the
    weighted-fair planner.
    """

    submission_id: int
    tenant: Tenant
    order: int  # tenant-local submission sequence: the canonical sort key
    queries: tuple[RangeQuery, ...]
    seed_tokens: tuple[tuple[int, ...], ...]
    bound_epsilon: float = 0.0
    bound_delta: float = 0.0
    reserved: bool = False
    query_costs: tuple[float, ...] | None = None
    cost_signature: tuple[tuple[int, int], ...] | None = None
    drains_skipped: int = 0
    trace_ctx: tuple[str, str] | None = None


@dataclass(frozen=True)
class AdmissionCandidate:
    """One pending submission as :func:`plan_weighted_admission` sees it."""

    tenant_id: str
    order: int
    num_queries: int
    priority_class: int = 1
    drains_skipped: int = 0


def plan_weighted_admission(
    candidates: Sequence[AdmissionCandidate],
    deficits: dict[str, float] | None = None,
    *,
    max_queries: int | None = None,
    starvation_limit: int = 8,
) -> tuple[list[int], list[int], dict[str, float]]:
    """Deficit-weighted fair pick order over pending submissions (pure).

    The scheduler's admission planner, separated from its locking and
    wallet plumbing so fairness properties can be tested directly.  Two
    stages:

    1. **Aging** — every candidate already skipped ``starvation_limit - 1``
       eligible drains is admitted unconditionally, in canonical
       ``(tenant_id, order)`` order, *before* the query cap is considered.
       This is the starvation bound: a submission drains at latest on its
       ``starvation_limit``-th eligible drain, whatever the weights.
    2. **Deficit round robin** — each backlogged tenant holds a deficit
       balance (carried in ``deficits`` across drains).  Per pick, every
       backlogged tenant earns its ``priority_class``; the tenant with the
       highest balance (ties to the smallest ``tenant_id``) admits its
       oldest pending submission and pays the submission's query count.  A
       priority-``w`` tenant therefore drains ``w`` queries per contended
       pick for every priority-1 query.  Picking stops once ``max_queries``
       total queries are admitted; the pick that crosses the cap is the
       drain's last (submissions are atomic, never split).

    Within a tenant, submissions always admit oldest-first — weights
    reorder tenants against each other, never a tenant against itself.

    Parameters
    ----------
    candidates:
        The pending submissions.  Candidates of the same tenant must share
        a ``priority_class`` (the scheduler guarantees this; the planner
        reads the weight from the tenant's oldest candidate).
    deficits:
        Balances carried from the previous drain (missing tenants start at
        zero).  Not mutated.
    max_queries:
        Cap on the drain's total admitted queries; ``None`` admits
        everything (the planner then only determines pick *order*).
    starvation_limit:
        The aging bound ``K`` (>= 1); ``K = 1`` admits everything in
        canonical order.

    Returns
    -------
    (picked, forced, carried)
        ``picked``: candidate indices in pick order (the drain's coalescing
        order).  ``forced``: the subset admitted by aging.  ``carried``:
        deficit balances to carry into the next drain — only tenants that
        still have pending candidates keep a balance (a drained tenant's
        deficit resets, the standard DRR idle rule).
    """
    if max_queries is not None and max_queries < 1:
        raise ServiceError(f"max_queries must be >= 1, got {max_queries}")
    if starvation_limit < 1:
        raise ServiceError(f"starvation_limit must be >= 1, got {starvation_limit}")
    for candidate in candidates:
        if candidate.num_queries < 1:
            raise ServiceError("candidates must contain at least one query")
        if candidate.priority_class < 1:
            raise ServiceError(
                f"priority_class must be >= 1, got {candidate.priority_class}"
            )
    canonical = sorted(
        range(len(candidates)),
        key=lambda i: (candidates[i].tenant_id, candidates[i].order),
    )
    queues: dict[str, deque[int]] = {}
    priority: dict[str, int] = {}
    for index in canonical:
        candidate = candidates[index]
        queues.setdefault(candidate.tenant_id, deque()).append(index)
        priority.setdefault(candidate.tenant_id, candidate.priority_class)
    balance = {
        tenant_id: (deficits or {}).get(tenant_id, 0.0) for tenant_id in queues
    }
    picked: list[int] = []
    forced: list[int] = []
    admitted_queries = 0

    def admit(index: int) -> None:
        nonlocal admitted_queries
        candidate = candidates[index]
        queues[candidate.tenant_id].remove(index)
        picked.append(index)
        balance[candidate.tenant_id] -= candidate.num_queries
        admitted_queries += candidate.num_queries

    for index in canonical:
        if candidates[index].drains_skipped >= starvation_limit - 1:
            forced.append(index)
            admit(index)

    while any(queues.values()):
        if max_queries is not None and admitted_queries >= max_queries:
            break
        active = sorted(tenant_id for tenant_id, queue in queues.items() if queue)
        for tenant_id in active:
            balance[tenant_id] += priority[tenant_id]
        best = min(active, key=lambda tenant_id: (-balance[tenant_id], tenant_id))
        admit(queues[best][0])

    carried = {
        tenant_id: balance[tenant_id]
        for tenant_id, queue in queues.items()
        if queue
    }
    return picked, forced, carried


class SessionScheduler:
    """Multiplexes per-tenant submissions onto one federated system.

    Parameters
    ----------
    system:
        The federation to serve.  Must not carry its own end-user budget —
        wallets live in the registry, one per tenant.
    registry:
        The tenant registry; tenants must be registered before submitting.
    config:
        Serving policy; defaults to the system's
        :attr:`~repro.config.SystemConfig.service`.
    """

    def __init__(
        self,
        system: FederatedAQPSystem,
        registry: TenantRegistry,
        *,
        config: ServiceConfig | None = None,
    ) -> None:
        if system.end_user_budget is not None:
            raise ServiceError(
                "a served system must not hold its own end-user budget; "
                "per-tenant budgets live in the TenantRegistry"
            )
        self.system = system
        self.registry = registry
        self.config = config or system.config.service
        self.stats = ServiceStats()
        self.cost_model = CostModel(system)
        # ``_lock`` guards the queues, the wallets (reserve / charge /
        # release), and the stats; ``_drain_lock`` serialises whole drains —
        # the federation's providers hold mutable protocol state, so two
        # dispatch pipelines must never interleave on them.
        self._lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._pending: list[_Submission] = []
        self._deferred: list[_Submission] = []
        self._pending_ingest: list[tuple[Table, int | None, Tenant | None]] = []
        self._next_submission_id = 0
        self._query_budget = split_query_budget(system.config.privacy)
        # Weighted-fair deficit balances carried across drains, per tenant.
        self._deficits: dict[str, float] = {}
        self._tracer = system.obs.tracer
        system.obs.metrics.register_group("service", lambda: self.stats.as_dict())

    def _end_trace(self, trace_ctx, **tags) -> None:
        """Close a ``begin_trace`` root if tracing is on (idempotent)."""
        if trace_ctx is not None and self._tracer is not None:
            self._tracer.end_span(trace_ctx, **tags)

    # -- admission --------------------------------------------------------------

    def _price(self, queries: Sequence[RangeQuery]) -> tuple[float, float]:
        """Sound upper bound of a submission's charge.

        With the release caches enabled the :class:`ReusePlanner` lowers the
        bound to zero for queries guaranteed to be served by post-processing;
        otherwise every query is bounded at its full federation spend.
        """
        if self.system.config.cache.enabled:
            plan = self.system.aggregator.plan_reuse(queries, self._query_budget)
            return plan.upper_bound
        spend = query_spend(self._query_budget, self.system.num_providers)
        return (len(queries) * spend.epsilon, len(queries) * spend.delta)

    def submit(
        self, tenant_id: str, queries: Sequence[RangeQuery | str]
    ) -> SubmissionReceipt:
        """Accept (or defer, or refuse) one tenant's workload.

        Parameters
        ----------
        tenant_id:
            A registered tenant.
        queries:
            The workload: :class:`RangeQuery` objects or SQL texts.

        Returns
        -------
        SubmissionReceipt
            Queued or deferred acknowledgement; answers arrive from
            :meth:`drain`.

        Raises
        ------
        UnknownTenantError
            Unregistered ``tenant_id``.
        ServiceOverloadedError
            The bounded pending queue (or, for deferrals, the separately
            bounded deferred park) is full — backpressure: retry after a
            drain, or :meth:`discard_deferred`.
        AdmissionError
            The priced bound does not fit the tenant's remaining budget and
            the submission cannot be deferred — because the policy is
            ``"reject"``, or because the release caches are disabled, in
            which case the price can never drop and parking the work would
            only wedge the queue.  Atomic: nothing is queued, reserved, or
            charged.
        """
        if not queries:
            raise ServiceError("a submission must contain at least one query")
        tenant = self.registry.get(tenant_id)
        trace_ctx = (
            self._tracer.begin_trace(
                "submission", tenant=tenant_id, queries=len(queries)
            )
            if self._tracer is not None
            else None
        )
        with self._lock:
            # Cheap shed before any pricing work: when both queues are full
            # no submission can be accepted whatever it prices at.
            if (
                len(self._pending) >= self.config.max_pending
                and len(self._deferred) >= self.config.max_pending
            ):
                self._end_trace(trace_ctx, status="overloaded")
                raise ServiceOverloadedError(
                    f"pending queue and deferred park are both full "
                    f"({self.config.max_pending} submissions each); drain first"
                )
        range_queries = tuple(self.system._coerce_query(query) for query in queries)
        # Pricing peeks the release caches and may solve allocations — keep
        # it off the queue/wallet lock so concurrent settlement is never
        # blocked behind it.  The bound tolerates cache-state races by
        # design (see the planner's documented eviction corner); the
        # affordability check is re-taken under the lock before reserving.
        with (
            self._tracer.span("submission.pricing", parent=trace_ctx)
            if trace_ctx is not None
            else nullcontext()
        ):
            bound_epsilon, bound_delta = self._price(range_queries)
        # Cost estimation rides the same off-lock slot.  The estimate is a
        # packing hint, not a correctness input: if a compaction lands
        # between here and the drain, the recorded signature no longer
        # matches and the drain re-estimates against the fresh layout.
        query_costs: tuple[float, ...] | None = None
        cost_signature: tuple[tuple[int, int], ...] | None = None
        if self.config.drain_time_budget_ms is not None:
            cost_signature = self.cost_model.layout_signature()
            query_costs = tuple(
                estimate.units for estimate in self.cost_model.estimate(range_queries)
            )
        with self._lock:
            ledger = self.system.obs.ledger
            if ledger is not None and tenant.budget.audit is None:
                tenant.budget.audit = ledger
                tenant.budget.audit_owner = tenant_id
            affordable = tenant.budget.can_admit(bound_epsilon, bound_delta)
            defer = (
                not affordable
                and self.config.admission == "defer"
                and self.system.config.cache.enabled
            )
            if not affordable and not defer:
                self.stats.submissions_rejected += 1
                self._end_trace(trace_ctx, status="rejected")
                raise AdmissionError(
                    f"tenant {tenant_id!r}: bound ({bound_epsilon}, {bound_delta}) "
                    f"exceeds remaining budget "
                    f"({tenant.remaining_epsilon}, {tenant.remaining_delta})"
                )
            # Pending and deferred are bounded separately: a tenant parking
            # never-affordable work can fill the deferred park, but it cannot
            # starve other tenants' admissible submissions.
            if affordable and len(self._pending) >= self.config.max_pending:
                self._end_trace(trace_ctx, status="overloaded")
                raise ServiceOverloadedError(
                    f"pending queue is full ({self.config.max_pending} submissions); "
                    "drain before submitting more"
                )
            if defer and len(self._deferred) >= self.config.max_pending:
                self._end_trace(trace_ctx, status="overloaded")
                raise ServiceOverloadedError(
                    f"deferred park is full ({self.config.max_pending} submissions); "
                    "drain (after budgets or caches changed) or discard_deferred()"
                )
            submission = _Submission(
                submission_id=self._next_submission_id,
                tenant=tenant,
                order=tenant.sequence,
                queries=range_queries,
                seed_tokens=tuple(tenant.next_seed_token() for _ in range_queries),
                bound_epsilon=bound_epsilon,
                bound_delta=bound_delta,
                query_costs=query_costs,
                cost_signature=cost_signature,
                trace_ctx=trace_ctx,
            )
            self._next_submission_id += 1
            if affordable:
                tenant.budget.reserve(bound_epsilon, bound_delta)
                submission.reserved = True
                self._pending.append(submission)
                self.stats.submissions_accepted += 1
                self.stats.queries_accepted += len(range_queries)
                status = "queued"
            else:
                self._deferred.append(submission)
                self.stats.submissions_deferred += 1
                status = "deferred"
            self.stats.max_pending_seen = max(
                self.stats.max_pending_seen, len(self._pending) + len(self._deferred)
            )
            return SubmissionReceipt(
                submission_id=submission.submission_id,
                tenant_id=tenant_id,
                num_queries=len(range_queries),
                status=status,
                bound_epsilon=bound_epsilon,
                bound_delta=bound_delta,
            )

    def submit_ingest(
        self,
        rows: Table,
        *,
        provider_index: int | None = None,
        tenant_id: str | None = None,
    ) -> int:
        """Queue a batch of rows for ingestion on the next drain.

        Ingest requests ride the same dispatcher as query batches: the next
        :meth:`drain` applies them after its batches, FIFO, where no
        per-query session is open — in-flight queries keep their pinned
        snapshots, admission pricing stays consistent with the data the
        drain's batches actually see, and a triggered compaction is always
        safe.  Rows are validated here, at the door, so one writer's
        malformed batch is refused with a client error instead of aborting
        other tenants' drain later.

        Parameters
        ----------
        rows:
            The appended rows (provider schema; row order is preserved).
        provider_index:
            Target one provider; by default rows are dealt round-robin
            across the federation (see
            :meth:`~repro.core.system.FederatedAQPSystem.ingest`).
        tenant_id:
            Optional attribution: the registered tenant whose
            :attr:`~repro.service.tenants.Tenant.rows_ingested` ledger the
            rows are counted against — credited when the rows actually
            land, not at submit.  Ingestion spends no privacy budget.

        Returns
        -------
        int
            The ingest queue depth after this request.

        Raises
        ------
        IngestError
            The rows do not match the federation schema or leave a
            dimension domain.
        ServiceOverloadedError
            The bounded ingest queue is full — backpressure; drain first.
        """
        if rows.num_rows == 0:
            raise ServiceError("an ingest request must contain at least one row")
        validate_rows(self.system.providers[0].table.schema, rows)
        tenant = self.registry.get(tenant_id) if tenant_id is not None else None
        with self._lock:
            if len(self._pending_ingest) >= self.config.max_pending_ingest:
                raise ServiceOverloadedError(
                    f"ingest queue is full ({self.config.max_pending_ingest} "
                    "requests); drain before submitting more"
                )
            self._pending_ingest.append((rows, provider_index, tenant))
            self.stats.ingest_requests += 1
            return len(self._pending_ingest)

    @property
    def num_pending_ingest(self) -> int:
        """Queued ingest requests awaiting the next drain."""
        with self._lock:
            return len(self._pending_ingest)

    @property
    def num_pending(self) -> int:
        """Admitted-but-undispatched submissions (deferred ones included)."""
        with self._lock:
            return len(self._pending) + len(self._deferred)

    @property
    def num_deferred(self) -> int:
        """Submissions parked by admission control, awaiting re-pricing."""
        with self._lock:
            return len(self._deferred)

    def transport_stats(self):
        """Real framed wire traffic the drains have put on the transport.

        Drains run over whatever transport the system was configured with
        (:class:`~repro.config.TransportConfig`); answers and epsilon
        charges are bit-identical across transports, so only these
        counters — and wall-clock — change when a deployment moves from
        in-process to loopback or sockets.
        """
        return self.system.transport_stats()

    def discard_deferred(self, tenant_id: str | None = None) -> int:
        """Drop parked submissions (all of them, or one tenant's).

        Deferred work holds no reservation, so discarding it only frees the
        park.  Returns the number of submissions dropped.
        """
        with self._lock:
            kept = [
                submission
                for submission in self._deferred
                if tenant_id is not None and submission.tenant.tenant_id != tenant_id
            ]
            dropped = len(self._deferred) - len(kept)
            self._deferred = kept
            return dropped

    # -- dispatch ---------------------------------------------------------------

    def drain(self) -> list[TenantAnswer]:
        """Coalesce, execute, and settle everything pending.

        Deferred submissions are re-priced first (in canonical order) and
        admitted when they now fit — a workload whose predicates were
        released by other tenants' traffic since it was parked prices lower
        on re-admission.  The admitted set is then flattened canonically,
        chunked to ``max_batch_size``, executed FIFO with a bounded
        dispatch pipeline (settlement of completed batches overlaps the
        execution of later ones), and charged per submission.  Queued
        ingest requests run on the same dispatcher *after* the drain's
        batches, FIFO — writes (and any compaction they trigger) land
        where no provider session is open, and never between a
        submission's admission pricing and its execution (an ingest
        advancing the watermark mid-drain could invalidate the cached
        releases a zero-priced submission was admitted on).

        Drains serialise on an internal lock: the federation's providers
        hold mutable protocol state, so only one dispatch pipeline runs at
        a time; :meth:`submit` stays concurrent with a running drain.

        If a batch fails mid-drain, the queries that *did* complete have
        already released their noise — their actual charges are recorded
        against the owning tenants before the exception propagates (the
        ledger never under-reports real privacy loss); unexecuted work
        only has its reservation returned.

        Returns
        -------
        list of TenantAnswer
            One answer per completed submission, in the drain's coalescing
            order — canonical ``(tenant_id, submission order)`` under
            uniform priorities (the default), weighted-fair pick order
            otherwise (within a tenant always oldest-first, so per-tenant
            answer order is canonical regardless).  Deferred submissions
            that still cannot fit stay parked; with
            ``max_queries_per_drain`` set, admitted work beyond the cap
            stays pending for the next drain.  Neither is in the list.
        """
        with self._drain_lock:
            drain_ctx = (
                self._tracer.begin_trace("drain")
                if self._tracer is not None
                else None
            )
            admitted: list[_Submission] = []
            try:
                with (
                    self._tracer.span("drain.admission", parent=drain_ctx)
                    if drain_ctx is not None
                    else nullcontext()
                ):
                    admitted = self._admit_for_drain()
                    if self.config.drain_time_budget_ms is not None:
                        self._refresh_costs(admitted)
                with self._lock:
                    ingests = self._pending_ingest
                    self._pending_ingest = []
                if not admitted and not ingests:
                    return []
                return self._run_pipeline(admitted, ingests, drain_ctx=drain_ctx)
            finally:
                self._end_trace(drain_ctx, submissions=len(admitted))

    def _admit_for_drain(self) -> list[_Submission]:
        """Re-price the deferred park and pick the admitted set (locked)."""
        with self._lock:
            still_deferred: list[_Submission] = []
            for submission in sorted(
                self._deferred, key=lambda s: (s.tenant.tenant_id, s.order)
            ):
                bound_epsilon, bound_delta = self._price(submission.queries)
                if submission.tenant.budget.can_admit(bound_epsilon, bound_delta):
                    submission.tenant.budget.reserve(bound_epsilon, bound_delta)
                    submission.bound_epsilon = bound_epsilon
                    submission.bound_delta = bound_delta
                    submission.reserved = True
                    self._pending.append(submission)
                    self.stats.submissions_accepted += 1
                    self.stats.queries_accepted += len(submission.queries)
                else:
                    still_deferred.append(submission)
            self._deferred = still_deferred
            pending = self._pending
            self._pending = []
            if not pending:
                return []
            uniform = len({s.tenant.priority_class for s in pending}) == 1
            if (
                self.config.max_queries_per_drain is None
                and uniform
                and not self._deficits
                and all(s.drains_skipped == 0 for s in pending)
            ):
                # No cap, no weights in play, nothing carried over: plain
                # canonical coalescing, exactly the uncontended baseline.
                return sorted(pending, key=lambda s: (s.tenant.tenant_id, s.order))
            candidates = [
                AdmissionCandidate(
                    tenant_id=s.tenant.tenant_id,
                    order=s.order,
                    num_queries=len(s.queries),
                    priority_class=s.tenant.priority_class,
                    drains_skipped=s.drains_skipped,
                )
                for s in pending
            ]
            picked, forced, carried = plan_weighted_admission(
                candidates,
                self._deficits,
                max_queries=self.config.max_queries_per_drain,
                starvation_limit=self.config.starvation_limit,
            )
            self._deficits = carried
            self.stats.submissions_force_admitted += len(forced)
            chosen = set(picked)
            for index, submission in enumerate(pending):
                if index not in chosen:
                    # Left behind under the cap: reservation stays held,
                    # age advances (the planner's starvation bound input).
                    submission.drains_skipped += 1
                    self._pending.append(submission)
            return [pending[index] for index in picked]

    def _refresh_costs(self, admitted: Sequence[_Submission]) -> None:
        """Re-estimate stale query costs against the current layout.

        A submission's cached estimate is only valid under the layout
        signature it was computed with: a compaction between submit (or
        deferral) and drain rewrites zone maps and occupancy, and an ingest
        changes the delta volume every query scans.  Runs under the drain
        lock, where provider state is quiescent.
        """
        signature = self.cost_model.layout_signature()
        stale = [s for s in admitted if s.cost_signature != signature]
        if not stale:
            return
        estimates = self.cost_model.estimate(
            [query for submission in stale for query in submission.queries]
        )
        position = 0
        for submission in stale:
            count = len(submission.queries)
            submission.query_costs = tuple(
                estimate.units
                for estimate in estimates[position : position + count]
            )
            submission.cost_signature = signature
            position += count

    def _run_pipeline(
        self,
        admitted: Sequence[_Submission],
        ingests: Sequence[tuple[Table, int | None, Tenant | None]] = (),
        *,
        drain_ctx: tuple[str, str] | None = None,
    ) -> list[TenantAnswer]:
        """Flatten in pick order, chunk, execute FIFO, settle as chunks land.

        One dispatcher worker keeps provider state and FIFO order sound;
        up to ``max_in_flight_batches`` work items queue ahead of it, so
        the drain thread settles batch ``i`` while the dispatcher executes
        batch ``i+1``.  With ``overlap_phases`` (non-SMC only) the chunks
        run through the phased engine API: the dispatcher runs just the
        provider-facing summary/allocation and answer phases, and the
        combination math moves into this thread's settlement — the
        dispatcher begins chunk ``i+1``'s summary while chunk ``i``
        combines and settles here.  Ingest requests are work items on the
        same dispatcher, queued after every batch of the drain — no
        provider session is open there (a triggered compaction is safe),
        and no batch executes against data newer than what its submissions
        were priced on.

        With ``drain_time_budget_ms`` set, chunk boundaries come from
        :func:`~repro.federation.partitioning.work_balanced_chunks` over
        the cost model's per-query unit estimates (``max_batch_size``
        stays a hard cap), and every executed chunk's measurement is fed
        back into the model's calibration.
        """
        drain_started = time.perf_counter()
        budget_ms = self.config.drain_time_budget_ms
        flat_queries: list[RangeQuery] = []
        flat_tokens: list[tuple[int, ...]] = []
        flat_tenants: list[str] = []
        flat_costs: list[float] = []
        offsets = [0]
        for submission in admitted:
            flat_queries.extend(submission.queries)
            flat_tokens.extend(submission.seed_tokens)
            flat_tenants.extend([submission.tenant.tenant_id] * len(submission.queries))
            if budget_ms is not None and submission.query_costs is not None:
                flat_costs.extend(submission.query_costs)
            offsets.append(offsets[-1] + len(submission.queries))
        # Chunk boundaries as (start, stop) index ranges over the flattened
        # workload: count-chunking by default, work packing under a time
        # budget (boundaries only ever move, order never changes).
        boundaries: list[tuple[int, int]] = []
        with (
            self._tracer.span(
                "drain.chunking", parent=drain_ctx, queries=len(flat_queries)
            )
            if drain_ctx is not None
            else nullcontext()
        ):
            if flat_queries:
                if budget_ms is not None and len(flat_costs) == len(flat_queries):
                    budget_units = (
                        budget_ms / 1000.0
                    ) / self.cost_model.seconds_per_unit
                    groups = work_balanced_chunks(
                        list(range(len(flat_queries))),
                        flat_costs,
                        budget_units,
                        max_size=self.config.max_batch_size,
                    )
                    boundaries = [(group[0], group[-1] + 1) for group in groups]
                else:
                    size = self.config.max_batch_size
                    boundaries = [
                        (start, min(start + size, len(flat_queries)))
                        for start in range(0, len(flat_queries), size)
                    ]
        chunks: list[
            tuple[QueryBatch, list[tuple[int, ...]], set[str], float | None]
        ] = []
        for start, stop in boundaries:
            predicted = sum(flat_costs[start:stop]) if flat_costs else None
            chunks.append(
                (
                    QueryBatch(tuple(flat_queries[start:stop])),
                    flat_tokens[start:stop],
                    set(flat_tenants[start:stop]),
                    predicted,
                )
            )
        # Batches first, then the queued ingests (FIFO): a drain with no
        # query work just applies the ingests.
        work: list[tuple[str, tuple]] = [("batch", entry) for entry in chunks]
        work.extend(("ingest", entry) for entry in ingests)
        # Phase overlap is unavailable under SMC combination: the secure
        # exchange draws from the aggregator's RNG and sends on the shared
        # network, both of which must stay on the dispatcher thread.
        overlap = self.config.overlap_phases and not self.system.config.use_smc_for_result

        def chunk_span(name: str, **tags):
            # Opened on the dispatcher thread: parenting under the drain
            # root sets that thread's span context, so the engine's batch
            # phase spans (and everything below them) land in the drain's
            # trace rather than starting traces of their own.
            if drain_ctx is None:
                return nullcontext()
            return self._tracer.span(name, parent=drain_ctx, **tags)

        def run(chunk: QueryBatch, tokens: list[tuple[int, ...]]) -> BatchResult:
            with chunk_span("drain.chunk", queries=len(chunk)):
                return self.system.execute_batch(
                    chunk.queries,
                    compute_exact=self.config.compute_exact,
                    seed_tokens=tokens,
                )

        def run_phased(
            chunk: QueryBatch, tokens: list[tuple[int, ...]]
        ) -> PhasedExecution:
            with chunk_span("drain.chunk", queries=len(chunk), overlapped=True):
                phased = self.system.begin_batch(
                    chunk.queries,
                    compute_exact=self.config.compute_exact,
                    seed_tokens=tokens,
                )
                try:
                    phased.collect()
                except BaseException:
                    # collect() already released the sessions on its own
                    # failure paths; abandon() is idempotent and covers any
                    # gap between begin and collect.
                    phased.abandon()
                    raise
                return phased

        def run_ingest(
            rows: Table, provider_index: int | None, tenant: Tenant | None
        ) -> tuple[list[IngestReceipt | None], Tenant | None]:
            with chunk_span("drain.ingest", rows=rows.num_rows):
                return self.system.ingest(rows, provider_index=provider_index), tenant

        results_flat: list[QueryResult] = []
        answers: list[TenantAnswer] = []
        settled = 0  # submissions fully settled (pick-order prefix)

        def absorb_batch(batch_result: BatchResult, predicted: float | None) -> None:
            nonlocal settled
            results_flat.extend(batch_result.results)
            with self._lock:
                self.stats.wall_seconds += batch_result.wall_seconds
                self.stats.chunk_latency.record(batch_result.wall_seconds)
                if predicted is not None:
                    # Error is judged against the pre-update scale — what
                    # the packing actually predicted at dispatch.
                    self.stats.chunk_predicted_seconds.append(
                        self.cost_model.predicted_seconds(predicted)
                    )
                    self.stats.chunk_actual_seconds.append(batch_result.wall_seconds)
                    self.cost_model.observe(predicted, batch_result.wall_seconds)
                    self.stats.cost_prediction_error = self.cost_model.prediction_error
                while settled < len(admitted) and len(results_flat) >= offsets[settled + 1]:
                    submission = admitted[settled]
                    answers.append(
                        self._settle_submission(
                            submission,
                            tuple(results_flat[offsets[settled] : offsets[settled + 1]]),
                            latency_seconds=time.perf_counter() - drain_started,
                        )
                    )
                    settled += 1

        def absorb_ingest(
            outcome: tuple[Sequence[IngestReceipt | None], Tenant | None]
        ) -> None:
            receipts, tenant = outcome
            with self._lock:
                for receipt in receipts:
                    if receipt is None:
                        continue
                    self.stats.rows_ingested += receipt.rows
                    # Attribution happens when the rows actually land, so a
                    # failed or aborted drain never inflates the ledger.
                    if tenant is not None:
                        tenant.rows_ingested += receipt.rows
                    if receipt.compacted:
                        self.stats.compactions += 1

        def absorb(kind: str, future: Future, predicted: float | None) -> None:
            if kind == "batch":
                outcome = future.result()
                if overlap:
                    # The combination phase runs here, on the drain thread,
                    # while the dispatcher is already deep in the next
                    # chunk's provider phases.
                    outcome = outcome.settle()
                absorb_batch(outcome, predicted)
            else:
                absorb_ingest(future.result())

        in_flight: deque[tuple[str, Future, float | None]] = deque()
        try:
            with ThreadPoolExecutor(max_workers=1) as dispatcher:
                try:
                    for kind, payload in work:
                        while len(in_flight) >= self.config.max_in_flight_batches:
                            absorb(*in_flight.popleft())
                        if kind == "batch":
                            chunk, tokens, tenants, predicted = payload
                            runner = run_phased if overlap else run
                            in_flight.append(
                                (
                                    "batch",
                                    dispatcher.submit(runner, chunk, tokens),
                                    predicted,
                                )
                            )
                            self.stats.batches_dispatched += 1
                            self.stats.queries_dispatched += len(chunk)
                            if len(tenants) > 1:
                                self.stats.cross_tenant_batches += 1
                        else:
                            rows, provider_index, tenant = payload
                            in_flight.append(
                                (
                                    "ingest",
                                    dispatcher.submit(
                                        run_ingest, rows, provider_index, tenant
                                    ),
                                    None,
                                )
                            )
                    while in_flight:
                        absorb(*in_flight.popleft())
                except BaseException:
                    # Stop the pipeline: queued work is cancelled; one item
                    # may already be running on the dispatcher — if it
                    # completes, its releases (or appended rows) happened
                    # too and must be absorbed before the accounting below.
                    for _, future, _ in in_flight:
                        future.cancel()
                    for kind, future, predicted in in_flight:
                        if not future.cancelled():
                            try:
                                absorb(kind, future, predicted)
                            except BaseException:
                                pass
                    raise
        except BaseException:
            self._abort(admitted, offsets, results_flat, settled)
            raise
        with self._lock:
            self.stats.drain_latency.record(time.perf_counter() - drain_started)
        return answers

    def _settle_submission(
        self,
        submission: _Submission,
        results: tuple[QueryResult, ...],
        latency_seconds: float = 0.0,
    ) -> TenantAnswer:
        """Charge one completed submission's actuals (caller holds the lock)."""
        tenant = submission.tenant
        charges = [
            (
                result.epsilon_spent,
                result.delta_spent,
                f"{tenant.tenant_id}/{submission.submission_id}: "
                + result.query.to_sql(),
            )
            for result in results
        ]
        # The noisy releases already happened; record the true actuals
        # unconditionally (same rationale as the system facade) and only
        # then hand the admission reservation back.
        with (
            self._tracer.span(
                "submission.settle",
                parent=submission.trace_ctx,
                tenant=tenant.tenant_id,
            )
            if submission.trace_ctx is not None and self._tracer is not None
            else nullcontext()
        ):
            total = tenant.budget.charge_spends(
                charges,
                enforce=False,
                degraded=[result.degraded for result in results],
            )
            tenant.budget.release(submission.bound_epsilon, submission.bound_delta)
        submission.reserved = False
        self.stats._note_charge(tenant.tenant_id, total.epsilon, total.delta)
        self.stats.answers_delivered += 1
        degraded = sum(1 for result in results if result.degraded)
        if degraded:
            # Degraded answers settle through the very same path — the
            # reservation/charge arithmetic needs no special case because
            # the per-query actuals already price only the delivered
            # releases — but they are counted so operators can see them.
            self.stats.degraded_queries += degraded
            tenant.degraded_queries += degraded
        self.stats.submission_latency.record(latency_seconds)
        self._end_trace(
            submission.trace_ctx,
            status="settled",
            epsilon=total.epsilon,
            delta=total.delta,
            degraded=degraded,
        )
        return TenantAnswer(
            tenant_id=tenant.tenant_id,
            submission_id=submission.submission_id,
            results=results,
            epsilon_charged=total.epsilon,
            delta_charged=total.delta,
            latency_seconds=max(0.0, latency_seconds),
        )

    def _abort(
        self,
        admitted: Sequence[_Submission],
        offsets: Sequence[int],
        results_flat: Sequence[QueryResult],
        settled: int,
    ) -> None:
        """Account a failed drain honestly before the exception propagates.

        Queries that completed before the failure released real noise: their
        actual spends are charged to the owning tenants (a partially
        answered submission is charged for exactly its answered prefix —
        under-reporting real privacy loss is never an option).  Every
        unsettled reservation is returned; completed-but-unsettled answers
        are discarded, since their submissions never finish.
        """
        with self._lock:
            for index in range(settled, len(admitted)):
                submission = admitted[index]
                tenant = submission.tenant
                answered = results_flat[offsets[index] : offsets[index + 1]]
                if answered:
                    charges = [
                        (
                            result.epsilon_spent,
                            result.delta_spent,
                            f"{tenant.tenant_id}/{submission.submission_id} "
                            "(failed drain): " + result.query.to_sql(),
                        )
                        for result in answered
                    ]
                    total = tenant.budget.charge_spends(
                        charges,
                        enforce=False,
                        degraded=[result.degraded for result in answered],
                    )
                    self.stats._note_charge(
                        tenant.tenant_id, total.epsilon, total.delta
                    )
                if submission.reserved:
                    tenant.budget.release(
                        submission.bound_epsilon, submission.bound_delta
                    )
                    submission.reserved = False
                self._end_trace(submission.trace_ctx, status="aborted")

    # -- convenience ------------------------------------------------------------

    def serve(
        self, submissions: Sequence[tuple[str, Sequence[RangeQuery | str]]]
    ) -> list[TenantAnswer]:
        """Submit many ``(tenant_id, queries)`` pairs and drain once."""
        for tenant_id, queries in submissions:
            self.submit(tenant_id, queries)
        return self.drain()
