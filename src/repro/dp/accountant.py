"""Ledger-style privacy accountant.

The paper's end user holds a total budget ``(xi, psi)`` and every answered
query consumes ``(epsilon, delta)`` under sequential composition
(Section 5.4).  :class:`PrivacyAccountant` tracks that consumption, refuses
charges that would overdraw the budget, and keeps an auditable ledger of who
spent what and why — the same role OpenDP-style "odometers" play.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import BudgetExhaustedError, PrivacyError
from .composition import PrivacySpend, sequential_composition

__all__ = ["BudgetLedgerEntry", "PrivacyAccountant"]


@dataclass(frozen=True)
class BudgetLedgerEntry:
    """One recorded charge against the budget."""

    label: str
    spend: PrivacySpend


@dataclass
class PrivacyAccountant:
    """Tracks cumulative ``(epsilon, delta)`` consumption against a budget.

    Parameters
    ----------
    total_epsilon, total_delta:
        The end user's total budget ``(xi, psi)``.  ``float('inf')`` epsilon
        creates an unlimited accountant (useful for non-private baselines).
    """

    total_epsilon: float
    total_delta: float = 1.0
    _ledger: list[BudgetLedgerEntry] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.total_epsilon < 0:
            raise PrivacyError(f"total_epsilon must be >= 0, got {self.total_epsilon}")
        if not 0 <= self.total_delta <= 1:
            raise PrivacyError(f"total_delta must be in [0, 1], got {self.total_delta}")
        # Running total maintained on append (same left-fold as recomputing
        # over the ledger), so budget checks stay O(1) however many queries
        # — e.g. a replayed dashboard workload — the ledger has recorded.
        self._spent = sequential_composition(entry.spend for entry in self._ledger)

    @property
    def budget(self) -> PrivacySpend:
        """The total budget as a :class:`PrivacySpend`."""
        delta = self.total_delta
        epsilon = self.total_epsilon
        if epsilon == float("inf"):
            # PrivacySpend requires finite epsilon; model "unlimited" with a
            # very large sentinel so comparisons still work.
            epsilon = 1e308
        return PrivacySpend(epsilon, delta)

    @property
    def spent(self) -> PrivacySpend:
        """Cumulative spend across all ledger entries."""
        return self._spent

    @property
    def remaining_epsilon(self) -> float:
        """Epsilon still available."""
        if self.total_epsilon == float("inf"):
            return float("inf")
        return max(0.0, self.total_epsilon - self.spent.epsilon)

    @property
    def remaining_delta(self) -> float:
        """Delta still available."""
        return max(0.0, self.total_delta - self.spent.delta)

    def can_afford(self, epsilon: float, delta: float = 0.0) -> bool:
        """True when charging ``(epsilon, delta)`` would not overdraw."""
        prospective = self.spent + PrivacySpend(epsilon, delta)
        return prospective.is_within(self.budget)

    def charge(self, epsilon: float, delta: float = 0.0, *, label: str = "query") -> PrivacySpend:
        """Record a charge, raising :class:`BudgetExhaustedError` on overdraw."""
        spend = PrivacySpend(epsilon, delta)
        if not self.can_afford(spend.epsilon, spend.delta):
            raise BudgetExhaustedError(
                f"charging ({spend.epsilon}, {spend.delta}) for {label!r} would exceed the "
                f"remaining budget ({self.remaining_epsilon}, {self.remaining_delta})"
            )
        self._record(BudgetLedgerEntry(label=label, spend=spend))
        return spend

    def charge_many(
        self,
        charges: "Sequence[tuple[float, float, str]]",
        *,
        enforce: bool = True,
    ) -> PrivacySpend:
        """Atomically record several ``(epsilon, delta, label)`` charges.

        With ``enforce`` (the default) the whole group is validated against
        the remaining budget first and recorded only when it fits — on
        overdraw nothing is recorded, so a batch of queries can never leave
        the ledger partially charged.

        ``enforce=False`` records unconditionally.  It exists for post-run
        bookkeeping of spends that *already happened*: once a protocol round
        has released its noisy values, the only sound accounting is to
        record the full actual cost, even if that overdraws (the remaining
        budget then reads zero and future admissions are refused).  Hiding
        an overdraft would under-report real privacy loss.

        Returns the group's total spend.
        """
        spends = [PrivacySpend(epsilon, delta) for epsilon, delta, _ in charges]
        total = sequential_composition(spends)
        if enforce and not self.can_afford(total.epsilon, total.delta):
            raise BudgetExhaustedError(
                f"charging {len(spends)} entries totalling ({total.epsilon}, "
                f"{total.delta}) would exceed the remaining budget "
                f"({self.remaining_epsilon}, {self.remaining_delta})"
            )
        for spend, (_, _, label) in zip(spends, charges):
            self._record(BudgetLedgerEntry(label=label, spend=spend))
        return total

    def _record(self, entry: BudgetLedgerEntry) -> None:
        self._ledger.append(entry)
        self._spent = self._spent + entry.spend

    def ledger(self) -> Iterator[BudgetLedgerEntry]:
        """Iterate over the recorded charges in order."""
        return iter(tuple(self._ledger))

    def __len__(self) -> int:
        return len(self._ledger)

    def reset(self) -> None:
        """Clear the ledger (e.g. when a new analysis period starts)."""
        self._ledger.clear()
        self._spent = PrivacySpend.zero()

    @classmethod
    def unlimited(cls) -> "PrivacyAccountant":
        """An accountant that never refuses a charge (non-private baselines)."""
        return cls(total_epsilon=float("inf"), total_delta=1.0)
