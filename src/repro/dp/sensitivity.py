"""Local and smooth sensitivity framework (Nissim, Raskhodnikova & Smith).

The paper's final-estimate release cannot use global sensitivity (Theorem 5.3
shows it is unbounded), so it falls back to the smooth-sensitivity framework:

* local sensitivity at distance ``k`` (Definition 3.7),
* the smooth upper bound ``S_LS_f(T) = max_k exp(-beta * k) * LS_f(T)^k``
  (Definition 3.8 / Equation 10) with ``beta = epsilon / (2 ln(2 / delta))``,
* the termination bound ``k* > 1 / (1 - exp(-beta))`` (Appendix B.3), valid
  whenever the distance grows at most linearly in ``k`` — which is exactly the
  form of the paper's two dominant scenarios (``k * Q(C) * ΔR / R`` and
  ``k / p``).

The functions here are generic: they take a callable ``local_sensitivity_at_k``
so they can be reused for statistics other than the paper's estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import PrivacyError, SensitivityError

__all__ = [
    "smooth_sensitivity_beta",
    "smooth_sensitivity_max_k",
    "local_sensitivity_at_distance",
    "smooth_sensitivity",
    "smooth_sensitivity_from_series",
    "SmoothSensitivityResult",
]


def smooth_sensitivity_beta(epsilon: float, delta: float) -> float:
    """Smoothing parameter ``beta = epsilon / (2 * ln(2 / delta))``."""
    if not math.isfinite(epsilon) or epsilon <= 0:
        raise PrivacyError(f"epsilon must be a finite positive number, got {epsilon}")
    if not 0 < delta < 1:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    return epsilon / (2.0 * math.log(2.0 / delta))


def smooth_sensitivity_max_k(beta: float) -> int:
    """Upper bound on the distance ``k`` to examine (Appendix B.3).

    For local sensitivities that grow linearly in ``k`` the product
    ``exp(-beta k) * LS^k`` starts decaying once ``k > 1 / (1 - exp(-beta))``,
    so scanning up to ``ceil(1 / (1 - exp(-beta))) + 1`` is sufficient.
    """
    if not math.isfinite(beta) or beta <= 0:
        raise SensitivityError(f"beta must be a finite positive number, got {beta}")
    return int(math.ceil(1.0 / (1.0 - math.exp(-beta)))) + 1


def local_sensitivity_at_distance(
    base_local_sensitivity: float, k: int, *, growth: str = "linear"
) -> float:
    """Local sensitivity at distance ``k`` for a simple growth model.

    ``growth='linear'`` models ``LS^k = k * LS^1`` which is the form taken by
    both dominant neighbouring scenarios of the paper's estimator.
    ``growth='constant'`` models statistics whose local sensitivity does not
    change with the distance (e.g. a COUNT query).
    """
    if k < 0:
        raise SensitivityError(f"k must be >= 0, got {k}")
    if not math.isfinite(base_local_sensitivity) or base_local_sensitivity < 0:
        raise SensitivityError(
            f"base_local_sensitivity must be finite and >= 0, got {base_local_sensitivity}"
        )
    if growth == "linear":
        return k * base_local_sensitivity
    if growth == "constant":
        return base_local_sensitivity if k > 0 else 0.0
    raise SensitivityError(f"unknown growth model: {growth!r}")


@dataclass(frozen=True)
class SmoothSensitivityResult:
    """Result of a smooth-sensitivity computation.

    Attributes
    ----------
    value:
        The smooth upper bound ``S_LS_f(T)``.
    argmax_k:
        The distance ``k`` at which the maximum was attained.
    beta:
        The smoothing parameter used.
    max_k:
        The largest distance examined.
    """

    value: float
    argmax_k: int
    beta: float
    max_k: int


def smooth_sensitivity(
    local_sensitivity_at_k: Callable[[int], float],
    epsilon: float,
    delta: float,
    *,
    max_k: int | None = None,
) -> SmoothSensitivityResult:
    """Compute ``max_k exp(-beta k) * LS^k`` by scanning distances.

    Parameters
    ----------
    local_sensitivity_at_k:
        Callable returning the local sensitivity at distance ``k >= 0``.
    epsilon, delta:
        Budget used to derive ``beta``.
    max_k:
        Optional override of the scan bound; defaults to the Appendix B.3
        bound, which is valid for (sub-)linear growth in ``k``.
    """
    beta = smooth_sensitivity_beta(epsilon, delta)
    bound = smooth_sensitivity_max_k(beta) if max_k is None else int(max_k)
    if bound < 0:
        raise SensitivityError(f"max_k must be >= 0, got {max_k}")
    best_value = 0.0
    best_k = 0
    for k in range(bound + 1):
        local = float(local_sensitivity_at_k(k))
        if not math.isfinite(local) or local < 0:
            raise SensitivityError(
                f"local sensitivity at distance {k} must be finite and >= 0, got {local}"
            )
        candidate = math.exp(-beta * k) * local
        if candidate > best_value:
            best_value = candidate
            best_k = k
    return SmoothSensitivityResult(value=best_value, argmax_k=best_k, beta=beta, max_k=bound)


def smooth_sensitivity_from_series(
    local_sensitivities: Sequence[float], epsilon: float, delta: float
) -> SmoothSensitivityResult:
    """Smooth sensitivity when ``LS^k`` is given as an explicit series.

    ``local_sensitivities[k]`` is the local sensitivity at distance ``k``.
    """
    series = list(local_sensitivities)
    if not series:
        raise SensitivityError("local_sensitivities must be non-empty")
    return smooth_sensitivity(
        lambda k: series[k], epsilon, delta, max_k=len(series) - 1
    )
