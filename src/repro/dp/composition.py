"""Composition theorems for differential privacy.

Implements the three composition rules the paper relies on:

* sequential composition (Theorem 3.1): budgets add up,
* parallel composition (Theorem 3.2): the maximum budget over disjoint parts,
* advanced composition (Kairouz et al., used in Section 6.6): for ``n``
  ``(epsilon, delta)``-DP mechanisms the composition is
  ``(epsilon', n*delta + delta')``-DP with
  ``epsilon' = epsilon * sqrt(2 n ln(1/delta')) + n epsilon (e^epsilon - 1)``;
  the paper uses the simplified inversion
  ``epsilon_per_query = xi / (2 sqrt(2 n ln(1/delta)))`` to derive the largest
  per-query budget an attacker may spend, which we expose as
  :func:`advanced_composition_epsilon_per_query`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import PrivacyError

__all__ = [
    "PrivacySpend",
    "sequential_composition",
    "parallel_composition",
    "advanced_composition",
    "sequential_epsilon_per_query",
    "advanced_composition_epsilon_per_query",
]


@dataclass(frozen=True)
class PrivacySpend:
    """An ``(epsilon, delta)`` pair with validation and arithmetic helpers."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.epsilon) or self.epsilon < 0:
            raise PrivacyError(f"epsilon must be finite and >= 0, got {self.epsilon}")
        if not math.isfinite(self.delta) or not 0 <= self.delta <= 1:
            raise PrivacyError(f"delta must be in [0, 1], got {self.delta}")

    def __add__(self, other: "PrivacySpend") -> "PrivacySpend":
        return PrivacySpend(self.epsilon + other.epsilon, min(1.0, self.delta + other.delta))

    def is_within(self, budget: "PrivacySpend", *, tolerance: float = 1e-12) -> bool:
        """True when this spend does not exceed ``budget`` in either term."""
        return (
            self.epsilon <= budget.epsilon + tolerance
            and self.delta <= budget.delta + tolerance
        )

    @staticmethod
    def zero() -> "PrivacySpend":
        """The empty spend ``(0, 0)``."""
        return PrivacySpend(0.0, 0.0)


def _as_spends(spends: Iterable[PrivacySpend | tuple[float, float]]) -> list[PrivacySpend]:
    normalised: list[PrivacySpend] = []
    for spend in spends:
        if isinstance(spend, PrivacySpend):
            normalised.append(spend)
        else:
            epsilon, delta = spend
            normalised.append(PrivacySpend(float(epsilon), float(delta)))
    return normalised


def sequential_composition(
    spends: Iterable[PrivacySpend | tuple[float, float]],
) -> PrivacySpend:
    """Total budget of mechanisms applied sequentially to the same data."""
    normalised = _as_spends(spends)
    total = PrivacySpend.zero()
    for spend in normalised:
        total = total + spend
    return total


def parallel_composition(
    spends: Iterable[PrivacySpend | tuple[float, float]],
) -> PrivacySpend:
    """Budget of mechanisms applied to disjoint parts of the data."""
    normalised = _as_spends(spends)
    if not normalised:
        return PrivacySpend.zero()
    return PrivacySpend(
        max(spend.epsilon for spend in normalised),
        max(spend.delta for spend in normalised),
    )


def advanced_composition(
    epsilon: float, delta: float, n_queries: int, delta_prime: float
) -> PrivacySpend:
    """Total budget of ``n_queries`` ``(epsilon, delta)``-DP mechanisms.

    Returns the ``(epsilon', n*delta + delta')`` guarantee from the advanced
    composition theorem.
    """
    if n_queries < 0:
        raise PrivacyError(f"n_queries must be >= 0, got {n_queries}")
    if not 0 < delta_prime < 1:
        raise PrivacyError(f"delta_prime must be in (0, 1), got {delta_prime}")
    single = PrivacySpend(epsilon, delta)
    if n_queries == 0:
        return PrivacySpend.zero()
    epsilon_total = single.epsilon * math.sqrt(
        2.0 * n_queries * math.log(1.0 / delta_prime)
    ) + n_queries * single.epsilon * (math.exp(single.epsilon) - 1.0)
    delta_total = min(1.0, n_queries * single.delta + delta_prime)
    return PrivacySpend(epsilon_total, delta_total)


def sequential_epsilon_per_query(total_epsilon: float, n_queries: int) -> float:
    """Largest per-query epsilon under plain sequential composition."""
    if n_queries <= 0:
        raise PrivacyError(f"n_queries must be >= 1, got {n_queries}")
    if not math.isfinite(total_epsilon) or total_epsilon <= 0:
        raise PrivacyError(f"total_epsilon must be positive, got {total_epsilon}")
    return total_epsilon / n_queries


def advanced_composition_epsilon_per_query(
    total_epsilon: float, n_queries: int, delta: float
) -> float:
    """Per-query epsilon under advanced composition (paper, Section 6.6).

    The paper allocates ``epsilon = xi / (2 * sqrt(2 * n * ln(1/delta)))`` to
    each of the attacker's ``n`` queries, which is larger than the sequential
    allocation ``xi / n`` for any realistically large ``n``.
    """
    if n_queries <= 0:
        raise PrivacyError(f"n_queries must be >= 1, got {n_queries}")
    if not math.isfinite(total_epsilon) or total_epsilon <= 0:
        raise PrivacyError(f"total_epsilon must be positive, got {total_epsilon}")
    if not 0 < delta < 1:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    return total_epsilon / (2.0 * math.sqrt(2.0 * n_queries * math.log(1.0 / delta)))


def compose_heterogeneous(
    sequential_spends: Sequence[PrivacySpend | tuple[float, float]] = (),
    parallel_spends: Sequence[PrivacySpend | tuple[float, float]] = (),
) -> PrivacySpend:
    """Compose a sequential block followed by a parallel block.

    Convenience used by the protocol accounting: the per-provider phases are
    sequential on each provider's data, and the providers operate on disjoint
    partitions so they compose in parallel.
    """
    return sequential_composition(
        [sequential_composition(sequential_spends), parallel_composition(parallel_spends)]
    )


__all__.append("compose_heterogeneous")
