"""Randomised mechanisms: Laplace, Gaussian, and Exponential.

These follow the textbook definitions used by the paper (Dwork & Roth):

* :class:`LaplaceMechanism` releases ``f(T) + Lap(sensitivity / epsilon)``
  and satisfies pure ``epsilon``-DP (Definition 3.4).
* :class:`GaussianMechanism` is provided as an optional substrate extension
  (it is not used by the paper's protocol but is handy for ablations); it
  satisfies ``(epsilon, delta)``-DP with the classic analytic calibration.
* :class:`ExponentialMechanism` performs biased selection of elements with
  probability proportional to ``exp(epsilon * score / (2 * sensitivity))``
  (Definition 3.5) and supports sampling with or without replacement, which
  is what Algorithm 2 of the paper needs to pick ``s`` clusters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import PrivacyError, SamplingError, SensitivityError
from ..utils.rng import RngLike, ensure_rng

__all__ = [
    "laplace_noise_scale",
    "LaplaceMechanism",
    "GaussianMechanism",
    "ExponentialMechanism",
]


def _check_epsilon(epsilon: float) -> float:
    if not math.isfinite(epsilon) or epsilon <= 0:
        raise PrivacyError(f"epsilon must be a finite positive number, got {epsilon}")
    return float(epsilon)


def _check_sensitivity(sensitivity: float) -> float:
    if not math.isfinite(sensitivity) or sensitivity < 0:
        raise SensitivityError(
            f"sensitivity must be a finite non-negative number, got {sensitivity}"
        )
    return float(sensitivity)


def laplace_noise_scale(sensitivity: float, epsilon: float) -> float:
    """Scale ``b`` of the Laplace distribution calibrated to ``sensitivity``.

    The Laplace Mechanism adds ``Lap(0, b)`` with ``b = sensitivity / epsilon``.
    """
    return _check_sensitivity(sensitivity) / _check_epsilon(epsilon)


@dataclass
class LaplaceMechanism:
    """Pure ``epsilon``-DP additive-noise mechanism.

    Parameters
    ----------
    epsilon:
        Privacy budget consumed by one release.
    sensitivity:
        L1 sensitivity of the released statistic.
    rng:
        Seed, generator, or ``None`` for non-deterministic noise.
    """

    epsilon: float
    sensitivity: float
    rng: RngLike = None

    def __post_init__(self) -> None:
        self.epsilon = _check_epsilon(self.epsilon)
        self.sensitivity = _check_sensitivity(self.sensitivity)
        self._generator = ensure_rng(self.rng)

    @property
    def scale(self) -> float:
        """Noise scale ``b = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    def sample_noise(self, size: int | None = None) -> float | np.ndarray:
        """Draw raw Laplace noise without adding it to a value."""
        if self.sensitivity == 0:
            return 0.0 if size is None else np.zeros(size)
        noise = self._generator.laplace(loc=0.0, scale=self.scale, size=size)
        return float(noise) if size is None else noise

    def release(self, value: float) -> float:
        """Release ``value + Lap(sensitivity / epsilon)``."""
        if not math.isfinite(value):
            raise PrivacyError(f"value must be finite, got {value}")
        return float(value) + float(self.sample_noise())

    def release_vector(self, values: Sequence[float]) -> np.ndarray:
        """Release a vector; ``sensitivity`` must bound the joint L1 change."""
        array = np.asarray(values, dtype=float)
        if not np.all(np.isfinite(array)):
            raise PrivacyError("all values must be finite")
        return array + self.sample_noise(size=array.size).reshape(array.shape)


@dataclass
class GaussianMechanism:
    """``(epsilon, delta)``-DP additive Gaussian noise (substrate extension).

    Uses the classic calibration ``sigma = sensitivity * sqrt(2 ln(1.25/delta))
    / epsilon`` which is valid for ``epsilon <= 1``; for larger epsilon the
    calibration is conservative.
    """

    epsilon: float
    delta: float
    sensitivity: float
    rng: RngLike = None

    def __post_init__(self) -> None:
        self.epsilon = _check_epsilon(self.epsilon)
        if not 0 < self.delta < 1:
            raise PrivacyError(f"delta must be in (0, 1), got {self.delta}")
        self.sensitivity = _check_sensitivity(self.sensitivity)
        self._generator = ensure_rng(self.rng)

    @property
    def sigma(self) -> float:
        """Standard deviation of the calibrated Gaussian noise."""
        return self.sensitivity * math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.epsilon

    def release(self, value: float) -> float:
        """Release ``value + N(0, sigma^2)``."""
        if not math.isfinite(value):
            raise PrivacyError(f"value must be finite, got {value}")
        if self.sensitivity == 0:
            return float(value)
        return float(value) + float(self._generator.normal(0.0, self.sigma))


@dataclass
class ExponentialMechanism:
    """Biased selection with probability ``∝ exp(eps * score / (2 * Δ))``.

    Parameters
    ----------
    epsilon:
        Budget of **one** selection.  Callers making ``s`` selections from the
        same scores must divide their total budget by ``s`` themselves (the
        paper's Algorithm 2 line 3) or use :meth:`select_many` which does it.
    sensitivity:
        Sensitivity ``Δ`` of the scoring function.
    """

    epsilon: float
    sensitivity: float
    rng: RngLike = None

    def __post_init__(self) -> None:
        self.epsilon = _check_epsilon(self.epsilon)
        self.sensitivity = _check_sensitivity(self.sensitivity)
        if self.sensitivity == 0:
            raise SensitivityError("ExponentialMechanism requires a positive sensitivity")
        self._generator = ensure_rng(self.rng)

    def selection_probabilities(
        self, scores: Sequence[float], epsilon: float | None = None
    ) -> np.ndarray:
        """Normalised selection probabilities for ``scores``.

        Scores are shifted by their maximum before exponentiation for
        numerical stability; the shift cancels in the normalisation so the
        distribution is unchanged.
        """
        array = np.asarray(scores, dtype=float)
        if array.ndim != 1 or array.size == 0:
            raise SamplingError("scores must be a non-empty one-dimensional sequence")
        if not np.all(np.isfinite(array)):
            raise SamplingError("scores must be finite")
        eps = self.epsilon if epsilon is None else _check_epsilon(epsilon)
        exponents = eps * array / (2.0 * self.sensitivity)
        exponents -= exponents.max()
        weights = np.exp(exponents)
        return weights / weights.sum()

    def select(self, scores: Sequence[float], epsilon: float | None = None) -> int:
        """Select one index according to the exponential-mechanism weights."""
        probabilities = self.selection_probabilities(scores, epsilon=epsilon)
        return int(self._generator.choice(probabilities.size, p=probabilities))

    def select_many(
        self,
        scores: Sequence[float],
        count: int,
        *,
        replace: bool = False,
    ) -> list[int]:
        """Select ``count`` indices, splitting the budget evenly per selection.

        Without replacement each selection re-normalises over the remaining
        candidates, mirroring the paper's Algorithm 2 which picks ``s``
        distinct clusters under a per-selection budget ``eps_S / s``.
        """
        array = np.asarray(scores, dtype=float)
        if count < 0:
            raise SamplingError(f"count must be >= 0, got {count}")
        if count == 0:
            return []
        if not replace and count > array.size:
            raise SamplingError(
                f"cannot select {count} distinct elements out of {array.size}"
            )
        per_selection_epsilon = self.epsilon / count
        chosen: list[int] = []
        available = list(range(array.size))
        for _ in range(count):
            candidate_scores = array[available] if not replace else array
            probabilities = self.selection_probabilities(
                candidate_scores, epsilon=per_selection_epsilon
            )
            position = int(self._generator.choice(len(probabilities), p=probabilities))
            if replace:
                chosen.append(position)
            else:
                chosen.append(available.pop(position))
        return chosen
