"""Differential-privacy substrate.

This package implements, from scratch, every DP primitive the paper relies
on: the Laplace and Exponential mechanisms (Definitions 3.4 and 3.5), the
global / local / smooth sensitivity framework (Definitions 3.3 and 3.6-3.8),
the composition theorems (Theorems 3.1-3.3 plus the advanced composition used
by the attack analysis in Section 6.6), and a ledger-style privacy
accountant for the per-user total budget ``(xi, psi)``.
"""

from .accountant import BudgetLedgerEntry, PrivacyAccountant
from .composition import (
    PrivacySpend,
    advanced_composition,
    advanced_composition_epsilon_per_query,
    parallel_composition,
    sequential_composition,
    sequential_epsilon_per_query,
)
from .mechanisms import (
    ExponentialMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    laplace_noise_scale,
)
from .sensitivity import (
    SmoothSensitivityResult,
    local_sensitivity_at_distance,
    smooth_sensitivity,
    smooth_sensitivity_beta,
    smooth_sensitivity_from_series,
)

__all__ = [
    "PrivacyAccountant",
    "BudgetLedgerEntry",
    "PrivacySpend",
    "sequential_composition",
    "parallel_composition",
    "advanced_composition",
    "sequential_epsilon_per_query",
    "advanced_composition_epsilon_per_query",
    "LaplaceMechanism",
    "GaussianMechanism",
    "ExponentialMechanism",
    "laplace_noise_scale",
    "SmoothSensitivityResult",
    "smooth_sensitivity",
    "smooth_sensitivity_beta",
    "smooth_sensitivity_from_series",
    "local_sensitivity_at_distance",
]
