"""Keyed store for released DP artifacts, with admission and eviction policy.

:class:`ReleaseCache` is the per-provider building block of the cross-query
reuse layer.  It is deliberately *value-agnostic*: the provider stores the
released summary scalars and the released ``(message, report)`` answer pairs
under keys built by :mod:`repro.cache.key`; the store only decides whether an
entry may be admitted, whether a lookup may be served, and what to evict.

Three invalidation mechanisms compose:

* **capacity** — least-recently-used eviction beyond ``max_entries``,
* **age** — an optional time-to-live measured in protocol rounds (a round is
  one summary phase; :meth:`ReleaseCache.advance_round` is called by the
  provider at the start of each),
* **staleness** — every entry records the provider's layout epoch at release
  time; a lookup under a newer epoch evicts the entry and misses, so a
  re-clustered provider can never serve summaries of a layout that no longer
  exists.

All accounting lands in :class:`CacheStats` so systems can report hit rates
and eviction pressure without instrumenting call sites.

>>> from repro.config import CacheConfig
>>> cache = ReleaseCache(CacheConfig(enabled=True, max_entries=2))
>>> cache.put(("k", 1), ("payload",), epoch=0, epsilon=1.0)
>>> cache.get(("k", 1), epoch=0)
('payload',)
>>> cache.get(("k", 1), epoch=1) is None   # layout changed: entry is stale
True
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from ..config import CacheConfig

__all__ = ["CacheStats", "ReleaseCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting of one (or several merged) caches.

    Attributes
    ----------
    lookups, hits, misses:
        Lookup counters; ``lookups == hits + misses``.  Peeks (planner
        previews) are intentionally not counted.  Intra-batch alias serves
        — a repeated predicate inside one batch reusing the first
        occurrence's release before it reaches the store — are reuse but
        not store lookups: they show up in the
        :class:`~repro.core.result.ExecutionTrace` cache-hit counters
        while the pre-pass lookup here records a miss, so the trace
        counters may legitimately exceed ``hits``.
    insertions, rejected:
        Admission counters; ``rejected`` counts releases refused by the
        epsilon-aware admission floor.
    evicted_capacity, evicted_expired, evicted_stale:
        Evictions by LRU pressure, TTL expiry, and layout-epoch staleness.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    rejected: int = 0
    evicted_capacity: int = 0
    evicted_expired: int = 0
    evicted_stale: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (for JSON benchmark records)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "rejected": self.rejected,
            "evicted_capacity": self.evicted_capacity,
            "evicted_expired": self.evicted_expired,
            "evicted_stale": self.evicted_stale,
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def merged(cls, stats: Iterable["CacheStats"]) -> "CacheStats":
        """Element-wise sum of several stats records (federation-wide view)."""
        total = cls()
        for entry in stats:
            total.lookups += entry.lookups
            total.hits += entry.hits
            total.misses += entry.misses
            total.insertions += entry.insertions
            total.rejected += entry.rejected
            total.evicted_capacity += entry.evicted_capacity
            total.evicted_expired += entry.evicted_expired
            total.evicted_stale += entry.evicted_stale
        return total


@dataclass
class _Entry:
    value: Any
    epoch: int
    round_inserted: int


@dataclass
class ReleaseCache:
    """LRU + TTL + epoch-validated store of released DP artifacts.

    Parameters
    ----------
    config:
        The :class:`~repro.config.CacheConfig` policy.  A disabled config
        turns every operation into a no-op, which is what keeps the
        cache-off engine bit-identical to the plain batched protocol.
    """

    config: CacheConfig = field(default_factory=CacheConfig)
    stats: CacheStats = field(default_factory=CacheStats, repr=False)

    def __post_init__(self) -> None:
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._round = 0

    @property
    def enabled(self) -> bool:
        """Whether the policy admits and serves entries at all."""
        return self.config.enabled

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def current_round(self) -> int:
        """The logical clock (number of protocol rounds observed)."""
        return self._round

    # -- clock -----------------------------------------------------------------

    def advance_round(self) -> None:
        """Advance the logical TTL clock by one protocol round."""
        if self.enabled:
            self._round += 1

    # -- lookups ---------------------------------------------------------------

    def get(self, key: Hashable, *, epoch: int) -> Any | None:
        """Serve ``key`` if present, fresh, and released under ``epoch``.

        A stale (older-epoch) or expired (TTL) entry is evicted and the
        lookup misses.  Hits refresh the entry's LRU position.
        """
        if not self.enabled:
            return None
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.epoch != epoch:
            del self._entries[key]
            self.stats.evicted_stale += 1
            self.stats.misses += 1
            return None
        if self._expired(entry, self._round):
            del self._entries[key]
            self.stats.evicted_expired += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def peek(self, key: Hashable, *, epoch: int, rounds_ahead: int = 0) -> Any | None:
        """Non-mutating lookup used by the reuse planner.

        Does not touch the LRU order, the stats, or evict anything.
        ``rounds_ahead`` lets the planner ask "will this entry still be
        valid *after* the next round's clock tick?", which is what makes a
        pre-execution affordability preview sound under a TTL policy.
        """
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None or entry.epoch != epoch:
            return None
        if self._expired(entry, self._round + rounds_ahead):
            return None
        return entry.value

    # -- admission -------------------------------------------------------------

    def put(self, key: Hashable, value: Any, *, epoch: int, epsilon: float) -> None:
        """Admit a released artifact.

        Parameters
        ----------
        key:
            A key from :mod:`repro.cache.key`.
        value:
            The released artifact (stored as-is; callers store immutable
            payloads so a later hit re-serves the original bytes).
        epoch:
            The provider's layout epoch at release time.
        epsilon:
            The phase budget the release consumed — admission refuses
            releases below the policy's ``min_epsilon`` floor.
        """
        if not self.enabled:
            return
        if epsilon < self.config.min_epsilon:
            self.stats.rejected += 1
            return
        self._entries[key] = _Entry(value=value, epoch=epoch, round_inserted=self._round)
        self._entries.move_to_end(key)
        self.stats.insertions += 1
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)
            self.stats.evicted_capacity += 1

    # -- bulk invalidation -------------------------------------------------------

    def purge_stale(self, epoch: int) -> int:
        """Eagerly drop every entry not released under ``epoch``.

        Returns the number of entries dropped.  Lazy eviction in
        :meth:`get` would reclaim them eventually; providers call this on
        layout rebuilds so the memory is released immediately.
        """
        stale = [key for key, entry in self._entries.items() if entry.epoch != epoch]
        for key in stale:
            del self._entries[key]
        self.stats.evicted_stale += len(stale)
        return len(stale)

    def rekey_epoch(self, new_epoch: int, retain) -> tuple[int, int]:
        """Selective epoch migration: keep some entries servable across a bump.

        Compaction (:mod:`repro.ingest`) bumps the provider's layout epoch —
        which would lazily invalidate *every* cached release — but most
        entries are still exactly what a fresh release would produce: a
        query whose box cannot touch any re-clustered region sees identical
        covering sets, proportions, and ``Q(C)`` values before and after the
        fold.  ``retain(key)`` decides per entry; retained entries are
        re-tagged to ``new_epoch`` (so the normal epoch check keeps serving
        them), the rest are dropped as stale.

        Returns ``(purged, retained)`` entry counts.
        """
        if not self.enabled:
            return (0, 0)
        stale = [key for key, entry in self._entries.items() if not retain(key)]
        for key in stale:
            del self._entries[key]
        self.stats.evicted_stale += len(stale)
        for entry in self._entries.values():
            entry.epoch = new_epoch
        return (len(stale), len(self._entries))

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()

    def _expired(self, entry: _Entry, now: int) -> bool:
        ttl = self.config.ttl_rounds
        return ttl is not None and now - entry.round_inserted >= ttl
