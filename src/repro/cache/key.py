"""Canonical cache keys for released DP artifacts.

A release is reusable only for a query that is *semantically identical* to
the one it was computed for, at *exactly* the privacy budget it was released
under.  The key functions here encode both requirements:

* :func:`query_fingerprint` canonicalises a :class:`~repro.query.model.RangeQuery`
  into a hashable value that is independent of predicate ordering — two
  queries with the same aggregation and the same per-dimension intervals map
  to the same fingerprint regardless of how their ``ranges`` mappings were
  built.
* :func:`summary_key` / :func:`answer_key` extend the fingerprint with the
  per-phase epsilons (and, for answers, the granted sample size), so a cache
  hit is only possible when serving the stored bytes is pure post-processing
  of the original release.

Layout staleness is deliberately **not** part of the key: the store tracks a
layout epoch per entry (see :class:`~repro.cache.store.ReleaseCache`), which
lets a provider invalidate everything it cached with one epoch bump when its
clustering changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only (import cycle guard)
    from ..core.accounting import QueryBudget
    from ..query.model import RangeQuery

__all__ = [
    "query_fingerprint",
    "summary_key",
    "answer_key",
    "key_query_ranges",
    "key_delta_watermark",
]


def query_fingerprint(query: RangeQuery) -> tuple:
    """Canonical hashable form of a range query.

    Parameters
    ----------
    query:
        The (schema-clipped) query to fingerprint.

    Returns
    -------
    tuple
        ``(aggregation, ((dimension, low, high), ...))`` with dimensions in
        sorted order, suitable as a dictionary key.
    """
    ranges = tuple(
        sorted(
            (name, interval.low, interval.high)
            for name, interval in query.ranges.items()
        )
    )
    return (query.aggregation.value, ranges)


def summary_key(query: RangeQuery, epsilon_allocation: float) -> tuple:
    """Key of a released allocation summary ``(Ñ^Q, ~Avg(R̂))``.

    The summary depends only on the query predicate and the phase budget
    ``eps_O`` it was noised under, so those are exactly the key components.
    """
    return ("summary", query_fingerprint(query), float(epsilon_allocation))


def answer_key(
    query: RangeQuery,
    budget: QueryBudget,
    sample_size: int,
    *,
    delta_watermark: int = 0,
) -> tuple:
    """Key of a released local estimate.

    The estimate depends on the predicate, the sampling and estimation phase
    budgets (``eps_S``, ``eps_E`` and the smooth-sensitivity ``delta``), and
    the sample size the aggregator granted — a different allocation draws a
    different Exponential-Mechanism sample, so it is part of the key.  When
    every provider's summary is served from cache the allocation solve is
    deterministic, which is what makes repeated workloads hit this key.

    ``delta_watermark`` is the ingestion snapshot the answer was evaluated
    at (:mod:`repro.ingest`): an answer that included delta rows is only
    reusable at exactly the same watermark — more (or fewer) visible delta
    rows change the released value's data, not just its noise.
    """
    return (
        "answer",
        query_fingerprint(query),
        float(budget.epsilon_sampling),
        float(budget.epsilon_estimation),
        float(budget.delta),
        int(sample_size),
        int(delta_watermark),
    )


def key_query_ranges(key: tuple) -> tuple:
    """The ``((dimension, low, high), ...)`` ranges embedded in a release key.

    Used by compaction-time cache retention to decide whether a cached
    release could observe a re-clustered region of the table.
    """
    return key[1][1]


def key_delta_watermark(key: tuple) -> int:
    """The ingestion watermark embedded in a release key (0 for summaries).

    Summary releases never read the delta buffer, so they carry no
    watermark; answer keys embed the snapshot they were evaluated at.
    """
    return int(key[6]) if key[0] == "answer" else 0
