"""Budget-aware reuse planning for a query batch.

Before a workload runs, the system must decide whether the end user can
afford it.  Without a cache the answer is simple: every query costs its full
``(epsilon, delta)``.  With the cache, a query whose releases are all
cached costs *nothing* — and admitting a reuse-heavy workload against a
nearly exhausted budget is exactly the point of budget-aware reuse.

:class:`ReusePlanner` computes a **sound upper bound** of the batch's charge
by peeking (never mutating) the providers' release caches:

* a query is *fully cached* when every provider holds its summary release
  and — after deterministically re-solving the allocation from those cached
  summaries — its answer release for the granted sample size; such a query
  is guaranteed to be served by post-processing and is bounded at zero cost;
* any other query is bounded at the full per-query spend, because a partial
  hit can degrade at execution time (e.g. a fresh summary shifts the
  allocation, which misses the answer key).

The preview uses :meth:`~repro.cache.store.ReleaseCache.peek` with one round
of TTL look-ahead so an entry cannot be counted here and expire under the
batch's own clock tick.  (Two deliberately unguarded corners remain: LRU
eviction *within* the admitted batch under a pathologically small
``max_entries``, and TTL expiry when more than one protocol round elapses
between pricing and execution — the serving layer's chunked drains advance
the round once per chunk, so a small ``ttl_rounds`` can expire an entry that
was counted here.  In both, the actual cost can exceed this preview; because
the releases have already happened by charging time, the accountant records
the full actual spend even if it overdraws the wallet — the ledger stays
honest and the next fresh batch is refused at admission.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.allocation import AllocationProblem, solve_allocation
from ..obs.trace import ambient_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.accounting import QueryBudget
    from ..federation.provider import DataProvider
    from ..query.model import RangeQuery

__all__ = ["QueryReusePreview", "ReusePlan", "ReusePlanner"]


@dataclass(frozen=True)
class QueryReusePreview:
    """Planner verdict for one query of the batch.

    Attributes
    ----------
    query_index:
        Position of the query in the batch.
    summary_hits:
        Number of providers whose summary release is cached.
    answer_hits:
        Number of providers whose answer release is cached (only probed
        when every summary is cached — otherwise the allocation, and hence
        the answer key, is unknowable before execution).
    fully_cached:
        True when the query is guaranteed to be served entirely by
        post-processing (zero budget).
    max_epsilon, max_delta:
        Sound upper bound of the query's charge.
    """

    query_index: int
    summary_hits: int
    answer_hits: int
    fully_cached: bool
    max_epsilon: float
    max_delta: float


@dataclass(frozen=True)
class ReusePlan:
    """The planner's split of a batch into cached vs. must-release queries."""

    previews: tuple[QueryReusePreview, ...]

    @property
    def num_queries(self) -> int:
        """Number of planned queries."""
        return len(self.previews)

    @property
    def num_fully_cached(self) -> int:
        """Queries guaranteed to cost zero budget."""
        return sum(1 for preview in self.previews if preview.fully_cached)

    @property
    def upper_bound_epsilon(self) -> float:
        """Sound upper bound of the batch's total epsilon charge."""
        return sum(preview.max_epsilon for preview in self.previews)

    @property
    def upper_bound_delta(self) -> float:
        """Sound upper bound of the batch's total delta charge."""
        return sum(preview.max_delta for preview in self.previews)

    @property
    def upper_bound(self) -> tuple[float, float]:
        """The batch charge bound as one ``(epsilon, delta)`` pair.

        This is the price admission control reserves for the batch — the
        serving layer's :class:`~repro.service.scheduler.SessionScheduler`
        holds exactly this against the tenant's budget until the actual
        (reuse-discounted) charge is known.
        """
        return (self.upper_bound_epsilon, self.upper_bound_delta)

    def must_release(self) -> tuple[int, ...]:
        """Indices of the queries that may need at least one fresh release."""
        return tuple(
            preview.query_index for preview in self.previews if not preview.fully_cached
        )


@dataclass
class ReusePlanner:
    """Splits a workload into cached and must-release queries.

    Parameters
    ----------
    providers:
        The federation's data providers (peeked, never mutated).
    min_allocation:
        The aggregator's allocation floor — the preview must re-solve the
        allocation exactly as the aggregator will.
    """

    providers: Sequence["DataProvider"]
    min_allocation: int = 1

    def preview(
        self,
        queries: Sequence[RangeQuery],
        budget: QueryBudget,
        sampling_rate: float,
        *,
        use_smc: bool = False,
    ) -> ReusePlan:
        """Plan the reuse of a workload without executing (or mutating) anything.

        Parameters
        ----------
        queries:
            The batch, in execution order.
        budget:
            The per-query phase budgets the batch will run under.
        sampling_rate:
            The sampling rate ``sr`` the allocation will be solved with.
        use_smc:
            Whether results will combine through the SMC path.  SMC answers
            are never cached (the aggregator injects the single estimation
            noise per round), so SMC queries are never fully cached.

        Returns
        -------
        ReusePlan
            Per-query previews plus batch-level upper bounds.
        """
        with ambient_span("cache.plan_reuse", queries=len(queries)):
            return self._preview_impl(
                queries, budget, sampling_rate, use_smc=use_smc
            )

    def _preview_impl(
        self,
        queries: Sequence[RangeQuery],
        budget: QueryBudget,
        sampling_rate: float,
        *,
        use_smc: bool = False,
    ) -> ReusePlan:
        previews: list[QueryReusePreview] = []
        full_epsilon = budget.epsilon_total
        if all(len(provider.cache) == 0 for provider in self.providers):
            # Nothing is cached anywhere (cold start, or non-repeating
            # traffic): skip the per-(query, provider) peeks and bound every
            # query at full cost directly.
            return ReusePlan(
                previews=tuple(
                    QueryReusePreview(
                        query_index=index,
                        summary_hits=0,
                        answer_hits=0,
                        fully_cached=False,
                        max_epsilon=full_epsilon,
                        max_delta=budget.delta,
                    )
                    for index in range(len(queries))
                )
            )
        for index, query in enumerate(queries):
            summaries = [
                provider.peek_summary_release(query, budget.epsilon_allocation)
                for provider in self.providers
            ]
            summary_hits = sum(1 for summary in summaries if summary is not None)
            answer_hits = 0
            if summary_hits == len(self.providers):
                problems = [
                    AllocationProblem(
                        provider_id=provider.provider_id,
                        noisy_cluster_count=summary[0],
                        noisy_avg_proportion=summary[1],
                    )
                    for provider, summary in zip(self.providers, summaries)
                ]
                allocations = solve_allocation(
                    problems, sampling_rate, min_allocation=self.min_allocation
                )
                answer_hits = sum(
                    1
                    for provider, allocation in zip(self.providers, allocations)
                    if provider.peek_answer_release(
                        query, budget, allocation.sample_size
                    )
                )
            fully_cached = (
                not use_smc
                and summary_hits == len(self.providers)
                and answer_hits == len(self.providers)
            )
            previews.append(
                QueryReusePreview(
                    query_index=index,
                    summary_hits=summary_hits,
                    answer_hits=answer_hits,
                    fully_cached=fully_cached,
                    max_epsilon=0.0 if fully_cached else full_epsilon,
                    max_delta=0.0 if fully_cached else budget.delta,
                )
            )
        return ReusePlan(previews=tuple(previews))
