"""Cross-query reuse of released DP artifacts.

The protocol's privacy cost is incurred when a provider *releases* a noisy
value — the allocation summary ``(Ñ^Q, ~Avg(R̂))`` and the noisy local
estimate.  Anything computed from an already-released value is
post-processing and is free under differential privacy.  This package turns
that observation into a reuse layer for repeated-predicate workloads:

* :mod:`repro.cache.key` — canonical keys: query fingerprint × exact phase
  epsilons (× granted sample size for answers);
* :mod:`repro.cache.store` — :class:`~repro.cache.store.ReleaseCache`, the
  per-provider keyed store with epsilon-aware admission, LRU capacity, TTL
  by protocol round, layout-epoch staleness, and hit/miss accounting;
* :mod:`repro.cache.planner` — :class:`~repro.cache.planner.ReusePlanner`,
  which splits a batch into fully-cached (zero budget) and must-release
  queries before execution, so the system can admit reuse-heavy workloads
  against a nearly exhausted budget.

See ``docs/protocol.md`` for the post-processing argument and
``docs/architecture.md`` for where the cache sits in the data flow.
"""

from .key import answer_key, query_fingerprint, summary_key
from .planner import QueryReusePreview, ReusePlan, ReusePlanner
from .store import CacheStats, ReleaseCache

__all__ = [
    "query_fingerprint",
    "summary_key",
    "answer_key",
    "CacheStats",
    "ReleaseCache",
    "QueryReusePreview",
    "ReusePlan",
    "ReusePlanner",
]
