"""Private Approximate Query Processing over a Horizontal Data Federation.

Reproduction of "Private Approximate Query over Horizontal Data Federation"
(Laouir & Imine, EDBT 2025).  The public API re-exports the pieces a
downstream user needs:

* :class:`~repro.core.system.FederatedAQPSystem` — build a federation and
  answer range queries with end-to-end differential privacy,
* :class:`~repro.query.model.RangeQuery` / :func:`~repro.query.parser.parse_query`
  — the query model,
* the configuration dataclasses (:class:`~repro.config.SystemConfig` etc.),
* the synthetic dataset and workload generators used by the evaluation.
"""

from .config import (
    CacheConfig,
    IngestConfig,
    NetworkConfig,
    PrivacyConfig,
    SamplingConfig,
    ServiceConfig,
    SMCConfig,
    SystemConfig,
)
from .core import FederatedAQPSystem, QueryResult

# Imported after .core on purpose: the cache package participates in the
# core/federation import cycle and must not be the module that enters it.
from .cache import CacheStats, ReleaseCache, ReusePlanner
from .errors import ReproError
from .ingest import CompactionPolicy, Compactor, DeltaStore
from .query import Aggregation, Interval, RangeQuery, parse_query
from .service import SessionScheduler, TenantAnswer, TenantRegistry
from .storage import ClusteredTable, Dimension, Schema, Table, build_count_tensor

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "FederatedAQPSystem",
    "QueryResult",
    "RangeQuery",
    "Interval",
    "Aggregation",
    "parse_query",
    "SystemConfig",
    "PrivacyConfig",
    "SamplingConfig",
    "NetworkConfig",
    "SMCConfig",
    "CacheConfig",
    "ServiceConfig",
    "IngestConfig",
    "DeltaStore",
    "Compactor",
    "CompactionPolicy",
    "CacheStats",
    "ReleaseCache",
    "ReusePlanner",
    "TenantRegistry",
    "SessionScheduler",
    "TenantAnswer",
    "Schema",
    "Dimension",
    "Table",
    "ClusteredTable",
    "build_count_tensor",
    "ReproError",
]
