"""Folding buffered deltas into the clustered layout, incrementally.

Compaction is the layout-maintenance half of the ingestion subsystem: it
turns the provider's append buffer back into clustered, metadata-indexed,
zone-mapped storage without a stop-the-world rebuild.  The correctness
anchor is exact equivalence — **compact-then-query must be bit-identical to
rebuilding the provider from scratch on the union of rows** — which the
incremental fold achieves by exploiting how
:meth:`~repro.storage.clustered_table.ClusteredTable.from_table` chunks its
input:

* ``"sequential"`` policy: every cluster except the last is full, so a full
  rebuild on ``base ++ deltas`` leaves all full clusters untouched; only the
  trailing partial cluster absorbs delta rows and fresh clusters append
  after it.  The fold re-clusters exactly that tail.
* ``"sorted"`` policy: a full rebuild stable-sorts ``base ++ deltas`` by the
  sort key.  Rows strictly before the insertion point of the smallest delta
  key keep their positions (stable sort: old rows precede equal-keyed new
  rows), so every cluster before ``insertion_point // S`` is untouched; the
  suffix is re-merged (old suffix rows are already key-sorted in layout
  order, deltas merge in stably behind equal keys) and re-chunked.
* ``"sorted"`` with an *intra*-sort on a different dimension scrambles the
  recoverable tie order, so the fold falls back to a (still bit-identical)
  full rebuild on the union — see :func:`incremental_eligible`.

The fold reuses the untouched prefix wholesale: prefix
:class:`~repro.storage.cluster.Cluster` objects are shared, the new
:class:`~repro.storage.layout.ClusterLayout` copies the prefix columns as
single contiguous slices (:meth:`~repro.storage.layout.ClusterLayout.patched`),
and :func:`~repro.storage.metadata.patch_metadata` recomputes Algorithm-1
metadata only for the rebuilt suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import IngestConfig
from ..errors import IngestError
from ..obs.trace import ambient_span
from ..storage.cluster import Cluster
from ..storage.clustered_table import ClusteredTable
from ..storage.layout import ClusterLayout
from ..storage.schema import Schema
from ..storage.table import Table

__all__ = [
    "CompactionPolicy",
    "CompactionReport",
    "Compactor",
    "fold_into_clustered",
    "incremental_eligible",
]


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold the delta buffer back into the clustered layout.

    The thresholds mirror :class:`~repro.config.IngestConfig`; the online
    trade-off is classic layout maintenance — every deferred fold keeps
    appends O(1) but grows the unclustered share every query must scan
    exactly, while every fold pays a tail re-cluster to restore pruning.
    """

    max_delta_rows: int = 4096
    max_delta_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.max_delta_rows < 1:
            raise IngestError(
                f"max_delta_rows must be >= 1, got {self.max_delta_rows}"
            )
        if self.max_delta_fraction is not None and not 0 < self.max_delta_fraction <= 1:
            raise IngestError(
                f"max_delta_fraction must be in (0, 1], got {self.max_delta_fraction}"
            )

    @classmethod
    def from_config(cls, config: IngestConfig) -> "CompactionPolicy":
        """Build the policy from the system-level ingest configuration."""
        return cls(
            max_delta_rows=config.max_delta_rows,
            max_delta_fraction=config.max_delta_fraction,
        )

    def due(self, delta_rows: int, clustered_rows: int) -> bool:
        """True when the buffered delta should be folded now."""
        if delta_rows <= 0:
            return False
        if delta_rows >= self.max_delta_rows:
            return True
        if self.max_delta_fraction is not None:
            return delta_rows > self.max_delta_fraction * max(clustered_rows, 1)
        return False


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction did to one provider.

    Attributes
    ----------
    provider_id:
        The compacted provider.
    rows_folded:
        Delta rows folded into the clustered layout.
    first_affected_position:
        First cluster position that was re-clustered; everything before it
        was reused verbatim (clusters, layout columns, metadata entries).
    clusters_before, clusters_after:
        Cluster counts around the fold.
    layout_epoch:
        The provider's layout epoch after the fold (always bumped).
    incremental:
        True for the tail-fold path, False for the full-rebuild fallback.
    cache_entries_purged, cache_entries_retained:
        Release-cache entries dropped because the fold could change their
        answers vs. entries re-tagged to the new epoch and kept servable.
    """

    provider_id: str
    rows_folded: int
    first_affected_position: int
    clusters_before: int
    clusters_after: int
    layout_epoch: int
    incremental: bool
    cache_entries_purged: int = 0
    cache_entries_retained: int = 0

    def as_dict(self) -> dict:
        """Flat numeric/flag view for the metrics registry and bench harness."""
        return {
            "rows_folded": self.rows_folded,
            "first_affected_position": self.first_affected_position,
            "clusters_before": self.clusters_before,
            "clusters_after": self.clusters_after,
            "layout_epoch": self.layout_epoch,
            "incremental": int(self.incremental),
            "cache_entries_purged": self.cache_entries_purged,
            "cache_entries_retained": self.cache_entries_retained,
        }


def incremental_eligible(
    clustering_policy: str, sort_by: str | None, intra_sort_by: str | None, schema: Schema
) -> bool:
    """Can a delta fold reuse the untouched cluster prefix?

    The ``"sequential"`` policy always can.  The ``"sorted"`` policy can
    unless clusters are intra-sorted on a *different* dimension: the fold
    then cannot recover the global key order's tie-breaking from the stored
    clusters, so equivalence requires the full-rebuild fallback.
    """
    if clustering_policy == "sequential":
        return True
    key = sort_by or schema.dimension_names[0]
    return intra_sort_by is None or intra_sort_by == key


def fold_into_clustered(
    clustered: ClusteredTable,
    deltas: Table,
    *,
    clustering_policy: str,
    sort_by: str | None,
    intra_sort_by: str | None,
) -> tuple[ClusteredTable, int]:
    """Fold ``deltas`` into ``clustered``, re-clustering only the tail.

    Returns ``(new_clustered, first_affected_position)``.  The result is
    bit-identical — cluster boundaries, membership, row order, and layout
    column dtypes — to
    :meth:`ClusteredTable.from_table(base ++ deltas, ...)
    <repro.storage.clustered_table.ClusteredTable.from_table>` for the same
    settings; callers must have checked :func:`incremental_eligible` first.
    """
    if deltas.num_rows == 0:
        return clustered, clustered.num_clusters
    size = clustered.cluster_size
    schema = clustered.schema
    clusters = clustered.clusters
    if clustering_policy == "sequential":
        if clustered.num_rows == 0:
            # The empty-table placeholder cluster is dropped, exactly as a
            # fresh from_table on the (now non-empty) union would.
            first = 0
        elif clusters[-1].num_rows < size:
            first = len(clusters) - 1
        else:
            first = len(clusters)
        suffix_parts = [
            cluster.rows for cluster in clusters[first:] if cluster.num_rows > 0
        ]
        suffix_parts.append(deltas)
        suffix = Table.concat(suffix_parts)
    elif clustering_policy == "sorted":
        key = sort_by or schema.dimension_names[0]
        if clustered.num_rows == 0:
            first = 0
        else:
            # Stable sort of (base ++ deltas): rows strictly before the
            # insertion point of the smallest delta key keep their global
            # positions, so clusters before insert // S are untouched.
            key_column = clustered.layout().columns[key]
            smallest = int(deltas.column(key).min())
            insert = int(np.searchsorted(key_column, smallest, side="right"))
            first = insert // size
        old_rows = [
            cluster.rows for cluster in clusters[first:] if cluster.num_rows > 0
        ]
        union = Table.concat(old_rows + [deltas])
        # Old suffix rows arrive already key-sorted with the full rebuild's
        # tie order, and they precede the deltas, so one stable argsort
        # reproduces the rebuild's suffix ordering exactly.
        suffix = union.take(np.argsort(union.column(key), kind="stable"))
    else:
        raise IngestError(f"unknown clustering policy: {clustering_policy!r}")
    new_clusters: list[Cluster] = []
    for offset, start in enumerate(range(0, suffix.num_rows, size)):
        chunk = suffix.slice(start, start + size)
        if intra_sort_by is not None and chunk.num_rows > 1:
            chunk = chunk.take(np.argsort(chunk.column(intra_sort_by), kind="stable"))
        new_clusters.append(
            Cluster(cluster_id=first + offset, rows=chunk, nominal_size=size)
        )
    combined = ClusteredTable(
        clusters=tuple(clusters[:first]) + tuple(new_clusters), cluster_size=size
    )
    # Install the incrementally patched layout (prefix columns copied as
    # contiguous slices) in place of the lazy per-cluster rebuild.
    combined._layout = ClusterLayout.patched(clustered.layout(), first, new_clusters)
    return combined, first


@dataclass
class Compactor:
    """Policy-driven compaction driver for one or many providers.

    A thin orchestration shim: the actual fold lives in
    :meth:`DataProvider.compact <repro.federation.provider.DataProvider.compact>`
    (which owns the epoch bump and cache retention); the compactor decides
    *when* to invoke it.
    """

    policy: CompactionPolicy = field(default_factory=CompactionPolicy)

    def due(self, provider) -> bool:
        """True when ``provider``'s delta buffer should be folded now."""
        return self.policy.due(provider.delta_rows, provider.num_rows)

    def maybe_compact(self, provider) -> CompactionReport | None:
        """Compact ``provider`` if the policy says so and no sessions are open."""
        if not self.due(provider) or provider.num_open_sessions:
            return None
        with ambient_span(
            "ingest.compaction",
            provider=provider.provider_id,
            delta_rows=provider.delta_rows,
        ):
            return provider.compact()
