"""Per-provider append buffer with mini zone maps and watermark-pinned reads.

A :class:`DeltaStore` absorbs rows a provider ingests *between* layout
rebuilds: the clustered main table stays frozen (so metadata, sampling
proportions, and every release-cache entry stay valid) while the delta
buffer grows chunk by chunk.  Queries read the buffer through a
**watermark** — the number of delta rows visible to them — pinned when the
query's session opens, so an in-flight batch keeps seeing exactly the rows
it started with even while ingest proceeds (snapshot isolation; see
``docs/ingestion.md``).

Each appended chunk carries its own mini zone maps (per-dimension min/max),
so a query whose box cannot touch a chunk skips it without reading a row;
overlapping chunks are answered by the dense mask kernel — one vectorised
comparison pass per constrained dimension, the same evaluation the
reference engine applies to straddling clusters.  Deltas are expected to be
small relative to the main table (the compaction policy bounds them), which
is why the buffer needs no clustering, sampling, or metadata of its own.

Appends are serialised by a lock and the chunk list is append-only, so
readers that snapshot a watermark first can evaluate without holding the
lock — an append landing mid-evaluation only ever adds rows *beyond* every
pinned watermark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import IngestError
from ..query.model import RangeQuery
from ..storage.schema import Schema
from ..storage.table import Table

__all__ = ["DeltaChunk", "DeltaStore", "IngestReceipt", "validate_rows"]


def validate_rows(schema: Schema, rows: Table) -> None:
    """Refuse rows that do not match ``schema`` or leave a dimension domain.

    The standalone pre-pass shared by the multi-target ingest entry points
    (:meth:`Aggregator.ingest <repro.federation.aggregator.Aggregator.ingest>`,
    :meth:`SessionScheduler.submit_ingest
    <repro.service.scheduler.SessionScheduler.submit_ingest>`): validating a
    whole batch *before* touching any provider keeps a partially bad batch
    from leaving the federation half-applied (out-of-domain values would
    corrupt the dense metadata index at compaction time, so they can never
    be admitted).

    Raises
    ------
    IngestError
        On a column-set mismatch or an out-of-domain dimension value.
    """
    if rows.schema.column_names != schema.column_names:
        raise IngestError(
            f"ingested columns {list(rows.schema.column_names)} do not match "
            f"the provider schema {list(schema.column_names)}"
        )
    if rows.num_rows == 0:
        return
    for dimension in schema:
        column = rows.column(dimension.name)
        low = int(column.min())
        high = int(column.max())
        if low < dimension.low or high > dimension.high:
            raise IngestError(
                f"ingested values [{low}, {high}] fall outside dimension "
                f"{dimension.name!r} domain [{dimension.low}, {dimension.high}]"
            )


@dataclass(frozen=True)
class IngestReceipt:
    """What one provider hands back for one accepted ingest request.

    Attributes
    ----------
    provider_id:
        The accepting provider.
    rows:
        Number of rows appended by this request.
    delta_watermark:
        The delta watermark right after the append (0 when the request
        immediately triggered a compaction that folded the whole buffer).
    layout_epoch:
        The provider's layout epoch after the request (bumped when the
        request triggered a compaction).
    compacted:
        True when this request tripped the compaction policy and the buffer
        was folded into the clustered layout.
    """

    provider_id: str
    rows: int
    delta_watermark: int
    layout_epoch: int
    compacted: bool


@dataclass(frozen=True)
class DeltaChunk:
    """One appended batch of rows plus its mini zone maps."""

    start: int
    rows: Table
    zone_min: dict[str, int]
    zone_max: dict[str, int]

    @property
    def num_rows(self) -> int:
        """Number of rows in this chunk."""
        return self.rows.num_rows


class DeltaStore:
    """Append-only row buffer answered exactly, addressed by watermark.

    Parameters
    ----------
    schema:
        The owning provider's table schema; every appended chunk must match
        it column for column.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._chunks: list[DeltaChunk] = []
        self._watermark = 0
        self._lock = threading.Lock()

    # -- writes ------------------------------------------------------------

    def append(self, rows: Table) -> int:
        """Append a chunk of rows and return the new watermark.

        Raises
        ------
        IngestError
            When the chunk's schema does not match the store's, or a
            dimension value falls outside its declared domain (out-of-domain
            values would corrupt the dense metadata index at compaction
            time, so they are refused at the door).
        """
        validate_rows(self.schema, rows)
        if rows.num_rows == 0:
            return self._watermark
        zone_min: dict[str, int] = {}
        zone_max: dict[str, int] = {}
        for dimension in self.schema:
            column = rows.column(dimension.name)
            zone_min[dimension.name] = int(column.min())
            zone_max[dimension.name] = int(column.max())
        with self._lock:
            chunk = DeltaChunk(
                start=self._watermark, rows=rows, zone_min=zone_min, zone_max=zone_max
            )
            self._chunks.append(chunk)
            self._watermark += rows.num_rows
            return self._watermark

    def take_all(self) -> Table:
        """Drain the buffer: return every appended row and reset to empty.

        Called by the compactor; the returned table preserves append order,
        which is what makes folding equivalent to having appended the rows
        to the provider's base table directly.
        """
        with self._lock:
            chunks = self._chunks
            self._chunks = []
            self._watermark = 0
        if not chunks:
            return Table.empty(self.schema)
        return Table.concat([chunk.rows for chunk in chunks])

    # -- reads -------------------------------------------------------------

    @property
    def watermark(self) -> int:
        """Total number of appended rows (the current snapshot boundary)."""
        return self._watermark

    @property
    def num_chunks(self) -> int:
        """Number of appended (uncompacted) chunks."""
        return len(self._chunks)

    def rows_upto(self, watermark: int) -> Table:
        """The delta rows visible at ``watermark``, in append order."""
        if watermark <= 0:
            return Table.empty(self.schema)
        tables: list[Table] = []
        for chunk in list(self._chunks):
            if chunk.start >= watermark:
                break
            visible = min(chunk.num_rows, watermark - chunk.start)
            tables.append(chunk.rows if visible == chunk.num_rows else chunk.rows.slice(0, visible))
        if not tables:
            return Table.empty(self.schema)
        return Table.concat(tables)

    def query_values(
        self, queries: Sequence[RangeQuery], watermarks: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-query sums over each query's visible delta prefix.

        Parameters
        ----------
        queries:
            The (schema-clipped) queries to evaluate.
        watermarks:
            One pinned watermark per query; query ``i`` only sees delta rows
            ``[0, watermarks[i])``.

        Returns
        -------
        (values, rows_scanned):
            ``values[i]`` is the exact measure sum of query ``i`` over its
            visible delta rows (int64); ``rows_scanned[i]`` counts the rows
            the dense kernel actually evaluated for it (chunks skipped by
            the mini zone maps contribute nothing).
        """
        num_queries = len(queries)
        if len(watermarks) != num_queries:
            raise IngestError("watermarks must align with queries")
        values = np.zeros(num_queries, dtype=np.int64)
        scanned = np.zeros(num_queries, dtype=np.int64)
        if num_queries == 0:
            return values, scanned
        marks = np.asarray(watermarks, dtype=np.int64)
        if not marks.any():
            return values, scanned
        for chunk in list(self._chunks):
            # Queries whose pinned watermark does not reach into this chunk
            # see none of it; the rest see a prefix of it.
            visible = np.minimum(marks - chunk.start, chunk.num_rows)
            readers = np.flatnonzero(visible > 0)
            if readers.size == 0:
                continue
            # Mini zone maps: drop readers whose box cannot touch the chunk.
            live = []
            for index in readers.tolist():
                query = queries[index]
                hit = True
                for name, interval in query.ranges.items():
                    if (
                        chunk.zone_max[name] < interval.low
                        or chunk.zone_min[name] > interval.high
                    ):
                        hit = False
                        break
                if hit:
                    live.append(index)
            if not live:
                continue
            measure = chunk.rows.measure_column()
            for index in live:
                query = queries[index]
                stop = int(visible[index])
                mask = np.ones(stop, dtype=bool)
                for name, interval in query.ranges.items():
                    column = chunk.rows.column(name)[:stop]
                    np.logical_and(mask, column >= interval.low, out=mask)
                    np.logical_and(mask, column <= interval.high, out=mask)
                values[index] += int(measure[:stop][mask].sum())
                scanned[index] += stop
        return values, scanned

    def memory_bytes(self) -> int:
        """Approximate footprint of the buffered chunks."""
        return sum(chunk.rows.memory_bytes() for chunk in self._chunks)
