"""Per-provider append buffer with mini zone maps and watermark-pinned reads.

A :class:`DeltaStore` absorbs rows a provider ingests *between* layout
rebuilds: the clustered main table stays frozen (so metadata, sampling
proportions, and every release-cache entry stay valid) while the delta
buffer grows chunk by chunk.  Queries read the buffer through a
**watermark** — the number of delta rows visible to them — pinned when the
query's session opens, so an in-flight batch keeps seeing exactly the rows
it started with even while ingest proceeds (snapshot isolation; see
``docs/ingestion.md``).

Each appended chunk carries its own mini zone maps (per-dimension min/max),
so a query whose box cannot touch a chunk skips it without reading a row;
overlapping chunks are answered by the dense mask kernel — one vectorised
comparison pass per constrained dimension, the same evaluation the
reference engine applies to straddling clusters.  Deltas are expected to be
small relative to the main table (the compaction policy bounds them), which
is why the buffer needs no clustering, sampling, or metadata of its own.

Appends are serialised by a lock and the chunk list is append-only, so
readers that snapshot a watermark first can evaluate without holding the
lock — an append landing mid-evaluation only ever adds rows *beyond* every
pinned watermark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import IngestError
from ..query.model import RangeQuery
from ..storage.layout import OPEN_HIGH, OPEN_LOW
from ..storage.schema import Schema
from ..storage.table import Table

__all__ = ["DeltaChunk", "DeltaStore", "IngestReceipt", "validate_rows"]


def validate_rows(schema: Schema, rows: Table) -> None:
    """Refuse rows that do not match ``schema`` or leave a dimension domain.

    The standalone pre-pass shared by the multi-target ingest entry points
    (:meth:`Aggregator.ingest <repro.federation.aggregator.Aggregator.ingest>`,
    :meth:`SessionScheduler.submit_ingest
    <repro.service.scheduler.SessionScheduler.submit_ingest>`): validating a
    whole batch *before* touching any provider keeps a partially bad batch
    from leaving the federation half-applied (out-of-domain values would
    corrupt the dense metadata index at compaction time, so they can never
    be admitted).

    Raises
    ------
    IngestError
        On a column-set mismatch or an out-of-domain dimension value.
    """
    if rows.schema.column_names != schema.column_names:
        raise IngestError(
            f"ingested columns {list(rows.schema.column_names)} do not match "
            f"the provider schema {list(schema.column_names)}"
        )
    if rows.num_rows == 0:
        return
    for dimension in schema:
        column = rows.column(dimension.name)
        low = int(column.min())
        high = int(column.max())
        if low < dimension.low or high > dimension.high:
            raise IngestError(
                f"ingested values [{low}, {high}] fall outside dimension "
                f"{dimension.name!r} domain [{dimension.low}, {dimension.high}]"
            )


@dataclass(frozen=True)
class IngestReceipt:
    """What one provider hands back for one accepted ingest request.

    Attributes
    ----------
    provider_id:
        The accepting provider.
    rows:
        Number of rows appended by this request.
    delta_watermark:
        The delta watermark right after the append (0 when the request
        immediately triggered a compaction that folded the whole buffer).
    layout_epoch:
        The provider's layout epoch after the request (bumped when the
        request triggered a compaction).
    compacted:
        True when this request tripped the compaction policy and the buffer
        was folded into the clustered layout.
    """

    provider_id: str
    rows: int
    delta_watermark: int
    layout_epoch: int
    compacted: bool


@dataclass(frozen=True)
class DeltaChunk:
    """One appended batch of rows plus its mini zone maps."""

    start: int
    rows: Table
    zone_min: dict[str, int]
    zone_max: dict[str, int]

    @property
    def num_rows(self) -> int:
        """Number of rows in this chunk."""
        return self.rows.num_rows


class DeltaStore:
    """Append-only row buffer answered exactly, addressed by watermark.

    Parameters
    ----------
    schema:
        The owning provider's table schema; every appended chunk must match
        it column for column.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._chunks: list[DeltaChunk] = []
        self._watermark = 0
        self._lock = threading.Lock()

    # -- writes ------------------------------------------------------------

    def append(self, rows: Table) -> int:
        """Append a chunk of rows and return the new watermark.

        Raises
        ------
        IngestError
            When the chunk's schema does not match the store's, or a
            dimension value falls outside its declared domain (out-of-domain
            values would corrupt the dense metadata index at compaction
            time, so they are refused at the door).
        """
        validate_rows(self.schema, rows)
        if rows.num_rows == 0:
            return self._watermark
        zone_min: dict[str, int] = {}
        zone_max: dict[str, int] = {}
        for dimension in self.schema:
            column = rows.column(dimension.name)
            zone_min[dimension.name] = int(column.min())
            zone_max[dimension.name] = int(column.max())
        with self._lock:
            chunk = DeltaChunk(
                start=self._watermark, rows=rows, zone_min=zone_min, zone_max=zone_max
            )
            self._chunks.append(chunk)
            self._watermark += rows.num_rows
            return self._watermark

    def take_all(self) -> Table:
        """Drain the buffer: return every appended row and reset to empty.

        Called by the compactor; the returned table preserves append order,
        which is what makes folding equivalent to having appended the rows
        to the provider's base table directly.
        """
        with self._lock:
            chunks = self._chunks
            self._chunks = []
            self._watermark = 0
        if not chunks:
            return Table.empty(self.schema)
        return Table.concat([chunk.rows for chunk in chunks])

    # -- reads -------------------------------------------------------------

    @property
    def watermark(self) -> int:
        """Total number of appended rows (the current snapshot boundary)."""
        return self._watermark

    @property
    def num_chunks(self) -> int:
        """Number of appended (uncompacted) chunks."""
        return len(self._chunks)

    def rows_upto(self, watermark: int) -> Table:
        """The delta rows visible at ``watermark``, in append order."""
        if watermark <= 0:
            return Table.empty(self.schema)
        tables: list[Table] = []
        for chunk in list(self._chunks):
            if chunk.start >= watermark:
                break
            visible = min(chunk.num_rows, watermark - chunk.start)
            tables.append(chunk.rows if visible == chunk.num_rows else chunk.rows.slice(0, visible))
        if not tables:
            return Table.empty(self.schema)
        return Table.concat(tables)

    def query_values(
        self, queries: Sequence[RangeQuery], watermarks: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-query sums over each query's visible delta prefix.

        Parameters
        ----------
        queries:
            The (schema-clipped) queries to evaluate.
        watermarks:
            One pinned watermark per query; query ``i`` only sees delta rows
            ``[0, watermarks[i])``.

        Returns
        -------
        (values, rows_scanned):
            ``values[i]`` is the exact measure sum of query ``i`` over its
            visible delta rows (int64); ``rows_scanned[i]`` counts the rows
            the dense kernel actually evaluated for it (chunks skipped by
            the mini zone maps contribute nothing).

        Notes
        -----
        All queries are evaluated against each chunk in **one** vectorised
        pass: per constrained dimension, one broadcast comparison over a
        ``(live queries, chunk rows)`` mask matrix carved out of a single
        preallocated buffer that is reused across every chunk of the call —
        no per-query mask allocations.  Dimensions a query leaves
        unconstrained use open sentinel bounds (an all-true factor), and
        rows beyond a query's pinned watermark are cleared before the
        measure product, so the sums equal the per-query prefix evaluation
        exactly (integer sums are order-independent).
        """
        num_queries = len(queries)
        if len(watermarks) != num_queries:
            raise IngestError("watermarks must align with queries")
        values = np.zeros(num_queries, dtype=np.int64)
        scanned = np.zeros(num_queries, dtype=np.int64)
        if num_queries == 0:
            return values, scanned
        marks = np.asarray(watermarks, dtype=np.int64)
        if not marks.any():
            return values, scanned
        chunks = list(self._chunks)
        if not chunks:
            return values, scanned
        # Per-query bounds per constrained dimension, built once per call;
        # sentinel bounds keep unconstrained dimensions all-true, matching
        # the per-query kernel's semantics of skipping them.
        constrained = set()
        for query in queries:
            constrained.update(query.ranges)
        bounds: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name in self.schema.dimension_names:
            if name not in constrained:
                continue
            lows = np.full(num_queries, OPEN_LOW, dtype=np.int64)
            highs = np.full(num_queries, OPEN_HIGH, dtype=np.int64)
            for index, query in enumerate(queries):
                interval = query.ranges.get(name)
                if interval is not None:
                    lows[index] = interval.low
                    highs[index] = interval.high
            bounds[name] = (lows, highs)
        # One mask buffer for the whole call, sized to the widest chunk.
        buffer = np.empty(
            (num_queries, max(chunk.num_rows for chunk in chunks)), dtype=bool
        )
        for chunk in chunks:
            # Queries whose pinned watermark does not reach into this chunk
            # see none of it; the rest see a prefix of it.
            visible = np.minimum(marks - chunk.start, chunk.num_rows)
            live = visible > 0
            if not live.any():
                continue
            # Mini zone maps: drop readers whose box cannot touch the chunk
            # (sentinel bounds always pass, so only constrained dimensions
            # can reject).
            for name, (lows, highs) in bounds.items():
                live &= (chunk.zone_max[name] >= lows) & (chunk.zone_min[name] <= highs)
                if not live.any():
                    break
            live_indices = np.flatnonzero(live)
            if live_indices.size == 0:
                continue
            num_rows = chunk.num_rows
            masks = buffer[: live_indices.size, :num_rows]
            masks[:] = True
            for name, (lows, highs) in bounds.items():
                column = chunk.rows.column(name)
                np.logical_and(masks, column[None, :] >= lows[live_indices, None], out=masks)
                np.logical_and(masks, column[None, :] <= highs[live_indices, None], out=masks)
            chunk_visible = visible[live_indices]
            if int(chunk_visible.min()) < num_rows:
                # Clear rows beyond each query's pinned prefix of the chunk.
                np.logical_and(
                    masks,
                    np.arange(num_rows, dtype=np.int64)[None, :] < chunk_visible[:, None],
                    out=masks,
                )
            values[live_indices] += masks @ chunk.rows.measure_column()
            scanned[live_indices] += chunk_visible
        return values, scanned

    def memory_bytes(self) -> int:
        """Approximate footprint of the buffered chunks."""
        return sum(chunk.rows.memory_bytes() for chunk in self._chunks)
