"""Streaming ingestion: delta stores, snapshot reads, background compaction.

The paper's protocol assumes each provider holds a frozen clustered table;
this package removes that assumption without giving up any of the layers
built on top of it:

* :mod:`repro.ingest.delta` — :class:`~repro.ingest.delta.DeltaStore`, the
  per-provider append buffer.  New rows land here in O(1); queries read the
  buffer exactly through a **watermark** pinned when their session opens, so
  an in-flight batch is isolated from concurrent appends.
* :mod:`repro.ingest.compaction` —
  :class:`~repro.ingest.compaction.CompactionPolicy` and
  :class:`~repro.ingest.compaction.Compactor`, which fold the buffer back
  into the clustered layout incrementally: only the affected tail clusters
  are re-clustered, the Algorithm-1 metadata is patched in place, the layout
  epoch is bumped, and only genuinely stale release-cache entries are
  purged.  Compact-then-query is bit-identical to rebuilding the provider
  from scratch on the union of rows.

See ``docs/ingestion.md`` for the lifecycle, the snapshot-isolation
guarantees, and the cache/DP accounting semantics.
"""

from .compaction import (
    CompactionPolicy,
    CompactionReport,
    Compactor,
    fold_into_clustered,
    incremental_eligible,
)
from .delta import DeltaChunk, DeltaStore, IngestReceipt, validate_rows

__all__ = [
    "DeltaChunk",
    "DeltaStore",
    "IngestReceipt",
    "validate_rows",
    "CompactionPolicy",
    "CompactionReport",
    "Compactor",
    "fold_into_clustered",
    "incremental_eligible",
]
