"""Public facade: build a federation from tables and answer queries end to end.

:class:`FederatedAQPSystem` is the entry point a downstream user works with::

    system = FederatedAQPSystem.from_partitions(partitions, config=SystemConfig())
    result = system.execute(RangeQuery.count({"age": (20, 40)}), sampling_rate=0.1)
    result.value, result.relative_error

It owns the providers, the aggregator, the end user's total privacy budget
``(xi, psi)``, and the exact (non-private) baseline used for relative error
and speed-up measurements.  The production shape is
:meth:`FederatedAQPSystem.execute_batch` — one protocol round for a whole
workload — optionally with cross-query reuse
(:class:`~repro.config.CacheConfig`): repeated predicates are then served
from the providers' release caches as DP post-processing, charged only for
what was actually re-released, and admitted against the remaining budget by
the :class:`~repro.cache.planner.ReusePlanner`'s upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cache.store import CacheStats
from ..config import SystemConfig
from ..errors import BudgetExhaustedError, ProtocolError
from ..ingest.delta import IngestReceipt
from ..federation.aggregator import Aggregator, PhasedBatch
from ..federation.network import SimulatedNetwork
from ..federation.partitioning import partition_equal
from ..federation.provider import DataProvider
from ..federation.shard import ShardedProvider
from ..obs import Observability
from ..query.model import RangeQuery
from ..query.parser import parse_query
from ..storage.table import Table
from ..utils.rng import RngLike, derive_rng
from ..utils.timing import Timer
from .accounting import EndUserBudget, QueryBudget, split_query_budget
from .result import BatchResult, QueryResult

__all__ = ["FederatedAQPSystem", "BaselineExecution", "PhasedExecution"]


@dataclass(frozen=True)
class BaselineExecution:
    """Exact plain-text execution across the federation (the baseline)."""

    value: int
    seconds: float
    clusters_scanned: int
    rows_scanned: int


@dataclass
class FederatedAQPSystem:
    """A ready-to-query private federated AQP deployment."""

    providers: Sequence[DataProvider]
    config: SystemConfig
    end_user_budget: EndUserBudget | None = None
    rng: RngLike = None
    aggregator: Aggregator = field(init=False, repr=False)
    obs: Observability = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.providers:
            raise ProtocolError("a system needs at least one provider")
        self.obs = Observability.from_config(self.config.observability)
        network = SimulatedNetwork(config=self.config.network)
        self.aggregator = Aggregator(
            providers=list(self.providers),
            config=self.config,
            network=network,
            rng=derive_rng(self.rng if self.rng is not None else self.config.seed, "aggregator"),
            obs=self.obs,
        )
        if self.end_user_budget is not None and self.obs.ledger is not None:
            # Mirror every wallet mutation into the audit ledger.  Owner
            # "system" marks the facade's own budget; the multi-tenant
            # scheduler attaches per-tenant owners instead.
            self.end_user_budget.audit = self.obs.ledger
            if not self.end_user_budget.audit_owner:
                self.end_user_budget.audit_owner = "system"
        self._register_metric_groups()

    def _register_metric_groups(self) -> None:
        """Wire every scattered stats object into the pull-based registry.

        Suppliers are lambdas over live objects — :meth:`observability`
        reads them at snapshot time, so registration costs nothing on the
        query path.
        """
        registry = self.obs.metrics
        registry.register_group(
            "network", lambda: self.aggregator.network.stats.as_dict()
        )
        registry.register_group(
            "transport", lambda: self.aggregator.transport_stats.as_dict()
        )
        registry.register_group("cache", lambda: self.cache_stats().as_dict())
        registry.register_group(
            "resilience", lambda: self.aggregator.resilience_stats.as_dict()
        )

        def pool_stats() -> dict:
            pool = self.aggregator._process_pool
            return pool.stats.as_dict() if pool is not None else {}

        def kernel_telemetry() -> dict:
            pool = self.aggregator._process_pool
            return pool.kernel_telemetry.as_dict() if pool is not None else {}

        registry.register_group("procpool", pool_stats)
        registry.register_group("kernel", kernel_telemetry)

    def observability(self) -> dict:
        """One unified snapshot over every layer's metrics, traces, and ledger.

        Always available; with :class:`~repro.config.ObservabilityConfig`
        disabled the snapshot carries the metric groups only (there is no
        tracer or ledger to report).  See
        :meth:`repro.obs.MetricsRegistry.render_prometheus` for the text
        exposition format of the same data.
        """
        return self.obs.snapshot()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_partitions(
        cls,
        partitions: Sequence[Table],
        *,
        config: SystemConfig | None = None,
        n_min: int | None = None,
        total_epsilon: float | None = None,
        total_delta: float = 1.0,
        clustering_policy: str = "sequential",
        sort_by: str | None = None,
        intra_sort_by: str | None = None,
    ) -> "FederatedAQPSystem":
        """Build a system with one provider per partition table.

        Parameters
        ----------
        partitions:
            One table per data provider (the horizontal partitioning).
        config:
            System-wide knobs (privacy split, sampling, network, cache,
            parallelism); defaults to :class:`~repro.config.SystemConfig`.
        n_min:
            Per-provider approximation threshold ``N_min``; defaults to
            ``config.sampling.min_clusters_for_approximation``.
        total_epsilon, total_delta:
            When ``total_epsilon`` is given, an end-user budget ``(xi, psi)``
            is installed and every executed query is charged against it.
        clustering_policy, sort_by, intra_sort_by:
            Forwarded to each :class:`~repro.federation.provider.DataProvider`.

        Returns
        -------
        FederatedAQPSystem
            A ready-to-query deployment; provider RNGs are derived from
            ``config.seed`` so a fixed seed makes runs reproducible.
        """
        cfg = config or SystemConfig()
        threshold = cfg.sampling.min_clusters_for_approximation if n_min is None else n_min
        extra: dict[str, object] = {}
        provider_cls: type[DataProvider] = DataProvider
        if cfg.transport.shard_workers > 1:
            # Sharded providers split their data passes across K contiguous
            # shards of the clustered layout; answers stay bit-identical
            # (see repro.federation.shard for the determinism argument).
            provider_cls = ShardedProvider
            extra = {"shard_workers": cfg.transport.shard_workers}
        providers = [
            provider_cls(
                provider_id=f"provider-{index}",
                table=partition,
                cluster_size=cfg.cluster_size,
                n_min=threshold,
                clustering_policy=clustering_policy,
                sort_by=sort_by,
                intra_sort_by=intra_sort_by,
                cache_config=cfg.cache,
                execution_config=cfg.execution,
                ingest_config=cfg.ingest,
                rng=derive_rng(cfg.seed, "provider", index),
                **extra,
            )
            for index, partition in enumerate(partitions)
        ]
        budget = None
        if total_epsilon is not None:
            budget = EndUserBudget.create(total_epsilon, total_delta)
        return cls(providers=providers, config=cfg, end_user_budget=budget, rng=cfg.seed)

    @classmethod
    def from_table(
        cls,
        table: Table,
        *,
        config: SystemConfig | None = None,
        **kwargs,
    ) -> "FederatedAQPSystem":
        """Horizontally partition ``table`` equally and build a system."""
        cfg = config or SystemConfig()
        partitions = partition_equal(
            table, cfg.num_providers, rng=derive_rng(cfg.seed, "partition")
        )
        return cls.from_partitions(partitions, config=cfg, **kwargs)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release process-backend workers and shared memory (idempotent).

        Only needed when :class:`~repro.config.ParallelismConfig` uses the
        ``"process"`` backend; a no-op otherwise.  The system remains usable
        after ``close()`` — the next process-backed batch simply rebuilds
        the worker pool.
        """
        self.aggregator.close()

    def __enter__(self) -> "FederatedAQPSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- query execution -------------------------------------------------------

    def execute(
        self,
        query: RangeQuery | str,
        *,
        sampling_rate: float | None = None,
        epsilon: float | None = None,
        use_smc: bool | None = None,
        compute_exact: bool = True,
    ) -> QueryResult:
        """Answer ``query`` with the private approximate protocol.

        Parameters
        ----------
        query:
            A :class:`RangeQuery` or SQL text parsable by
            :func:`repro.query.parse_query`.
        sampling_rate:
            Override of the configured sampling rate ``sr``.
        epsilon:
            Override of the configured per-query epsilon (the phase split is
            preserved).
        use_smc:
            Override of the configured result-combination path.
        compute_exact:
            Also run the exact baseline so the result carries the relative
            error and the speed-up denominator.  Disable for pure-performance
            runs on large data.
        """
        batch = self.execute_batch(
            [query],
            sampling_rate=sampling_rate,
            epsilon=epsilon,
            use_smc=use_smc,
            compute_exact=compute_exact,
        )
        return batch.results[0]

    def execute_batch(
        self,
        queries: Sequence[RangeQuery | str],
        *,
        sampling_rate: float | None = None,
        epsilon: float | None = None,
        use_smc: bool | None = None,
        compute_exact: bool = True,
        seed_tokens: Sequence[tuple[int, ...] | None] | None = None,
    ) -> BatchResult:
        """Answer a whole workload with one batched protocol pass.

        The budget is charged once per query — exactly what the sequential
        loop would have charged — but the summary, allocation, and estimation
        phases are amortised across the workload: each provider is contacted
        once per phase with every query, and all metadata / ``Q(C)`` work runs
        vectorised.  With the same seed, the per-query results are
        bit-identical to executing the queries one at a time.

        When :class:`~repro.config.CacheConfig` is enabled, providers
        re-serve previously released summaries and estimates for repeated
        predicates (DP post-processing): such queries are charged only the
        phases that were actually re-released — down to zero for a fully
        cached query — and the admission check prices them accordingly.
        Reuse statistics land in each result's
        :class:`~repro.core.result.ExecutionTrace` and on the
        :class:`~repro.core.result.BatchResult` aggregates.

        Parameters
        ----------
        queries:
            The workload: :class:`RangeQuery` objects or SQL texts.
        sampling_rate, epsilon, use_smc:
            Per-batch overrides of the configured values (see
            :meth:`execute`).
        compute_exact:
            Also run the exact baselines so results carry relative errors.
        seed_tokens:
            Optional per-query noise-stream keys, aligned with ``queries``
            (see :meth:`Aggregator.execute_batch
            <repro.federation.aggregator.Aggregator.execute_batch>`).  Used
            by :mod:`repro.service` to make answers independent of how
            tenants' submissions were coalesced.

        Returns
        -------
        BatchResult
            Per-query results in workload order plus batch-level wall-clock
            and reuse accounting.
        """
        if not queries:
            raise ProtocolError("a batch must contain at least one query")
        range_queries = [self._coerce_query(query) for query in queries]
        privacy = self.config.privacy if epsilon is None else self.config.privacy.with_epsilon(epsilon)
        budget = split_query_budget(privacy)
        self._admit_batch(range_queries, budget, sampling_rate, use_smc)

        try:
            with Timer() as timer:
                answers = self.aggregator.execute_batch(
                    range_queries,
                    budget,
                    sampling_rate=sampling_rate,
                    use_smc=use_smc,
                    seed_tokens=seed_tokens,
                )
        except BaseException:
            # A batch that dies mid-protocol (e.g. worker crash beyond what
            # the resilience policy absorbs) must not leak the process
            # backend's workers or shared-memory blocks: the aggregator's
            # pool is torn down here and rebuilt lazily on the next batch.
            self.aggregator.close()
            raise
        if self.end_user_budget is not None:
            # Charge only after the protocol ran to completion: a batch that
            # fails mid-protocol returns no results and consumes no budget.
            # Each query is charged what it actually cost after reuse (zero
            # for fully cached queries).  The recording is unconditional
            # (enforce=False): the noisy releases already happened, so even
            # in the pathological corner where the actual cost exceeds the
            # admission bound (LRU eviction within the admitted batch), the
            # ledger must show the true spend — the wallet then reads empty
            # and the next fresh batch is refused at admission.
            self.end_user_budget.charge_spends(
                [
                    (answer.epsilon_charged, answer.delta_charged, range_query.to_sql())
                    for range_query, answer in zip(range_queries, answers)
                ],
                enforce=False,
                degraded=[answer.degraded for answer in answers],
            )
        exact_values: list[int | None] = [None] * len(range_queries)
        if compute_exact:
            exact_values = [
                baseline.value for baseline in self.exact_baseline_batch(range_queries)
            ]

        results = tuple(
            QueryResult(
                query=range_query,
                value=answer.value,
                epsilon_spent=answer.epsilon_charged,
                delta_spent=answer.delta_charged,
                used_smc=answer.used_smc,
                provider_reports=answer.provider_reports,
                trace=answer.trace,
                exact_value=exact_value,
                noise_injected=answer.noise_injected,
                degraded=answer.degraded,
                providers_missing=answer.providers_missing,
            )
            for range_query, answer, exact_value in zip(range_queries, answers, exact_values)
        )
        return BatchResult(results=results, wall_seconds=timer.elapsed)

    def _admit_batch(
        self,
        range_queries: Sequence[RangeQuery],
        budget: QueryBudget,
        sampling_rate: float | None,
        use_smc: bool | None,
    ) -> None:
        """All-or-nothing batch admission against the end-user budget.

        Verifies the whole workload is affordable before running anything.
        The check shares the accountant's float tolerance, so a batch is
        admitted exactly when charging its queries one by one would be.
        With the release caches enabled, the reuse planner lowers the bound
        to zero for queries guaranteed to be served by post-processing — a
        reuse-heavy workload is admitted even against a nearly exhausted
        budget (budget-aware reuse).
        """
        if self.end_user_budget is None:
            return
        affordable = self.end_user_budget.can_afford_queries(
            budget, len(self.providers), len(range_queries)
        )
        if not affordable and self.config.cache.enabled:
            # Full price does not fit — ask the planner for the tighter
            # bound before refusing (it can only lower the estimate, so
            # skipping it when full price fits is behaviour-preserving).
            plan = self.aggregator.plan_reuse(
                range_queries,
                budget,
                sampling_rate=sampling_rate,
                use_smc=use_smc,
            )
            affordable = self.end_user_budget.can_afford_spend(
                plan.upper_bound_epsilon, plan.upper_bound_delta
            )
        if not affordable:
            raise BudgetExhaustedError(
                f"batch of {len(range_queries)} queries needs more budget than "
                "remains"
            )

    def begin_batch(
        self,
        queries: Sequence[RangeQuery | str],
        *,
        sampling_rate: float | None = None,
        epsilon: float | None = None,
        use_smc: bool | None = None,
        compute_exact: bool = True,
        seed_tokens: Sequence[tuple[int, ...] | None] | None = None,
    ) -> "PhasedExecution":
        """Start a batch whose phases the caller drives explicitly.

        The phased counterpart of :meth:`execute_batch` — same admission,
        same protocol, bit-identical per-query answers under the same seeds
        — split so the serving layer can overlap chunks: the returned
        :class:`PhasedExecution` holds open provider sessions after the
        summary/allocation phases; :meth:`PhasedExecution.collect` runs the
        answer phase (and releases the sessions), and
        :meth:`PhasedExecution.settle` runs the combination math and
        produces the :class:`~repro.core.result.BatchResult`.  ``begin`` and
        ``collect`` must run on whatever thread owns provider state;
        ``settle`` touches no provider state and may run elsewhere while the
        next batch begins.  A begun batch that will not be collected must be
        released with :meth:`PhasedExecution.abandon` or compaction blocks
        on its sessions.
        """
        if not queries:
            raise ProtocolError("a batch must contain at least one query")
        range_queries = [self._coerce_query(query) for query in queries]
        privacy = self.config.privacy if epsilon is None else self.config.privacy.with_epsilon(epsilon)
        budget = split_query_budget(privacy)
        self._admit_batch(range_queries, budget, sampling_rate, use_smc)
        try:
            with Timer() as timer:
                phased = self.aggregator.begin_batch(
                    range_queries,
                    budget,
                    sampling_rate=sampling_rate,
                    use_smc=use_smc,
                    seed_tokens=seed_tokens,
                )
        except BaseException:
            self.aggregator.close()
            raise
        return PhasedExecution(
            system=self,
            queries=range_queries,
            phased=phased,
            compute_exact=compute_exact,
            wall_seconds=timer.elapsed,
        )

    # -- streaming ingestion -----------------------------------------------------

    def ingest(
        self, rows: Table, *, provider_index: int | None = None
    ) -> list[IngestReceipt | None]:
        """Append rows to the federation while query service keeps running.

        Parameters
        ----------
        rows:
            The appended rows (provider schema).
        provider_index:
            Send every row to one provider; by default rows are dealt
            round-robin by position across the federation (deterministic, so
            repeated runs build identical partitions).

        Returns
        -------
        list of IngestReceipt or None
            One receipt per provider that received rows (federation order).
            A receipt's ``compacted`` flag marks appends that tripped the
            :class:`~repro.config.IngestConfig` compaction thresholds.
        """
        if provider_index is not None:
            if not 0 <= provider_index < len(self.providers):
                raise ProtocolError(
                    f"provider_index must be in [0, {len(self.providers)}), "
                    f"got {provider_index}"
                )
            partitions: list[Table | None] = [None] * len(self.providers)
            partitions[provider_index] = rows
        else:
            assignment = np.arange(rows.num_rows) % len(self.providers)
            partitions = [
                rows.take(np.flatnonzero(assignment == index))
                for index in range(len(self.providers))
            ]
        return self.aggregator.ingest(partitions)

    def compact(self) -> list:
        """Explicitly fold every provider's delta buffer (empty folds no-op).

        Returns the per-provider
        :class:`~repro.ingest.compaction.CompactionReport` list.  Normally
        compaction triggers automatically through
        :class:`~repro.config.IngestConfig`; this is the manual override
        (e.g. before a planned burst of latency-sensitive traffic).
        """
        return [provider.compact() for provider in self.providers]

    @property
    def total_delta_rows(self) -> int:
        """Ingested rows still buffered (unclustered) across providers."""
        return sum(provider.delta_rows for provider in self.providers)

    def exact_baseline(self, query: RangeQuery | str) -> BaselineExecution:
        """Plain-text exact execution (the paper's "normal computation")."""
        return self.exact_baseline_batch([query])[0]

    def exact_baseline_batch(
        self, queries: Sequence[RangeQuery | str]
    ) -> list[BaselineExecution]:
        """Exact plain-text execution of a workload, vectorised per provider.

        Per-query seconds are the batch wall-clock amortised over the
        workload (exact for a batch of one).
        """
        range_queries = [self._coerce_query(query) for query in queries]
        if not range_queries:
            return []
        with Timer() as timer:
            per_provider = [
                provider.exact_answer_batch(range_queries) for provider in self.providers
            ]
        seconds = timer.elapsed / len(range_queries)
        baselines: list[BaselineExecution] = []
        for index in range(len(range_queries)):
            executions = [executions_[index] for executions_ in per_provider]
            baselines.append(
                BaselineExecution(
                    value=sum(execution.value for execution in executions),
                    seconds=seconds,
                    clusters_scanned=sum(
                        execution.clusters_scanned for execution in executions
                    ),
                    rows_scanned=sum(execution.rows_scanned for execution in executions),
                )
            )
        return baselines

    # -- bookkeeping -------------------------------------------------------------

    @property
    def num_providers(self) -> int:
        """Number of providers in the federation."""
        return len(self.providers)

    @property
    def total_rows(self) -> int:
        """Total number of stored rows across providers."""
        return sum(provider.num_rows for provider in self.providers)

    @property
    def total_clusters(self) -> int:
        """Total number of clusters across providers."""
        return sum(provider.num_clusters for provider in self.providers)

    def metadata_size_bytes(self) -> int:
        """Total metadata footprint across providers (Section 6.1)."""
        return sum(provider.metadata_size_bytes() for provider in self.providers)

    def remaining_budget(self) -> tuple[float, float] | None:
        """The end user's remaining ``(epsilon, delta)``, if a budget is set."""
        if self.end_user_budget is None:
            return None
        return (
            self.end_user_budget.remaining_epsilon,
            self.end_user_budget.remaining_delta,
        )

    def cache_stats(self) -> CacheStats:
        """Merged release-cache statistics across every provider."""
        return CacheStats.merged(provider.cache.stats for provider in self.providers)

    def transport_stats(self):
        """Real framed wire traffic of the configured transport.

        All zeros for the default in-process transport (there is no wire);
        for the loopback and socket transports the counters reflect actual
        serialized frames, unlike the simulated network's cost model.
        """
        return self.aggregator.transport_stats

    def invalidate_caches(self) -> None:
        """Drop every cached release federation-wide (stats are preserved)."""
        for provider in self.providers:
            provider.cache.clear()

    def _coerce_query(self, query: RangeQuery | str) -> RangeQuery:
        if isinstance(query, RangeQuery):
            return query
        parsed, _table = parse_query(query)
        schema = self.providers[0].clustered.schema
        return parsed.clipped_to(schema)


@dataclass
class PhasedExecution:
    """An in-flight batch started by :meth:`FederatedAQPSystem.begin_batch`.

    Lifecycle: ``begin_batch`` → :meth:`collect` → :meth:`settle`, with
    :meth:`abandon` as the bail-out for a begun batch that will never be
    collected.  ``wall_seconds`` accumulates the protocol phases only (as
    :meth:`FederatedAQPSystem.execute_batch` measures them — exact
    baselines are excluded).
    """

    system: FederatedAQPSystem
    queries: list[RangeQuery]
    phased: PhasedBatch
    compute_exact: bool
    wall_seconds: float = 0.0
    exact_values: list[int | None] = field(default_factory=list)

    def collect(self) -> None:
        """Run the answer phase and release the provider sessions.

        Must run on the thread that owns provider state (the serving
        layer's dispatcher).  The exact baselines are computed here too —
        they read provider tables, which may be compacted by later work
        items once this batch is handed off to settlement.
        """
        try:
            with Timer() as timer:
                self.system.aggregator.collect_batch(self.phased)
        except BaseException:
            # Same teardown contract as execute_batch: a batch that dies
            # mid-protocol must not leak the process backend's workers.
            self.system.aggregator.close()
            raise
        self.wall_seconds += timer.elapsed
        if self.compute_exact:
            self.exact_values = [
                baseline.value
                for baseline in self.system.exact_baseline_batch(self.queries)
            ]
        else:
            self.exact_values = [None] * len(self.queries)

    def settle(self) -> BatchResult:
        """Combine the collected answers into a :class:`BatchResult`.

        Pure aggregator math plus ledger recording — no provider state is
        read, so this may run on a different thread than :meth:`collect`
        while the dispatcher begins the next batch.
        """
        with Timer() as timer:
            answers = self.system.aggregator.settle_batch(self.phased)
        self.wall_seconds += timer.elapsed
        if self.system.end_user_budget is not None:
            # Charge only after the protocol ran to completion, and
            # unconditionally (enforce=False): the noisy releases already
            # happened — see execute_batch.
            self.system.end_user_budget.charge_spends(
                [
                    (answer.epsilon_charged, answer.delta_charged, query.to_sql())
                    for query, answer in zip(self.queries, answers)
                ],
                enforce=False,
                degraded=[answer.degraded for answer in answers],
            )
        results = tuple(
            QueryResult(
                query=query,
                value=answer.value,
                epsilon_spent=answer.epsilon_charged,
                delta_spent=answer.delta_charged,
                used_smc=answer.used_smc,
                provider_reports=answer.provider_reports,
                trace=answer.trace,
                exact_value=exact_value,
                noise_injected=answer.noise_injected,
                degraded=answer.degraded,
                providers_missing=answer.providers_missing,
            )
            for query, answer, exact_value in zip(
                self.queries, answers, self.exact_values
            )
        )
        return BatchResult(results=results, wall_seconds=self.wall_seconds)

    def abandon(self) -> None:
        """Release a batch that will never be collected (idempotent)."""
        self.system.aggregator.abandon_batch(self.phased)
