"""Aggregator-side allocation of per-provider sample sizes (Eq. 4 and 6).

The aggregator receives, from each provider ``i``, the DP-noised number of
covering clusters ``Ñ^Q_i`` and the DP-noised average proportion
``Avg(R̂)_i``, and must pick integer sample sizes ``s_i`` that

* maximise ``sum_i Avg(R̂)_i * s_i``,
* sum to ``sr * sum_i Ñ^Q_i`` (the global sample budget), and
* respect ``min_allocation <= s_i <= Ñ^Q_i`` per provider.

This is a linear objective over a box with one equality constraint, so the
optimum is the greedy waterfill: give every provider its lower bound, then
hand the remaining budget to providers in decreasing ``Avg(R̂)`` order until
each hits its upper bound.  DP noise can make the reported values negative or
the budget infeasible; the solver clamps to the feasible region and degrades
gracefully (documented per-branch below) instead of failing the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AllocationError

__all__ = ["AllocationProblem", "AllocationResult", "solve_allocation"]


@dataclass(frozen=True)
class AllocationProblem:
    """One provider's (noisy) view entering the allocation optimisation."""

    provider_id: str
    noisy_cluster_count: float
    noisy_avg_proportion: float


@dataclass(frozen=True)
class AllocationResult:
    """The allocation decided for one provider."""

    provider_id: str
    sample_size: int


def solve_allocation(
    problems: Sequence[AllocationProblem],
    sampling_rate: float,
    *,
    min_allocation: int = 1,
) -> list[AllocationResult]:
    """Solve the allocation problem of Equation 6.

    Parameters
    ----------
    problems:
        One entry per participating provider (noisy ``N^Q`` and ``Avg(R̂)``).
    sampling_rate:
        The end user's requested sampling rate ``sr``.
    min_allocation:
        Lower bound on every provider's sample size (the paper requires at
        least one sampled cluster per provider so that every provider
        participates and its silence leaks nothing).
    """
    if not problems:
        raise AllocationError("at least one provider is required")
    if not 0 < sampling_rate < 1:
        raise AllocationError(f"sampling_rate must be in (0, 1), got {sampling_rate}")
    if min_allocation < 1:
        raise AllocationError(f"min_allocation must be >= 1, got {min_allocation}")

    # Noise can push the reported cluster counts below the feasible minimum;
    # clamp each provider's capacity to at least ``min_allocation`` so the
    # greedy fill always has a feasible box to work in.
    capacities = [
        max(min_allocation, int(round(problem.noisy_cluster_count))) for problem in problems
    ]
    total_clusters = sum(capacities)
    budget = int(round(sampling_rate * total_clusters))
    # The global budget must at least cover every provider's lower bound and
    # never exceed the summed capacities.
    budget = max(budget, min_allocation * len(problems))
    budget = min(budget, total_clusters)

    allocations = [min_allocation] * len(problems)
    remaining = budget - min_allocation * len(problems)

    # Greedy: providers with the largest (noisy) average proportion first.
    order = sorted(
        range(len(problems)),
        key=lambda i: problems[i].noisy_avg_proportion,
        reverse=True,
    )
    for index in order:
        if remaining <= 0:
            break
        headroom = capacities[index] - allocations[index]
        grant = min(headroom, remaining)
        allocations[index] += grant
        remaining -= grant

    return [
        AllocationResult(provider_id=problem.provider_id, sample_size=allocations[i])
        for i, problem in enumerate(problems)
    ]
