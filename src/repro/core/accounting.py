"""Per-query privacy-budget split and end-user accounting (Section 5.4).

Each query consumes a budget ``(epsilon, delta)`` split across the three
protocol phases by the hyper-parameters ``hp1 + hp2 + hp3 = 1``:

* ``eps_O = hp1 * epsilon`` — Laplace release of ``N^Q`` and ``Avg(R̂)``,
* ``eps_S = hp2 * epsilon`` — Exponential-Mechanism cluster sampling,
* ``eps_E = hp3 * epsilon`` — Laplace release of the final estimate (the only
  step carrying the ``delta`` of the smooth-sensitivity framework).

Because providers hold disjoint partitions, the per-provider sequential
composition ``eps_O + eps_S + eps_E`` composes in parallel across providers,
so the whole query costs exactly ``(epsilon, delta)`` to the end user.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PrivacyConfig
from ..dp.accountant import PrivacyAccountant
from ..dp.composition import PrivacySpend, parallel_composition, sequential_composition
from ..errors import PrivacyError

__all__ = ["QueryBudget", "split_query_budget", "query_spend", "EndUserBudget"]


@dataclass(frozen=True)
class QueryBudget:
    """The per-phase budgets of one query."""

    epsilon_allocation: float
    epsilon_sampling: float
    epsilon_estimation: float
    delta: float

    @property
    def epsilon_total(self) -> float:
        """Total epsilon of the query (sequential composition of the phases)."""
        return self.epsilon_allocation + self.epsilon_sampling + self.epsilon_estimation

    def as_spend(self) -> PrivacySpend:
        """The query's total spend as a :class:`PrivacySpend`."""
        return PrivacySpend(self.epsilon_total, self.delta)


def split_query_budget(privacy: PrivacyConfig) -> QueryBudget:
    """Split a :class:`PrivacyConfig` into the three per-phase budgets."""
    return QueryBudget(
        epsilon_allocation=privacy.epsilon_allocation,
        epsilon_sampling=privacy.epsilon_sampling,
        epsilon_estimation=privacy.epsilon_estimation,
        delta=privacy.delta,
    )


def query_spend(budget: QueryBudget, num_providers: int) -> PrivacySpend:
    """Total ``(epsilon, delta)`` consumed by one query across the federation.

    Each provider sequentially spends the three phase budgets on its own
    partition; across providers the spends compose in parallel (disjoint
    data), so the end-user charge equals a single provider's sequential total.
    """
    if num_providers < 1:
        raise PrivacyError(f"num_providers must be >= 1, got {num_providers}")
    per_provider = sequential_composition(
        [
            PrivacySpend(budget.epsilon_allocation, 0.0),
            PrivacySpend(budget.epsilon_sampling, 0.0),
            PrivacySpend(budget.epsilon_estimation, budget.delta),
        ]
    )
    return parallel_composition([per_provider] * num_providers)


@dataclass
class EndUserBudget:
    """The end user's total budget ``(xi, psi)`` with query-level charging."""

    accountant: PrivacyAccountant

    @classmethod
    def create(cls, xi: float, psi: float) -> "EndUserBudget":
        """Create a budget with total epsilon ``xi`` and total delta ``psi``."""
        return cls(PrivacyAccountant(total_epsilon=xi, total_delta=psi))

    def charge_query(self, budget: QueryBudget, num_providers: int, *, label: str = "query") -> PrivacySpend:
        """Charge one query's spend, raising when the budget is exhausted."""
        spend = query_spend(budget, num_providers)
        return self.accountant.charge(spend.epsilon, spend.delta, label=label)

    def can_afford_queries(
        self, budget: QueryBudget, num_providers: int, count: int
    ) -> bool:
        """True when ``count`` queries of this size fit the remaining budget.

        Uses the accountant's own tolerance-aware check, so a batch of
        ``count`` queries is admitted exactly when charging them one at a
        time would succeed.
        """
        if count < 0:
            raise PrivacyError(f"count must be >= 0, got {count}")
        spend = query_spend(budget, num_providers)
        return self.accountant.can_afford(count * spend.epsilon, count * spend.delta)

    @property
    def remaining_epsilon(self) -> float:
        """Epsilon still available to the end user."""
        return self.accountant.remaining_epsilon

    @property
    def remaining_delta(self) -> float:
        """Delta still available to the end user."""
        return self.accountant.remaining_delta

    def queries_remaining(self, budget: QueryBudget, num_providers: int) -> int:
        """How many more queries of this size the user can still ask."""
        spend = query_spend(budget, num_providers)
        if spend.epsilon <= 0:
            return 0
        by_epsilon = int(self.remaining_epsilon // spend.epsilon)
        if spend.delta <= 0:
            return by_epsilon
        return min(by_epsilon, int(self.remaining_delta // spend.delta))
