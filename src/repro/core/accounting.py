"""Per-query privacy-budget split and end-user accounting (Section 5.4).

Each query consumes a budget ``(epsilon, delta)`` split across the three
protocol phases by the hyper-parameters ``hp1 + hp2 + hp3 = 1``:

* ``eps_O = hp1 * epsilon`` — Laplace release of ``N^Q`` and ``Avg(R̂)``,
* ``eps_S = hp2 * epsilon`` — Exponential-Mechanism cluster sampling,
* ``eps_E = hp3 * epsilon`` — Laplace release of the final estimate (the only
  step carrying the ``delta`` of the smooth-sensitivity framework).

Because providers hold disjoint partitions, the per-provider sequential
composition ``eps_O + eps_S + eps_E`` composes in parallel across providers,
so the whole query costs exactly ``(epsilon, delta)`` to the end user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import PrivacyConfig
from ..dp.accountant import PrivacyAccountant
from ..dp.composition import PrivacySpend, parallel_composition, sequential_composition
from ..errors import BudgetExhaustedError, PrivacyError

__all__ = ["QueryBudget", "split_query_budget", "query_spend", "EndUserBudget"]


@dataclass(frozen=True)
class QueryBudget:
    """The per-phase budgets of one query.

    A query's budget is a *plan*, not a charge: it says what each protocol
    phase is **allowed** to spend on every provider's partition.  What the
    query actually costs the end user can be lower — when a provider serves
    a phase from its release cache (:mod:`repro.cache`) that phase is DP
    post-processing and spends nothing.  The actual charge is reported per
    query by :attr:`~repro.federation.aggregator.FederatedAnswer.epsilon_charged`.

    Attributes
    ----------
    epsilon_allocation:
        ``eps_O`` — Laplace release of the summary ``(N^Q, Avg(R̂))``.
    epsilon_sampling:
        ``eps_S`` — Exponential-Mechanism cluster sampling.
    epsilon_estimation:
        ``eps_E`` — Laplace release of the final estimate.
    delta:
        Failure probability of the smooth-sensitivity release (spent with
        ``eps_E``; the other phases are pure-epsilon).
    """

    epsilon_allocation: float
    epsilon_sampling: float
    epsilon_estimation: float
    delta: float

    @property
    def epsilon_total(self) -> float:
        """Total epsilon of the query (sequential composition of the phases)."""
        return self.epsilon_allocation + self.epsilon_sampling + self.epsilon_estimation

    def as_spend(self) -> PrivacySpend:
        """The query's total spend as a :class:`PrivacySpend`."""
        return PrivacySpend(self.epsilon_total, self.delta)


def split_query_budget(privacy: PrivacyConfig) -> QueryBudget:
    """Split a :class:`PrivacyConfig` into the three per-phase budgets."""
    return QueryBudget(
        epsilon_allocation=privacy.epsilon_allocation,
        epsilon_sampling=privacy.epsilon_sampling,
        epsilon_estimation=privacy.epsilon_estimation,
        delta=privacy.delta,
    )


def query_spend(budget: QueryBudget, num_providers: int) -> PrivacySpend:
    """Total ``(epsilon, delta)`` consumed by one query across the federation.

    Each provider sequentially spends the three phase budgets on its own
    partition; across providers the spends compose in parallel (disjoint
    data), so the end-user charge equals a single provider's sequential total.
    """
    if num_providers < 1:
        raise PrivacyError(f"num_providers must be >= 1, got {num_providers}")
    per_provider = sequential_composition(
        [
            PrivacySpend(budget.epsilon_allocation, 0.0),
            PrivacySpend(budget.epsilon_sampling, 0.0),
            PrivacySpend(budget.epsilon_estimation, budget.delta),
        ]
    )
    return parallel_composition([per_provider] * num_providers)


@dataclass
class EndUserBudget:
    """The end user's total budget ``(xi, psi)`` with query-level charging.

    Semantics
    ---------
    The budget is a hard wallet: a charge that would overdraw either term
    raises :class:`~repro.errors.BudgetExhaustedError` and records nothing.
    Queries are priced by *sequential composition within a provider* and
    *parallel composition across providers* (disjoint partitions), so a
    fully fresh query costs exactly its ``(epsilon, delta)`` regardless of
    the federation size.  Cache-served queries are priced by what was
    actually released: phases re-served from a provider's release cache
    are post-processing and cost zero (:meth:`charge_spends` accepts the
    per-query actuals computed by the aggregator — including a full zero
    for a fully reused query, which is still recorded in the ledger for
    auditability).

    Reservations
    ------------
    Admission control over *concurrent* work needs to hold budget aside
    between pricing and charging: two submissions that are each affordable
    alone must not both be admitted when only one fits.
    :meth:`reserve` earmarks an upper bound against the wallet (raising
    :class:`~repro.errors.BudgetExhaustedError` when it does not fit on top
    of spends and earlier reservations), :meth:`release` returns it once the
    actual charge has been recorded, and :meth:`can_admit` is the
    reservation-aware affordability check.  Reservations never enter the
    accountant's ledger — only actual charges do.

    Auditing
    --------
    When ``audit`` is set to a
    :class:`~repro.obs.ledger.BudgetAuditLedger` (done by an
    observability-enabled system/scheduler, never by default), every
    successful reserve, release, and charge is mirrored as one ledger
    event under ``audit_owner``, with the exact floats the wallet applied
    — releases record the clamped actual deltas — so the event stream
    replays to the wallet's state bit-for-bit.  Events are records only:
    they never change what is charged.
    """

    accountant: PrivacyAccountant
    reserved_epsilon: float = field(default=0.0, init=False)
    reserved_delta: float = field(default=0.0, init=False)
    audit: object | None = field(default=None, repr=False, compare=False)
    audit_owner: str = field(default="", compare=False)

    @classmethod
    def create(cls, xi: float, psi: float) -> "EndUserBudget":
        """Create a budget with total epsilon ``xi`` and total delta ``psi``."""
        return cls(PrivacyAccountant(total_epsilon=xi, total_delta=psi))

    def charge_query(self, budget: QueryBudget, num_providers: int, *, label: str = "query") -> PrivacySpend:
        """Charge one fully fresh query's spend (no reuse discount)."""
        spend = query_spend(budget, num_providers)
        return self.accountant.charge(spend.epsilon, spend.delta, label=label)

    def charge_spends(
        self,
        charges: "list[tuple[float, float, str]]",
        *,
        enforce: bool = True,
        degraded: "list[bool] | None" = None,
    ) -> PrivacySpend:
        """Atomically charge one batch's per-query ``(epsilon, delta, label)`` actuals.

        Used by the cache-aware execution path: the aggregator reports what
        each query really cost after reuse, and that — not the nominal
        per-query budget — is what the wallet loses.  Zero-cost charges are
        recorded too, so the ledger shows one entry per answered query.

        With ``enforce`` (the default) the group is all-or-nothing: on
        overdraw nothing is recorded and
        :class:`~repro.errors.BudgetExhaustedError` is raised.  The system
        facade passes ``enforce=False`` when recording a batch *after* the
        protocol ran — those releases already happened, so the true spend
        is recorded even if it overdraws the wallet (admission of the next
        batch will then be refused).  Returns the group total.

        ``degraded`` optionally flags, per charge, that the query settled
        from a degraded (partial-answer) drain; the flag is audit metadata
        only and never changes the amounts.
        """
        total = self.accountant.charge_many(charges, enforce=enforce)
        if self.audit is not None:
            for position, (epsilon, delta, label) in enumerate(charges):
                self.audit.record(
                    self.audit_owner,
                    "charge",
                    epsilon,
                    delta,
                    label=label,
                    cache_reuse=(epsilon == 0.0 and delta == 0.0),
                    degraded=bool(degraded[position]) if degraded else False,
                )
        return total

    def can_afford_spend(self, epsilon: float, delta: float) -> bool:
        """True when charging ``(epsilon, delta)`` would not overdraw."""
        return self.accountant.can_afford(epsilon, delta)

    # -- admission reservations ------------------------------------------------

    def can_admit(self, epsilon: float, delta: float) -> bool:
        """Reservation-aware affordability: fits on top of held reservations."""
        return self.accountant.can_afford(
            self.reserved_epsilon + epsilon, self.reserved_delta + delta
        )

    def reserve(self, epsilon: float, delta: float) -> None:
        """Earmark ``(epsilon, delta)`` for admitted-but-uncharged work.

        Raises
        ------
        BudgetExhaustedError
            When the reservation does not fit the remaining budget on top of
            the reservations already held.  Nothing is recorded on failure.
        """
        if epsilon < 0 or delta < 0:
            raise PrivacyError(
                f"reservation must be non-negative, got ({epsilon}, {delta})"
            )
        if not self.can_admit(epsilon, delta):
            raise BudgetExhaustedError(
                f"reserving ({epsilon}, {delta}) on top of held reservations "
                f"({self.reserved_epsilon}, {self.reserved_delta}) would exceed the "
                f"remaining budget ({self.remaining_epsilon}, {self.remaining_delta})"
            )
        self.reserved_epsilon += epsilon
        self.reserved_delta += delta
        if self.audit is not None:
            self.audit.record(self.audit_owner, "reserve", epsilon, delta)

    def release(self, epsilon: float, delta: float) -> None:
        """Return a reservation taken with :meth:`reserve` (clamped at zero)."""
        # Audit the *clamped actual* deltas the wallet applies, not the
        # requested amounts, so replaying the event stream reproduces the
        # held-reservation state exactly even across over-releases.
        epsilon_applied = self.reserved_epsilon - max(0.0, self.reserved_epsilon - epsilon)
        delta_applied = self.reserved_delta - max(0.0, self.reserved_delta - delta)
        self.reserved_epsilon = max(0.0, self.reserved_epsilon - epsilon)
        self.reserved_delta = max(0.0, self.reserved_delta - delta)
        if self.audit is not None:
            self.audit.record(self.audit_owner, "release", epsilon_applied, delta_applied)

    def can_afford_queries(
        self, budget: QueryBudget, num_providers: int, count: int
    ) -> bool:
        """True when ``count`` queries of this size fit the remaining budget.

        Uses the accountant's own tolerance-aware check, so a batch of
        ``count`` queries is admitted exactly when charging them one at a
        time would succeed.
        """
        if count < 0:
            raise PrivacyError(f"count must be >= 0, got {count}")
        spend = query_spend(budget, num_providers)
        return self.accountant.can_afford(count * spend.epsilon, count * spend.delta)

    @property
    def remaining_epsilon(self) -> float:
        """Epsilon still available to the end user."""
        return self.accountant.remaining_epsilon

    @property
    def remaining_delta(self) -> float:
        """Delta still available to the end user."""
        return self.accountant.remaining_delta

    def queries_remaining(self, budget: QueryBudget, num_providers: int) -> int:
        """How many more queries of this size the user can still ask."""
        spend = query_spend(budget, num_providers)
        if spend.epsilon <= 0:
            return 0
        by_epsilon = int(self.remaining_epsilon // spend.epsilon)
        if spend.delta <= 0:
            return by_epsilon
        return min(by_epsilon, int(self.remaining_delta // spend.delta))
