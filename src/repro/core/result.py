"""Query results and execution traces.

A :class:`QueryResult` carries the DP answer plus everything needed by the
evaluation harness: the exact answer (when the caller asked for it), the
per-provider reports, timing per phase, work counters (clusters/rows
scanned vs. available), message/communication accounting and the noise that
was injected.  Keeping the trace attached to the result is what lets the
benchmark harness regenerate every figure from a single protocol run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..query.model import RangeQuery

__all__ = ["ProviderReport", "ExecutionTrace", "QueryResult", "BatchResult"]


@dataclass(frozen=True)
class ProviderReport:
    """What one data provider contributed to a query."""

    provider_id: str
    covering_clusters: int
    allocation: int
    sampled_clusters: int
    approximated: bool
    local_estimate: float
    local_noise: float
    smooth_sensitivity: float
    rows_scanned: int
    rows_available: int
    exact_local_answer: int | None = None

    @property
    def released_value(self) -> float:
        """The value the provider actually sent (estimate + its own noise)."""
        return self.local_estimate + self.local_noise


@dataclass
class ExecutionTrace:
    """Work, timing, communication, and reuse accounting for one query.

    ``summary_cache_hits`` / ``answer_cache_hits`` count the providers that
    served the respective release from their cross-query release cache (see
    :mod:`repro.cache`).  For cache hits the work counters
    (``clusters_scanned`` / ``rows_scanned``) carry the numbers of the
    *original* release — re-serving it scanned nothing.
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    simulated_network_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    clusters_scanned: int = 0
    clusters_available: int = 0
    rows_scanned: int = 0
    rows_available: int = 0
    smc_operations: int = 0
    summary_cache_hits: int = 0
    answer_cache_hits: int = 0

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across phases plus simulated network time."""
        return sum(self.phase_seconds.values()) + self.simulated_network_seconds

    @property
    def work_fraction(self) -> float:
        """Fraction of available rows actually scanned (deterministic work)."""
        if self.rows_available == 0:
            return 0.0
        return self.rows_scanned / self.rows_available


@dataclass
class QueryResult:
    """Final answer of one federated query with its full trace."""

    query: RangeQuery
    value: float
    epsilon_spent: float
    delta_spent: float
    used_smc: bool
    provider_reports: tuple[ProviderReport, ...]
    trace: ExecutionTrace
    exact_value: int | None = None
    noise_injected: float = 0.0
    degraded: bool = False
    providers_missing: tuple[str, ...] = ()

    @property
    def relative_error(self) -> float | None:
        """``|exact - estimate| / exact`` when the exact answer is known."""
        if self.exact_value is None:
            return None
        if self.exact_value == 0:
            return None if self.value == 0 else float("inf")
        return abs(self.exact_value - self.value) / abs(self.exact_value)

    @property
    def absolute_error(self) -> float | None:
        """``|exact - estimate|`` when the exact answer is known."""
        if self.exact_value is None:
            return None
        return abs(self.exact_value - self.value)

    def phase_breakdown(self) -> Mapping[str, float]:
        """Per-phase wall-clock timings."""
        return dict(self.trace.phase_seconds)

    def summary(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        parts = [f"answer={self.value:.1f}", f"eps={self.epsilon_spent:.3f}"]
        if self.exact_value is not None:
            parts.append(f"exact={self.exact_value}")
            error = self.relative_error
            if error is not None and error != float("inf"):
                parts.append(f"rel_err={100 * error:.2f}%")
        parts.append(f"clusters={self.trace.clusters_scanned}/{self.trace.clusters_available}")
        if self.degraded:
            parts.append(f"degraded(missing={','.join(self.providers_missing)})")
        return " ".join(parts)


@dataclass(frozen=True)
class BatchResult:
    """Per-query results of one batched execution plus aggregate accounting.

    The privacy budget is charged once per query (exactly as in sequential
    execution); ``wall_seconds`` is the end-to-end wall-clock of the whole
    batch, which is what the throughput metric divides by.
    """

    results: tuple[QueryResult, ...]
    wall_seconds: float

    def __post_init__(self) -> None:
        if not self.results:
            raise ValueError("a batch result needs at least one query result")

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def num_queries(self) -> int:
        """Number of queries answered by the batch."""
        return len(self.results)

    @property
    def values(self) -> tuple[float, ...]:
        """The per-query DP answers, in workload order."""
        return tuple(result.value for result in self.results)

    @property
    def epsilon_spent(self) -> float:
        """Total epsilon charged across the workload (one charge per query)."""
        return sum(result.epsilon_spent for result in self.results)

    @property
    def delta_spent(self) -> float:
        """Total delta charged across the workload."""
        return sum(result.delta_spent for result in self.results)

    @property
    def total_rows_scanned(self) -> int:
        """Rows scanned across all queries and providers."""
        return sum(result.trace.rows_scanned for result in self.results)

    @property
    def total_clusters_scanned(self) -> int:
        """Clusters scanned across all queries and providers."""
        return sum(result.trace.clusters_scanned for result in self.results)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput: queries answered per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.results) / self.wall_seconds

    # -- reuse accounting -------------------------------------------------------

    @property
    def summary_cache_hits(self) -> int:
        """Provider summary releases served from cache across the workload."""
        return sum(result.trace.summary_cache_hits for result in self.results)

    @property
    def answer_cache_hits(self) -> int:
        """Provider answer releases served from cache across the workload."""
        return sum(result.trace.answer_cache_hits for result in self.results)

    @property
    def answer_cache_hit_rate(self) -> float:
        """Fraction of (query, provider) answers served by reuse."""
        slots = sum(len(result.provider_reports) for result in self.results)
        if slots == 0:
            return 0.0
        return self.answer_cache_hits / slots

    @property
    def fully_cached_queries(self) -> int:
        """Queries that consumed zero budget (every release was reused)."""
        return sum(
            1
            for result in self.results
            if result.epsilon_spent == 0.0 and result.delta_spent == 0.0
        )

    # -- degradation accounting -------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether any query was answered without the full federation."""
        return any(result.degraded for result in self.results)

    @property
    def degraded_queries(self) -> int:
        """Queries answered by a partial federation (missing providers)."""
        return sum(1 for result in self.results if result.degraded)

    @property
    def providers_missing(self) -> tuple[str, ...]:
        """Union of provider ids missing from any query, in first-seen order."""
        seen: dict[str, None] = {}
        for result in self.results:
            for provider_id in result.providers_missing:
                seen.setdefault(provider_id, None)
        return tuple(seen)
