"""The paper's primary contribution: the private federated AQP protocol.

This package wires the substrates together:

* :mod:`~repro.core.sensitivity` — the paper-specific sensitivity analysis
  (Theorems 5.1-5.4 and Appendices A/B),
* :mod:`~repro.core.allocation` — the aggregator's allocation optimisation
  (Equations 4 and 6),
* :mod:`~repro.core.accounting` — the per-query budget split and the
  end-user budget ledger (Section 5.4),
* :mod:`~repro.core.result` — query results with full execution traces,
* :mod:`~repro.core.system` — :class:`FederatedAQPSystem`, the public facade
  that builds a federation from tables and answers queries end to end.
"""

from .accounting import QueryBudget, split_query_budget
from .allocation import AllocationProblem, AllocationResult, solve_allocation
from .result import BatchResult, ExecutionTrace, ProviderReport, QueryResult
from .sensitivity import (
    avg_proportion_sensitivity,
    delta_r,
    dominant_scenario,
    estimator_smooth_sensitivity,
    local_sensitivity_at_k,
    sampling_probability_sensitivity,
)
from .system import FederatedAQPSystem

__all__ = [
    "FederatedAQPSystem",
    "QueryResult",
    "BatchResult",
    "ProviderReport",
    "ExecutionTrace",
    "QueryBudget",
    "split_query_budget",
    "AllocationProblem",
    "AllocationResult",
    "solve_allocation",
    "delta_r",
    "avg_proportion_sensitivity",
    "sampling_probability_sensitivity",
    "dominant_scenario",
    "local_sensitivity_at_k",
    "estimator_smooth_sensitivity",
]
