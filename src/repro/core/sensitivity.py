"""Paper-specific sensitivity analysis (Theorems 5.1-5.4, Appendices A & B).

The protocol perturbs three kinds of values and needs a sensitivity for each:

* the allocation-phase summaries ``N^Q`` (sensitivity 1) and ``Avg(R̂)``
  (Theorem 5.1: ``max(ΔR / N_min, 1 / (N_min + 1))`` with
  ``ΔR = 1 - (1 - 1/S)^{|D^Q|}``),
* the per-cluster sampling probability used as the Exponential-Mechanism
  score (Theorem 5.2: ``Δp = 1 / (N_min (N_min + 1))``),
* the Hansen-Hurwitz estimator, whose global sensitivity is unbounded
  (Theorem 5.3) and is therefore released with *smooth* sensitivity: for each
  sampled cluster the dominant neighbouring scenario (Theorem 5.4) gives a
  local sensitivity growing linearly in the neighbouring distance ``k``
  (scenario 1: ``k * Q(C) * ΔR / R``; scenario 4: ``k / p``), and the smooth
  upper bound is ``max_k e^{-beta k} LS^k`` (Equation 10).  The per-cluster
  smooth sensitivities are averaged (Equation 9) to obtain the estimator's
  noise scale.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dp.sensitivity import (
    smooth_sensitivity,
    smooth_sensitivity_beta,
    smooth_sensitivity_max_k,
)
from ..errors import SensitivityError

__all__ = [
    "delta_r",
    "avg_proportion_sensitivity",
    "sampling_probability_sensitivity",
    "dominant_scenario",
    "local_sensitivity_at_k",
    "ClusterSensitivityInputs",
    "estimator_smooth_sensitivity",
    "estimator_smooth_sensitivities",
    "estimator_noise_scale",
    "smooth_peak_factor",
]


def delta_r(cluster_size: int, num_query_dimensions: int) -> float:
    """``ΔR = 1 - (1 - 1/S)^{|D^Q|}`` — sensitivity of one cluster proportion.

    ``S`` is the shared nominal cluster size and ``|D^Q|`` the number of
    dimensions constrained by the query (Appendix A.1, Equation 12).
    """
    if cluster_size < 1:
        raise SensitivityError(f"cluster_size must be >= 1, got {cluster_size}")
    if num_query_dimensions < 1:
        raise SensitivityError(
            f"num_query_dimensions must be >= 1, got {num_query_dimensions}"
        )
    return 1.0 - (1.0 - 1.0 / cluster_size) ** num_query_dimensions


def avg_proportion_sensitivity(
    cluster_size: int, num_query_dimensions: int, n_min: int
) -> float:
    """``ΔAvg(R̂) = max(ΔR / N_min, 1 / (N_min + 1))`` — Theorem 5.1."""
    if n_min < 1:
        raise SensitivityError(f"n_min must be >= 1, got {n_min}")
    dr = delta_r(cluster_size, num_query_dimensions)
    return max(dr / n_min, 1.0 / (n_min + 1))


def sampling_probability_sensitivity(n_min: int) -> float:
    """``Δp = 1 / (N_min (N_min + 1))`` — Theorem 5.2."""
    if n_min < 1:
        raise SensitivityError(f"n_min must be >= 1, got {n_min}")
    return 1.0 / (n_min * (n_min + 1))


def dominant_scenario(
    cluster_value: float, sum_proportions: float, delta_r_value: float
) -> int:
    """Pick the dominant neighbouring scenario for a cluster — Theorem 5.4.

    Returns ``1`` when scenario 1 (another cluster gains a matching row,
    shrinking this cluster's probability) dominates, which happens iff
    ``Q(C) > sum(R̂) / ΔR``; otherwise returns ``4`` (the cluster absorbs the
    new individual into an existing tensor row, adding ``1/p``).
    """
    if delta_r_value <= 0:
        raise SensitivityError(f"delta_r_value must be > 0, got {delta_r_value}")
    if sum_proportions < 0:
        raise SensitivityError(f"sum_proportions must be >= 0, got {sum_proportions}")
    if cluster_value < 0:
        raise SensitivityError(f"cluster_value must be >= 0, got {cluster_value}")
    return 1 if cluster_value > sum_proportions / delta_r_value else 4


def local_sensitivity_at_k(
    k: int,
    scenario: int,
    *,
    cluster_value: float,
    proportion: float,
    probability: float,
    delta_r_value: float,
) -> float:
    """Local sensitivity of the per-cluster estimator term at distance ``k``.

    * Scenario 1: ``LS^k = k * Q(C) * ΔR / R``
    * Scenario 4: ``LS^k = k / p``
    """
    if k < 0:
        raise SensitivityError(f"k must be >= 0, got {k}")
    if scenario == 1:
        if proportion <= 0:
            raise SensitivityError(f"proportion must be > 0 for scenario 1, got {proportion}")
        return k * cluster_value * delta_r_value / proportion
    if scenario == 4:
        if probability <= 0:
            raise SensitivityError(f"probability must be > 0 for scenario 4, got {probability}")
        return k / probability
    raise SensitivityError(f"scenario must be 1 or 4, got {scenario}")


@dataclass(frozen=True)
class ClusterSensitivityInputs:
    """Inputs needed to compute one sampled cluster's smooth sensitivity.

    Attributes
    ----------
    cluster_value:
        Exact per-cluster query result ``Q(C)``.
    proportion:
        The cluster's approximate proportion ``R̂`` (metadata-based).
    probability:
        The cluster's pps sampling probability ``p``.
    """

    cluster_value: float
    proportion: float
    probability: float


def estimator_smooth_sensitivity(
    inputs: ClusterSensitivityInputs,
    *,
    sum_proportions: float,
    delta_r_value: float,
    epsilon: float,
    delta: float,
) -> float:
    """Smooth sensitivity ``S_LS_E`` of one sampled cluster's estimator term.

    Chooses the dominant scenario (Theorem 5.4), then maximises
    ``e^{-beta k} LS^k`` over ``k`` using the Appendix B.3 bound.  The
    proportion and probability are floored at tiny positive values so that a
    cluster with an approximate proportion of zero (possible, since the
    metadata-based ``R̂`` is an approximation) still gets a finite — albeit
    large — sensitivity rather than crashing the release.
    """
    proportion = max(inputs.proportion, 1e-12)
    probability = max(inputs.probability, 1e-12)
    scenario = dominant_scenario(inputs.cluster_value, sum_proportions, delta_r_value)
    result = smooth_sensitivity(
        lambda k: local_sensitivity_at_k(
            k,
            scenario,
            cluster_value=inputs.cluster_value,
            proportion=proportion,
            probability=probability,
            delta_r_value=delta_r_value,
        ),
        epsilon,
        delta,
    )
    return result.value


@functools.lru_cache(maxsize=256)
def smooth_peak_factor(epsilon: float, delta: float) -> float:
    """``max_k k * e^{-beta k}`` over the Appendix B.3 distance bound.

    For local sensitivities linear in the neighbouring distance the smooth
    bound factorises as ``slope * smooth_peak_factor(epsilon, delta)``.  The
    factor depends only on ``(epsilon, delta)``, so it is cached across the
    queries of a batch (and across batches with the same budget split).
    """
    beta = smooth_sensitivity_beta(epsilon, delta)
    bound = smooth_sensitivity_max_k(beta)
    distances = np.arange(bound + 1, dtype=float)
    return float(np.max(distances * np.exp(-beta * distances)))


def estimator_smooth_sensitivities(
    cluster_values: np.ndarray,
    proportions: np.ndarray,
    probabilities: np.ndarray,
    *,
    sum_proportions: float | np.ndarray,
    delta_r_value: float | np.ndarray,
    epsilon: float,
    delta: float,
) -> np.ndarray:
    """Vectorised ``S_LS_E`` for a batch of sampled clusters at once.

    Both dominant scenarios of Theorem 5.4 have local sensitivity linear in
    the neighbouring distance, ``LS^k = k * slope``, so the smooth bound
    factorises as ``slope * max_k k * e^{-beta k}`` — the peak factor depends
    only on ``(epsilon, delta)`` and is computed once for the whole batch of
    clusters instead of re-scanning distances per cluster.  Proportions and
    probabilities are floored exactly as in the scalar path.

    ``sum_proportions`` and ``delta_r_value`` may be scalars (all clusters
    belong to one query) or arrays aligned with ``cluster_values`` (clusters
    of many queries flattened together, as the provider's batch engine does).
    """
    sums = np.asarray(sum_proportions, dtype=float)
    delta_rs = np.asarray(delta_r_value, dtype=float)
    if np.any(delta_rs <= 0):
        raise SensitivityError(f"delta_r_value must be > 0, got {delta_r_value}")
    if np.any(sums < 0):
        raise SensitivityError(f"sum_proportions must be >= 0, got {sum_proportions}")
    peak = smooth_peak_factor(epsilon, delta)
    values = np.asarray(cluster_values, dtype=float)
    if np.any(values < 0):
        raise SensitivityError("cluster values must be >= 0")
    floored_proportions = np.maximum(np.asarray(proportions, dtype=float), 1e-12)
    floored_probabilities = np.maximum(np.asarray(probabilities, dtype=float), 1e-12)
    scenario_one = values > sums / delta_rs
    slopes = np.where(
        scenario_one,
        values * delta_rs / floored_proportions,
        1.0 / floored_probabilities,
    )
    return slopes * peak


def estimator_noise_scale(
    per_cluster_smooth: Sequence[float], epsilon: float
) -> float:
    """Laplace scale for the final estimate (Algorithm 3, line 10).

    The estimator averages the per-cluster terms, so its smooth sensitivity is
    the average of the per-cluster smooth sensitivities (Equation 9), and the
    smooth-sensitivity framework injects ``Lap(2 * S_LS / epsilon)``.
    """
    values = list(per_cluster_smooth)
    if not values:
        raise SensitivityError("per_cluster_smooth must be non-empty")
    if epsilon <= 0 or not math.isfinite(epsilon):
        raise SensitivityError(f"epsilon must be a finite positive number, got {epsilon}")
    average = sum(values) / len(values)
    return 2.0 * average / epsilon
