"""Per-query attacker budgets under the three composition regimes of Table 1.

The attacker holds a total budget ``(xi, psi)`` and needs ``n`` training
queries.  Depending on the composition strategy the per-query budget is:

* **sequential** — ``epsilon = xi / n`` and ``delta = psi / n``,
* **advanced** — ``epsilon = xi / (2 * sqrt(2 n ln(1/delta)))``, the larger
  allocation the paper derives from advanced composition,
* **coalition** — ``epsilon = xi`` per query: ``n`` colluding attackers each
  spend their whole budget on a single query and pool the answers (parallel
  composition across attackers' budgets, not across data).
"""

from __future__ import annotations

import enum

from ..dp.composition import (
    advanced_composition_epsilon_per_query,
    sequential_epsilon_per_query,
)
from ..errors import AttackError

__all__ = ["AttackBudgetRegime", "per_query_epsilon", "per_query_delta"]


class AttackBudgetRegime(enum.Enum):
    """How the attacker spreads its total budget over the training queries."""

    SEQUENTIAL = "sequential"
    ADVANCED = "advanced"
    COALITION = "coalition"


def per_query_epsilon(
    regime: AttackBudgetRegime, total_epsilon: float, n_queries: int, delta: float
) -> float:
    """Epsilon available to each training query under ``regime``."""
    if n_queries < 1:
        raise AttackError(f"n_queries must be >= 1, got {n_queries}")
    if total_epsilon <= 0:
        raise AttackError(f"total_epsilon must be > 0, got {total_epsilon}")
    if regime is AttackBudgetRegime.SEQUENTIAL:
        return sequential_epsilon_per_query(total_epsilon, n_queries)
    if regime is AttackBudgetRegime.ADVANCED:
        return advanced_composition_epsilon_per_query(total_epsilon, n_queries, delta)
    if regime is AttackBudgetRegime.COALITION:
        return total_epsilon
    raise AttackError(f"unknown regime: {regime!r}")


def per_query_delta(
    regime: AttackBudgetRegime, total_delta: float, n_queries: int
) -> float:
    """Delta available to each training query under ``regime``."""
    if n_queries < 1:
        raise AttackError(f"n_queries must be >= 1, got {n_queries}")
    if not 0 < total_delta < 1:
        raise AttackError(f"total_delta must be in (0, 1), got {total_delta}")
    if regime is AttackBudgetRegime.COALITION:
        return total_delta
    return total_delta / n_queries
