"""Naive-Bayes-classifier attribute-inference attack (Cormode, 2010).

The attacker wants to predict a sensitive attribute ``SA`` from a set of
quasi-identifier attributes ``QI``.  It trains a Naive Bayes classifier using
only aggregate COUNT (or SUM) answers obtained from the protected system:

* one query for the table size ``N``,
* one query per sensitive value ``y`` for ``count(SA = y)``,
* one query per ``(y, d, v)`` for ``count(SA = y AND d = v)`` over every
  quasi-identifier dimension ``d`` and value ``v``,

for a total of ``1 + ||SA|| + ||SA|| * sum_d ||d||`` queries — the
``nQueries`` formula of Section 6.6.  Prediction follows Bayes' rule:
``argmax_y P(y) * prod_i P(v_i | y) / P(v_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import AttackError
from ..query.model import Aggregation, RangeQuery
from ..storage.schema import Schema
from ..storage.table import Table

__all__ = ["attack_query_count", "NaiveBayesAttacker"]

AnswerFunction = Callable[[RangeQuery], float]
"""Oracle mapping a training query to its (noisy) answer."""


def attack_query_count(schema: Schema, sensitive: str, quasi_identifiers: Sequence[str]) -> int:
    """Number of training queries the attack needs (the paper's ``nQueries``)."""
    sa_size = schema.dimension(sensitive).domain_size
    qi_total = sum(schema.dimension(name).domain_size for name in quasi_identifiers)
    return 1 + sa_size + sa_size * qi_total


@dataclass
class NaiveBayesAttacker:
    """Trains a Naive Bayes classifier from noisy aggregate answers.

    Parameters
    ----------
    schema:
        Schema of the attacked table.
    sensitive:
        Name of the sensitive dimension ``SA``.
    quasi_identifiers:
        Names of the quasi-identifier dimensions ``QI``.
    aggregation:
        COUNT or SUM — the paper evaluates both.
    """

    schema: Schema
    sensitive: str
    quasi_identifiers: Sequence[str]
    aggregation: Aggregation = Aggregation.COUNT
    _total: float = field(init=False, default=0.0)
    _class_counts: dict[int, float] = field(init=False, default_factory=dict)
    _joint_counts: dict[tuple[int, str, int], float] = field(init=False, default_factory=dict)
    _trained: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self.schema.dimension(self.sensitive)
        if not self.quasi_identifiers:
            raise AttackError("at least one quasi-identifier dimension is required")
        for name in self.quasi_identifiers:
            self.schema.dimension(name)
        if self.sensitive in self.quasi_identifiers:
            raise AttackError("the sensitive dimension cannot also be a quasi-identifier")

    # -- training ---------------------------------------------------------------

    def training_queries(self) -> list[RangeQuery]:
        """All training queries, in issue order."""
        queries: list[RangeQuery] = [self._full_table_query()]
        sa = self.schema.dimension(self.sensitive)
        for y in range(sa.low, sa.high + 1):
            queries.append(RangeQuery(self.aggregation, {self.sensitive: (y, y)}))
        for y in range(sa.low, sa.high + 1):
            for name in self.quasi_identifiers:
                dimension = self.schema.dimension(name)
                for v in range(dimension.low, dimension.high + 1):
                    queries.append(
                        RangeQuery(
                            self.aggregation,
                            {self.sensitive: (y, y), name: (v, v)},
                        )
                    )
        return queries

    def num_queries(self) -> int:
        """``nQueries`` for this attack configuration."""
        return attack_query_count(self.schema, self.sensitive, self.quasi_identifiers)

    def train(self, answer: AnswerFunction) -> int:
        """Issue every training query through ``answer`` and fit the model.

        Returns the number of queries issued.  Noisy negative answers are
        clamped at zero, as a real attacker would do.
        """
        sa = self.schema.dimension(self.sensitive)
        issued = 0

        self._total = max(0.0, float(answer(self._full_table_query())))
        issued += 1

        self._class_counts = {}
        for y in range(sa.low, sa.high + 1):
            value = float(answer(RangeQuery(self.aggregation, {self.sensitive: (y, y)})))
            self._class_counts[y] = max(0.0, value)
            issued += 1

        self._joint_counts = {}
        for y in range(sa.low, sa.high + 1):
            for name in self.quasi_identifiers:
                dimension = self.schema.dimension(name)
                for v in range(dimension.low, dimension.high + 1):
                    query = RangeQuery(
                        self.aggregation, {self.sensitive: (y, y), name: (v, v)}
                    )
                    self._joint_counts[(y, name, v)] = max(0.0, float(answer(query)))
                    issued += 1

        self._trained = True
        return issued

    # -- prediction ---------------------------------------------------------------

    def predict(self, qi_values: Mapping[str, int]) -> int:
        """Predict the sensitive value of an individual from its QI values."""
        if not self._trained:
            raise AttackError("the attacker must be trained before predicting")
        sa = self.schema.dimension(self.sensitive)
        total = max(self._total, 1e-9)
        best_value = sa.low
        best_score = -np.inf
        for y in range(sa.low, sa.high + 1):
            class_count = max(self._class_counts.get(y, 0.0), 1e-9)
            score = np.log(class_count / total)
            for name in self.quasi_identifiers:
                v = int(qi_values[name])
                joint = max(self._joint_counts.get((y, name, v), 0.0), 1e-9)
                marginal = max(
                    sum(
                        self._joint_counts.get((y2, name, v), 0.0)
                        for y2 in range(sa.low, sa.high + 1)
                    ),
                    1e-9,
                )
                # P(v | y) / P(v) = (joint / class_count) / (marginal / total)
                score += np.log(joint / class_count) - np.log(marginal / total)
            if score > best_score:
                best_score = score
                best_value = y
        return best_value

    def accuracy(self, table: Table, *, max_rows: int | None = None) -> float:
        """Fraction of rows whose sensitive value the attacker predicts right."""
        if table.num_rows == 0:
            raise AttackError("cannot evaluate accuracy on an empty table")
        limit = table.num_rows if max_rows is None else min(max_rows, table.num_rows)
        correct = 0
        sensitive_column = table.column(self.sensitive)
        qi_columns = {name: table.column(name) for name in self.quasi_identifiers}
        for index in range(limit):
            qi_values = {name: int(column[index]) for name, column in qi_columns.items()}
            if self.predict(qi_values) == int(sensitive_column[index]):
                correct += 1
        return correct / limit

    # -- helpers --------------------------------------------------------------------

    def _full_table_query(self) -> RangeQuery:
        sa = self.schema.dimension(self.sensitive)
        return RangeQuery(self.aggregation, {self.sensitive: (sa.low, sa.high)})
