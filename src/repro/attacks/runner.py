"""Attack experiment runner (reproduces Table 1).

For a given ``(regime, aggregation, xi)`` configuration the runner:

1. derives the per-query budget the attacker may spend,
2. trains the Naive Bayes attacker by issuing every training query through
   the protected federated system (each answer is approximated *and* noised,
   exactly like a legitimate query),
3. measures the attacker's prediction accuracy on the true rows,
4. compares it against the chance baseline ``1 / ||SA||``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.system import FederatedAQPSystem
from ..errors import AttackError
from ..query.model import Aggregation, RangeQuery
from ..storage.table import Table
from .budgeting import AttackBudgetRegime, per_query_delta, per_query_epsilon
from .nbc import NaiveBayesAttacker

__all__ = ["AttackOutcome", "AttackRunner"]


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack configuration."""

    regime: AttackBudgetRegime
    aggregation: Aggregation
    total_epsilon: float
    per_query_epsilon: float
    num_queries: int
    accuracy: float
    chance_accuracy: float

    @property
    def is_resisted(self) -> bool:
        """True when the attack does no better than ~chance (within 2x)."""
        return self.accuracy <= max(0.02, 2.0 * self.chance_accuracy)


@dataclass
class AttackRunner:
    """Drives the NBC attack against a :class:`FederatedAQPSystem`."""

    system: FederatedAQPSystem
    original_table: Table
    sensitive: str
    quasi_identifiers: Sequence[str]
    sampling_rate: float = 0.2
    evaluation_rows: int = 500

    def __post_init__(self) -> None:
        if self.evaluation_rows < 1:
            raise AttackError(f"evaluation_rows must be >= 1, got {self.evaluation_rows}")

    def run(
        self,
        regime: AttackBudgetRegime,
        aggregation: Aggregation,
        total_epsilon: float,
        total_delta: float = 1e-6,
    ) -> AttackOutcome:
        """Run one attack configuration and return its outcome."""
        schema = self.original_table.schema
        attacker = NaiveBayesAttacker(
            schema=schema,
            sensitive=self.sensitive,
            quasi_identifiers=self.quasi_identifiers,
            aggregation=aggregation,
        )
        n_queries = attacker.num_queries()
        epsilon = per_query_epsilon(regime, total_epsilon, n_queries, total_delta)
        delta = per_query_delta(regime, total_delta, n_queries)

        def answer(query: RangeQuery) -> float:
            result = self.system.execute(
                query,
                sampling_rate=self.sampling_rate,
                epsilon=epsilon,
                compute_exact=False,
            )
            return result.value

        # The per-query delta enters through the smooth-sensitivity release;
        # the system-level delta stays at its configured value, so we only
        # need to lower epsilon here (delta is already tiny).
        del delta
        attacker.train(answer)
        accuracy = attacker.accuracy(self.original_table, max_rows=self.evaluation_rows)
        chance = 1.0 / schema.dimension(self.sensitive).domain_size
        return AttackOutcome(
            regime=regime,
            aggregation=aggregation,
            total_epsilon=total_epsilon,
            per_query_epsilon=epsilon,
            num_queries=n_queries,
            accuracy=accuracy,
            chance_accuracy=chance,
        )
