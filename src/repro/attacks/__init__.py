"""Learning-based attribute-inference attack (Section 6.6).

Implements the Naive-Bayes-classifier attack of Cormode (2010): an attacker
issues COUNT/SUM range queries against the protected system, learns the
conditional probabilities linking quasi-identifier attributes to a sensitive
attribute, and predicts the sensitive value of every individual.  The runner
evaluates the attack under the three budget regimes of Table 1 (sequential
composition, advanced composition, and a coalition of single-query
attackers).
"""

from .budgeting import AttackBudgetRegime, per_query_epsilon
from .nbc import NaiveBayesAttacker, attack_query_count
from .runner import AttackOutcome, AttackRunner

__all__ = [
    "NaiveBayesAttacker",
    "attack_query_count",
    "AttackBudgetRegime",
    "per_query_epsilon",
    "AttackRunner",
    "AttackOutcome",
]
