"""Compiled kernel tier: backend resolution for the layout's hot loops.

The row-evaluation kernels of :class:`~repro.storage.layout.ClusterLayout`
have two interchangeable implementations:

* the **numpy** backend — the pure-NumPy reference path (gather + broadcast
  comparisons + ``np.add.reduceat``), always available;
* the **numba** backend — ``@njit(cache=True)`` loops from
  :mod:`repro.storage._kernels_numba` that fuse the straddler-mask
  construction and the masked segmented reduction into per-pair loops with
  no per-row temporaries beyond one reusable byte mask.

Which one runs is selected by ``ExecutionConfig.kernel_backend``:

* ``"auto"`` (default) — numba when importable, numpy otherwise;
* ``"numpy"`` — always the reference path;
* ``"numba"`` — the compiled path, falling back to numpy with a *one-time*
  :class:`RuntimeWarning` (and the reason recorded in the kernel telemetry)
  when numba is not installed.

Both backends are bit-identical: the kernels only ever add int64 measures,
and integer sums are exact under any evaluation order.  numba stays a soft
dependency — nothing in this module imports it at module load time.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

__all__ = [
    "KernelBackend",
    "resolve_backend",
    "numba_available",
    "numba_kernels",
]

_numba_kernels = None
_numba_error: str | None = None
_warned_fallback = False


def numba_kernels():
    """The :mod:`repro.storage._kernels_numba` module, or ``None``.

    The import (and therefore the numba dependency probe) happens at most
    once per process; an unavailable numba is remembered as the fallback
    reason instead of being re-probed on every kernel call.
    """
    global _numba_kernels, _numba_error
    if _numba_kernels is None and _numba_error is None:
        try:
            from . import _kernels_numba

            _numba_kernels = _kernels_numba
        except ImportError as error:
            _numba_error = f"numba unavailable ({error})"
    return _numba_kernels


def numba_available() -> bool:
    """True when the compiled backend can actually run in this process."""
    return numba_kernels() is not None


@dataclass(frozen=True)
class KernelBackend:
    """The resolved kernel backend for one execution configuration.

    Attributes
    ----------
    name:
        The backend that will actually run: ``"numpy"`` or ``"numba"``.
    requested:
        The ``ExecutionConfig.kernel_backend`` value that was asked for.
    fallback_reason:
        Non-empty exactly when ``"numba"`` was explicitly requested but the
        numpy path runs instead; recorded into the kernel telemetry so the
        silent-degradation mode is observable.
    """

    name: str
    requested: str
    fallback_reason: str = ""

    @property
    def compiled(self) -> bool:
        """True when the njit kernels serve this configuration."""
        return self.name == "numba"


def resolve_backend(requested: str) -> KernelBackend:
    """Map a ``kernel_backend`` setting onto the backend that will run.

    ``"numba"`` requested without numba installed degrades to numpy — loudly:
    a :class:`RuntimeWarning` is emitted once per process (not per call, so
    hot loops stay quiet after the first) and the returned backend carries
    the reason for telemetry.
    """
    if requested == "numpy":
        return KernelBackend(name="numpy", requested=requested)
    if numba_available():
        return KernelBackend(name="numba", requested=requested)
    if requested == "numba":
        global _warned_fallback
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                'kernel_backend="numba" requested but numba is not importable; '
                "falling back to the pure-NumPy kernels (results are "
                "bit-identical, only slower). Install numba to enable the "
                "compiled tier.",
                RuntimeWarning,
                stacklevel=3,
            )
        return KernelBackend(
            name="numpy",
            requested=requested,
            fallback_reason=_numba_error or "numba unavailable",
        )
    # "auto" without numba: numpy is the intended backend, not a fallback.
    return KernelBackend(name="numpy", requested=requested)
