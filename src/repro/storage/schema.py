"""Schemas over discrete, totally ordered attribute domains.

The paper's data model (Section 3) assumes every dimension ``d`` has a
discrete and totally ordered domain ``|d|``.  We model domains as integer
ranges ``[low, high]``; categorical attributes are expected to be encoded to
integers by the dataset generators.  A schema optionally designates one
column as the ``Measure`` column of a count tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError

__all__ = ["Dimension", "Schema", "MEASURE_COLUMN"]

MEASURE_COLUMN = "measure"
"""Conventional name of the count-tensor measure column."""


@dataclass(frozen=True)
class Dimension:
    """A named attribute with a discrete integer domain ``[low, high]``.

    Attributes
    ----------
    name:
        Attribute name (unique within a schema, case-sensitive).
    low, high:
        Inclusive bounds of the integer domain.
    """

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SchemaError("dimension name must be a non-empty string")
        if self.low > self.high:
            raise SchemaError(
                f"dimension {self.name!r}: low ({self.low}) must be <= high ({self.high})"
            )

    @property
    def domain_size(self) -> int:
        """Number of distinct values in the domain (the paper's ``||d||``)."""
        return self.high - self.low + 1

    def contains(self, value: int) -> bool:
        """True when ``value`` lies inside the domain."""
        return self.low <= value <= self.high

    def clip(self, value: int) -> int:
        """Clamp ``value`` into the domain."""
        return min(self.high, max(self.low, value))


@dataclass(frozen=True)
class Schema:
    """An ordered collection of dimensions, optionally with a measure column.

    The measure column (``Measure`` in the paper's Figure 2) stores the number
    of original rows aggregated into each count-tensor row and is never range
    queried itself.
    """

    dimensions: tuple[Dimension, ...]
    measure: str | None = None
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise SchemaError("a schema must declare at least one dimension")
        names = [dimension.name for dimension in self.dimensions]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate dimension names: {sorted(duplicates)}")
        if self.measure is not None and self.measure in names:
            raise SchemaError(
                f"measure column {self.measure!r} collides with a dimension name"
            )
        object.__setattr__(self, "_index", {name: i for i, name in enumerate(names)})

    @classmethod
    def from_dimensions(
        cls, dimensions: Iterable[Dimension], measure: str | None = None
    ) -> "Schema":
        """Build a schema from an iterable of dimensions."""
        return cls(tuple(dimensions), measure=measure)

    @property
    def dimension_names(self) -> tuple[str, ...]:
        """Names of the dimensions, in declaration order."""
        return tuple(dimension.name for dimension in self.dimensions)

    @property
    def column_names(self) -> tuple[str, ...]:
        """All column names, measure last when present."""
        if self.measure is None:
            return self.dimension_names
        return self.dimension_names + (self.measure,)

    @property
    def has_measure(self) -> bool:
        """True when the schema carries a measure column (count tensor)."""
        return self.measure is not None

    def __len__(self) -> int:
        return len(self.dimensions)

    def __iter__(self) -> Iterator[Dimension]:
        return iter(self.dimensions)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def dimension(self, name: str) -> Dimension:
        """Return the dimension named ``name`` or raise :class:`SchemaError`."""
        try:
            return self.dimensions[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"unknown dimension {name!r}; known dimensions: {list(self.dimension_names)}"
            ) from None

    def dimension_index(self, name: str) -> int:
        """Positional index of the dimension named ``name``."""
        self.dimension(name)
        return self._index[name]

    def with_measure(self, measure: str = MEASURE_COLUMN) -> "Schema":
        """Return a copy of this schema with a measure column attached."""
        return Schema(self.dimensions, measure=measure)

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a schema restricted to ``names`` (measure is dropped)."""
        return Schema(tuple(self.dimension(name) for name in names), measure=None)
