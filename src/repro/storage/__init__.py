"""Storage substrate: schemas, tables, clusters, count tensors and metadata.

The paper assumes each provider stores its table as a set of bounded-size
clusters (PostgreSQL pages / HDFS blocks) plus lightweight per-cluster
metadata (Algorithm 1).  This package provides a pure-Python/NumPy columnar
equivalent:

* :class:`~repro.storage.schema.Schema` / ``Dimension`` describe discrete,
  totally ordered attribute domains,
* :class:`~repro.storage.table.Table` is a columnar row store,
* :func:`~repro.storage.tensor.build_count_tensor` aggregates a table into a
  count tensor with a ``Measure`` column (Figure 2),
* :class:`~repro.storage.clustered_table.ClusteredTable` splits a table into
  clusters of at most ``S`` rows,
* :mod:`~repro.storage.metadata` implements Algorithm 1: per-cluster
  ``R_{d>=}(v)`` proportions and global per-cluster min/max bounds.
"""

from .cluster import Cluster
from .clustered_table import ClusteredTable
from .layout import ClusterLayout
from .metadata import (
    ClusterMetadata,
    GlobalClusterEntry,
    MetadataStore,
    build_metadata,
)
from .schema import Dimension, Schema
from .table import Table
from .tensor import build_count_tensor

__all__ = [
    "Dimension",
    "Schema",
    "Table",
    "Cluster",
    "ClusteredTable",
    "ClusterLayout",
    "build_count_tensor",
    "ClusterMetadata",
    "GlobalClusterEntry",
    "MetadataStore",
    "build_metadata",
]
