"""Offline cluster metadata (the paper's Algorithm 1).

During the offline pre-processing phase each data provider builds, for every
cluster ``C`` and every dimension ``d``:

* the per-value proportions ``R_{d>=}(v) = |rows with d >= v| / S`` for each
  distinct value ``v`` present in the cluster (stored compactly as the sorted
  distinct values plus suffix counts, so a lookup for an arbitrary ``x`` is a
  binary search), and
* the global entry ``(v_min, v_max)`` per dimension, used by Equation 2 to
  identify the covering set ``C^Q`` without touching any rows.

``S`` is the *nominal* cluster size shared by all providers (Section 7); it is
used as the denominator even when a cluster holds fewer rows, which is what
makes proportions comparable across providers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import StorageError
from .cluster import Cluster
from .clustered_table import ClusteredTable
from .layout import OPEN_HIGH, OPEN_LOW

__all__ = [
    "DimensionMetadata",
    "ClusterMetadata",
    "GlobalClusterEntry",
    "MetadataStore",
    "QueryCostStats",
    "build_metadata",
    "patch_metadata",
]


@dataclass(frozen=True)
class QueryCostStats:
    """Pre-execution work statistics of one query against one layout.

    Everything here is derived from the zone maps (per-cluster ``[v_min,
    v_max]`` bounds) and the occupancy vector — the same metadata the
    covering-set pass of Equation 2 reads — so estimating a query's cost
    touches no rows.  A cluster whose zone box lies fully inside the query
    box is *covered* (its contribution is known from metadata proportions
    alone); an overlapping-but-not-covered cluster is a *straddler*, whose
    rows are the ones a pruned executor actually has to inspect.
    """

    clusters_touched: int
    clusters_covered: int
    straddler_rows: int
    covered_rows: int

    @property
    def clusters_straddling(self) -> int:
        """Overlapping clusters whose zone box crosses the query boundary."""
        return self.clusters_touched - self.clusters_covered



@dataclass(frozen=True)
class DimensionMetadata:
    """Suffix-count metadata for one dimension of one cluster.

    ``values`` are the sorted distinct values present in the cluster and
    ``rows_geq[i]`` is the number of cluster rows whose value is
    ``>= values[i]``.
    """

    values: np.ndarray
    rows_geq: np.ndarray
    nominal_size: int

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.int64)
        rows_geq = np.asarray(self.rows_geq, dtype=np.int64)
        if values.shape != rows_geq.shape or values.ndim != 1:
            raise StorageError("values and rows_geq must be one-dimensional and aligned")
        if values.size > 1 and not np.all(np.diff(values) > 0):
            raise StorageError("values must be strictly increasing")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "rows_geq", rows_geq)

    def rows_at_least(self, threshold: int) -> int:
        """Number of cluster rows whose value is ``>= threshold``."""
        if self.values.size == 0:
            return 0
        position = int(np.searchsorted(self.values, threshold, side="left"))
        if position >= self.values.size:
            return 0
        return int(self.rows_geq[position])

    def proportion_at_least(self, threshold: int) -> float:
        """``R_{d>=}(threshold)``: proportion (over ``S``) of rows ``>= threshold``."""
        return self.rows_at_least(threshold) / self.nominal_size

    def proportion_in_range(self, low: int, high: int) -> float:
        """Proportion of rows with value in the inclusive range ``[low, high]``.

        Implemented as ``R_{d>=}(low) - R_{d>=}(high + 1)`` which is the
        inclusive-range variant of the paper's ``R_d`` (see DESIGN.md).
        """
        if low > high:
            return 0.0
        return (self.rows_at_least(low) - self.rows_at_least(high + 1)) / self.nominal_size

    def entry_count(self) -> int:
        """Number of stored ``(d, v, R)`` entries for this dimension."""
        return int(self.values.size)


@dataclass(frozen=True)
class GlobalClusterEntry:
    """Per-cluster, per-dimension min/max bounds (the global metadata file)."""

    cluster_id: int
    bounds: Mapping[str, tuple[int, int]]
    num_rows: int

    def overlaps(self, ranges: Mapping[str, tuple[int, int]]) -> bool:
        """True when the cluster's bounds intersect every queried range.

        This is the paper's Equation 2: a cluster belongs to ``C^Q`` iff for
        every queried dimension its ``[v_min, v_max]`` interval intersects the
        query interval.  Empty clusters never overlap.
        """
        if self.num_rows == 0:
            return False
        for name, (low, high) in ranges.items():
            if name not in self.bounds:
                return False
            v_min, v_max = self.bounds[name]
            if v_max < low or v_min > high:
                return False
        return True


@dataclass(frozen=True)
class ClusterMetadata:
    """All metadata of one cluster: per-dimension suffix counts + bounds."""

    cluster_id: int
    nominal_size: int
    num_rows: int
    dimensions: Mapping[str, DimensionMetadata]

    def proportion_for_ranges(self, ranges: Mapping[str, tuple[int, int]]) -> float:
        """Approximate ``R``: product of per-dimension range proportions (Eq. 1).

        Assumes dimension independence, exactly like the paper.  Dimensions
        absent from ``ranges`` contribute a factor of 1 (no restriction).
        """
        proportion = 1.0
        for name, (low, high) in ranges.items():
            if name not in self.dimensions:
                raise StorageError(
                    f"cluster {self.cluster_id} has no metadata for dimension {name!r}"
                )
            proportion *= self.dimensions[name].proportion_in_range(low, high)
            if proportion == 0.0:
                return 0.0
        return proportion

    def global_entry(self) -> GlobalClusterEntry:
        """Build the global-metadata entry (per-dimension min/max)."""
        bounds: dict[str, tuple[int, int]] = {}
        for name, meta in self.dimensions.items():
            if meta.values.size:
                bounds[name] = (int(meta.values[0]), int(meta.values[-1]))
        return GlobalClusterEntry(
            cluster_id=self.cluster_id, bounds=bounds, num_rows=self.num_rows
        )

    def entry_count(self) -> int:
        """Total number of stored metadata entries across dimensions."""
        return sum(meta.entry_count() for meta in self.dimensions.values())

    def size_bytes(self) -> int:
        """Approximate serialised size: each entry stores a value + a count."""
        per_entry = 16  # one 8-byte value + one 8-byte suffix count
        bounds_bytes = 16 * len(self.dimensions)
        return per_entry * self.entry_count() + bounds_bytes


@dataclass(frozen=True)
class DenseDimensionIndex:
    """Vectorised acceleration structure for one dimension across all clusters.

    ``rows_geq[c, v - domain_low]`` is the number of rows of cluster ``c``
    whose value is ``>= v``; an extra trailing column of zeros covers
    ``domain_high + 1``.  ``v_min`` / ``v_max`` are the per-cluster bounds used
    for covering-set identification.  This is a query-time acceleration of the
    same information Algorithm 1 stores; the serialised-size accounting keeps
    using the sparse per-cluster representation.

    ``rows_geq`` is stored as int32 — counts are bounded by the cluster size,
    and the batched fancy-indexing passes are memory-bound, so halving the
    element width halves the gather traffic (the count arithmetic is exact in
    either width; proportions divide in float64 regardless).
    """

    domain_low: int
    domain_high: int
    rows_geq: np.ndarray
    v_min: np.ndarray
    v_max: np.ndarray

    def range_counts(self, cluster_positions: np.ndarray, low: int, high: int) -> np.ndarray:
        """Rows of each cluster (by position) with value in ``[low, high]``."""
        low_clipped = max(low, self.domain_low)
        high_clipped = min(high, self.domain_high)
        if low_clipped > high_clipped:
            return np.zeros(cluster_positions.size, dtype=self.rows_geq.dtype)
        low_col = low_clipped - self.domain_low
        high_col = high_clipped + 1 - self.domain_low
        return (
            self.rows_geq[cluster_positions, low_col]
            - self.rows_geq[cluster_positions, high_col]
        )

    def range_counts_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Per-(query, cluster) matching-row counts — ``(nq, nc)`` in one shot.

        ``lows`` / ``highs`` hold one inclusive bound pair per query; queries
        whose clipped interval is empty get all-zero counts, mirroring
        :meth:`range_counts`.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        low_clipped = np.maximum(lows, self.domain_low)
        high_clipped = np.minimum(highs, self.domain_high)
        valid = low_clipped <= high_clipped
        low_col = np.where(valid, low_clipped - self.domain_low, 0)
        high_col = np.where(valid, high_clipped + 1 - self.domain_low, 0)
        counts = (self.rows_geq[:, low_col] - self.rows_geq[:, high_col]).T
        counts[~valid, :] = 0
        return counts

    def overlap_mask(self, low: int, high: int) -> np.ndarray:
        """Boolean mask of clusters whose [v_min, v_max] intersects [low, high]."""
        return (self.v_max >= low) & (self.v_min <= high)

    def overlap_mask_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Per-(query, cluster) Equation-2 overlap masks — ``(nq, nc)``."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        return (self.v_max[None, :] >= lows[:, None]) & (
            self.v_min[None, :] <= highs[:, None]
        )


@dataclass
class MetadataStore:
    """Metadata for every cluster of a provider's clustered table."""

    clusters: Mapping[int, ClusterMetadata]
    global_entries: tuple[GlobalClusterEntry, ...]
    nominal_size: int
    dense_index: Mapping[str, DenseDimensionIndex] | None = None
    cluster_ids: tuple[int, ...] = ()
    occupancy: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.cluster_ids:
            self.cluster_ids = tuple(entry.cluster_id for entry in self.global_entries)
        self._position = {cluster_id: i for i, cluster_id in enumerate(self.cluster_ids)}
        if self.occupancy is None:
            self.occupancy = np.array(
                [entry.num_rows for entry in self.global_entries], dtype=np.int64
            )

    def covering_cluster_ids(self, ranges: Mapping[str, tuple[int, int]]) -> list[int]:
        """Identify ``C^Q``: ids of clusters whose bounds overlap the query."""
        return self.covering_cluster_ids_batch([ranges])[0]

    def covering_cluster_ids_batch(
        self, ranges_list: Sequence[Mapping[str, tuple[int, int]]]
    ) -> list[list[int]]:
        """Identify ``C^Q`` for every query of a workload in one dense pass.

        All queries' overlap masks are evaluated against the dense index with
        one broadcast comparison per dimension; the scalar per-entry path is
        the fallback when a queried dimension is not densely indexed.
        """
        return [
            [self.cluster_ids[i] for i in positions]
            for positions in self.covering_positions_batch(ranges_list)
        ]

    def covering_positions_batch(
        self, ranges_list: Sequence[Mapping[str, tuple[int, int]]]
    ) -> list[np.ndarray]:
        """Covering sets as storage-order positions (the batch-engine form).

        Positions index into :attr:`cluster_ids` / the provider's cluster
        layout, so downstream vectorised kernels can skip the id indirection.
        """
        if not ranges_list:
            return []
        if self.dense_index is None or not all(
            name in self.dense_index for ranges in ranges_list for name in ranges
        ):
            position_of = self._position
            return [
                np.array(
                    [
                        position_of[cluster_id]
                        for cluster_id in self._covering_cluster_ids_scalar(ranges)
                    ],
                    dtype=np.int64,
                )
                for ranges in ranges_list
            ]
        num_queries = len(ranges_list)
        mask = np.broadcast_to(
            self.occupancy > 0, (num_queries, len(self.cluster_ids))
        ).copy()
        for name in self._union_dimensions(ranges_list):
            index = self.dense_index[name]
            lows = np.full(num_queries, OPEN_LOW, dtype=np.int64)
            highs = np.full(num_queries, OPEN_HIGH, dtype=np.int64)
            for position, ranges in enumerate(ranges_list):
                if name in ranges:
                    lows[position], highs[position] = ranges[name]
            mask &= index.overlap_mask_batch(lows, highs)
        return [np.flatnonzero(row) for row in mask]

    def _covering_cluster_ids_scalar(
        self, ranges: Mapping[str, tuple[int, int]]
    ) -> list[int]:
        return [entry.cluster_id for entry in self.global_entries if entry.overlaps(ranges)]

    def cost_stats_batch(
        self, ranges_list: Sequence[Mapping[str, tuple[int, int]]]
    ) -> list["QueryCostStats"]:
        """Covered-vs-straddler work statistics for every query of a workload.

        The covering sets come from :meth:`covering_positions_batch`; a
        covering cluster counts as *covered* when its zone box lies fully
        inside the query box on every queried dimension (an unqueried
        dimension constrains nothing), as a *straddler* otherwise.  Row
        volumes are occupancy sums, so the whole pass stays row-free — this
        is the cost-model input of the serving layer's time-budgeted
        scheduler.
        """
        if not ranges_list:
            return []
        positions_list = self.covering_positions_batch(ranges_list)
        num_clusters = len(self.cluster_ids)
        dense = self.dense_index is not None and all(
            name in self.dense_index for ranges in ranges_list for name in ranges
        )
        if dense and num_clusters:
            num_queries = len(ranges_list)
            covered = np.ones((num_queries, num_clusters), dtype=bool)
            for name in self._union_dimensions(ranges_list):
                index = self.dense_index[name]
                constrained = np.zeros(num_queries, dtype=bool)
                lows = np.zeros(num_queries, dtype=np.int64)
                highs = np.zeros(num_queries, dtype=np.int64)
                for position, ranges in enumerate(ranges_list):
                    if name in ranges:
                        lows[position], highs[position] = ranges[name]
                        constrained[position] = True
                inside = (index.v_min[None, :] >= lows[:, None]) & (
                    index.v_max[None, :] <= highs[:, None]
                )
                # Queries that do not constrain this dimension keep every
                # cluster covered on it.
                covered &= inside | ~constrained[:, None]
            covered_rows_list = [
                covered[query_index, positions]
                for query_index, positions in enumerate(positions_list)
            ]
        else:
            covered_rows_list = []
            for positions, ranges in zip(positions_list, ranges_list):
                flags = np.zeros(len(positions), dtype=bool)
                for slot, position in enumerate(positions):
                    bounds = self.global_entries[int(position)].bounds
                    flags[slot] = all(
                        name not in bounds
                        or (bounds[name][0] >= low and bounds[name][1] <= high)
                        for name, (low, high) in ranges.items()
                    )
                covered_rows_list.append(flags)
        stats: list[QueryCostStats] = []
        for positions, covered_mask in zip(positions_list, covered_rows_list):
            rows = self.occupancy[positions]
            covered_rows = int(rows[covered_mask].sum()) if len(positions) else 0
            total_rows = int(rows.sum()) if len(positions) else 0
            stats.append(
                QueryCostStats(
                    clusters_touched=int(len(positions)),
                    clusters_covered=int(covered_mask.sum()),
                    straddler_rows=total_rows - covered_rows,
                    covered_rows=covered_rows,
                )
            )
        return stats

    def proportions(
        self, cluster_ids: Sequence[int], ranges: Mapping[str, tuple[int, int]]
    ) -> np.ndarray:
        """Approximate ``R`` for each cluster id, in order (Equation 1)."""
        return self.proportions_batch([list(cluster_ids)], [ranges])[0]

    def proportions_batch(
        self,
        cluster_ids_list: Sequence[Sequence[int]],
        ranges_list: Sequence[Mapping[str, tuple[int, int]]],
    ) -> list[np.ndarray]:
        """Equation-1 proportions for every (query, covering set) pair.

        The dense path evaluates every query's per-dimension range counts over
        *all* clusters with one fancy-indexing pass per dimension, multiplies
        the factors in a canonical (sorted) dimension order so the result is
        bit-identical regardless of how queries are batched, and slices out
        each query's covering positions at the end.
        """
        if len(cluster_ids_list) != len(ranges_list):
            raise StorageError(
                "cluster_ids_list and ranges_list must have the same length"
            )
        positions_list = [
            np.array([self._position[cluster_id] for cluster_id in ids], dtype=np.int64)
            for ids in cluster_ids_list
        ]
        return self.proportions_at_positions_batch(positions_list, ranges_list)

    def proportions_at_positions_batch(
        self,
        positions_list: Sequence[np.ndarray],
        ranges_list: Sequence[Mapping[str, tuple[int, int]]],
    ) -> list[np.ndarray]:
        """Equation-1 proportions addressed by storage-order positions."""
        if len(positions_list) != len(ranges_list):
            raise StorageError(
                "positions_list and ranges_list must have the same length"
            )
        if not ranges_list:
            return []
        if self.dense_index is None or not all(
            name in self.dense_index for ranges in ranges_list for name in ranges
        ):
            return [
                self._proportions_scalar(
                    [self.cluster_ids[int(p)] for p in positions], ranges
                )
                for positions, ranges in zip(positions_list, ranges_list)
            ]
        num_queries = len(ranges_list)
        num_clusters = len(self.cluster_ids)
        result = np.ones((num_queries, num_clusters), dtype=float)
        for name in sorted(self._union_dimensions(ranges_list)):
            index = self.dense_index[name]
            lows = np.full(num_queries, index.domain_low, dtype=np.int64)
            highs = np.full(num_queries, index.domain_high, dtype=np.int64)
            constrained = np.zeros(num_queries, dtype=bool)
            for position, ranges in enumerate(ranges_list):
                if name in ranges:
                    lows[position], highs[position] = ranges[name]
                    constrained[position] = True
            factor = index.range_counts_batch(lows, highs) / self.nominal_size
            # Unconstrained queries contribute an exact factor of one on this
            # dimension, matching the scalar executor skipping it.
            factor[~constrained, :] = 1.0
            result *= factor
        return [
            result[query_index, positions]
            if len(positions)
            else np.zeros(0, dtype=float)
            for query_index, positions in enumerate(positions_list)
        ]

    def _proportions_scalar(
        self, ids: list[int], ranges: Mapping[str, tuple[int, int]]
    ) -> np.ndarray:
        if not ids:
            return np.zeros(0, dtype=float)
        return np.array(
            [self.clusters[cluster_id].proportion_for_ranges(ranges) for cluster_id in ids],
            dtype=float,
        )

    @staticmethod
    def _union_dimensions(
        ranges_list: Sequence[Mapping[str, tuple[int, int]]]
    ) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for ranges in ranges_list:
            for name in ranges:
                seen.setdefault(name, None)
        return tuple(seen)

    def cluster(self, cluster_id: int) -> ClusterMetadata:
        """Return the metadata of ``cluster_id``."""
        try:
            return self.clusters[cluster_id]
        except KeyError:
            raise StorageError(f"no metadata for cluster {cluster_id}") from None

    @property
    def num_clusters(self) -> int:
        """Number of clusters described by this store."""
        return len(self.clusters)

    def size_bytes(self) -> int:
        """Approximate serialised size of the whole store."""
        return sum(meta.size_bytes() for meta in self.clusters.values())

    def size_bytes_per_cluster(self) -> float:
        """Average metadata footprint per cluster."""
        if not self.clusters:
            return 0.0
        return self.size_bytes() / len(self.clusters)


def _dimension_metadata(cluster: Cluster, dimension: str) -> DimensionMetadata:
    column = cluster.rows.column(dimension)
    if column.size == 0:
        return DimensionMetadata(
            values=np.empty(0, dtype=np.int64),
            rows_geq=np.empty(0, dtype=np.int64),
            nominal_size=cluster.nominal_size,
        )
    values, counts = np.unique(column, return_counts=True)
    # rows >= values[i] is the suffix sum of counts starting at i.
    rows_geq = np.cumsum(counts[::-1])[::-1]
    return DimensionMetadata(values=values, rows_geq=rows_geq, nominal_size=cluster.nominal_size)


def _dense_cluster_row(column: np.ndarray, dimension) -> tuple[np.ndarray, int, int]:
    """One cluster's dense-index row: ``(rows_geq, v_min, v_max)``.

    Empty clusters carry the inverted sentinel bounds
    ``(high + 1, low - 1)`` so no query interval can overlap them.
    """
    domain = dimension.domain_size
    rows_geq = np.zeros(domain + 1, dtype=np.int32)
    if column.size == 0:
        return rows_geq, dimension.high + 1, dimension.low - 1
    counts = np.bincount(column - dimension.low, minlength=domain)
    # rows >= v is the reversed cumulative sum of per-value counts.
    rows_geq[:domain] = np.cumsum(counts[::-1])[::-1]
    return rows_geq, int(column.min()), int(column.max())


def _dense_index(
    clustered: ClusteredTable, names: Sequence[str]
) -> dict[str, DenseDimensionIndex]:
    """Build the vectorised per-dimension suffix-count matrices."""
    index: dict[str, DenseDimensionIndex] = {}
    num_clusters = clustered.num_clusters
    for name in names:
        dimension = clustered.schema.dimension(name)
        domain = dimension.domain_size
        rows_geq = np.zeros((num_clusters, domain + 1), dtype=np.int32)
        v_min = np.empty(num_clusters, dtype=np.int64)
        v_max = np.empty(num_clusters, dtype=np.int64)
        for position, cluster in enumerate(clustered):
            row, low, high = _dense_cluster_row(cluster.rows.column(name), dimension)
            rows_geq[position] = row
            v_min[position] = low
            v_max[position] = high
        index[name] = DenseDimensionIndex(
            domain_low=dimension.low,
            domain_high=dimension.high,
            rows_geq=rows_geq,
            v_min=v_min,
            v_max=v_max,
        )
    return index


def build_metadata(
    clustered: ClusteredTable,
    dimensions: Sequence[str] | None = None,
    *,
    dense: bool = True,
) -> MetadataStore:
    """Run Algorithm 1: build per-cluster and global metadata.

    Parameters
    ----------
    clustered:
        The provider's clustered table.
    dimensions:
        Dimensions to index; defaults to every schema dimension (the measure
        column is never indexed).
    dense:
        Also build the vectorised acceleration index (recommended; the sparse
        per-cluster entries are kept either way for size accounting).
    """
    names = list(dimensions) if dimensions is not None else list(clustered.schema.dimension_names)
    for name in names:
        clustered.schema.dimension(name)
    per_cluster: dict[int, ClusterMetadata] = {}
    global_entries: list[GlobalClusterEntry] = []
    for cluster in clustered:
        dims = {name: _dimension_metadata(cluster, name) for name in names}
        metadata = ClusterMetadata(
            cluster_id=cluster.cluster_id,
            nominal_size=cluster.nominal_size,
            num_rows=cluster.num_rows,
            dimensions=dims,
        )
        per_cluster[cluster.cluster_id] = metadata
        global_entries.append(metadata.global_entry())
    return MetadataStore(
        clusters=per_cluster,
        global_entries=tuple(global_entries),
        nominal_size=clustered.cluster_size,
        dense_index=_dense_index(clustered, names) if dense else None,
        cluster_ids=tuple(cluster.cluster_id for cluster in clustered),
    )


def patch_metadata(
    store: MetadataStore, clustered: ClusteredTable, first_affected: int
) -> MetadataStore:
    """Incrementally update a store after a compaction rebuilt a cluster suffix.

    Cluster positions ``[0, first_affected)`` of ``clustered`` are guaranteed
    by the compactor to hold exactly the rows they held when ``store`` was
    built, so their per-cluster metadata and their dense-index rows are
    reused verbatim; only positions ``>= first_affected`` run Algorithm 1
    again.  The result is indistinguishable from :func:`build_metadata` on
    the whole table — per-cluster computation is deterministic, so reused
    and recomputed entries agree bit for bit.

    Parameters
    ----------
    store:
        The provider's current metadata (built for the pre-compaction
        clustering).
    clustered:
        The post-compaction clustered table.
    first_affected:
        First cluster position whose contents changed (every position
        before it must be untouched).
    """
    if first_affected < 0:
        raise StorageError(f"first_affected must be >= 0, got {first_affected}")
    sample = next(iter(store.clusters.values()), None)
    names = (
        list(sample.dimensions)
        if sample is not None
        else list(clustered.schema.dimension_names)
    )
    clusters = clustered.clusters
    first_affected = min(first_affected, len(clusters))
    per_cluster: dict[int, ClusterMetadata] = {}
    global_entries: list[GlobalClusterEntry] = []
    for position, cluster in enumerate(clusters):
        if position < first_affected:
            metadata = store.clusters[cluster.cluster_id]
        else:
            metadata = ClusterMetadata(
                cluster_id=cluster.cluster_id,
                nominal_size=cluster.nominal_size,
                num_rows=cluster.num_rows,
                dimensions={
                    name: _dimension_metadata(cluster, name) for name in names
                },
            )
        per_cluster[cluster.cluster_id] = metadata
        global_entries.append(metadata.global_entry())
    dense_index: dict[str, DenseDimensionIndex] | None = None
    if store.dense_index is not None:
        dense_index = {}
        num_clusters = len(clusters)
        for name in names:
            old = store.dense_index[name]
            dimension = clustered.schema.dimension(name)
            rows_geq = np.zeros((num_clusters, dimension.domain_size + 1), dtype=np.int32)
            v_min = np.empty(num_clusters, dtype=np.int64)
            v_max = np.empty(num_clusters, dtype=np.int64)
            keep = min(first_affected, old.rows_geq.shape[0], num_clusters)
            rows_geq[:keep] = old.rows_geq[:keep]
            v_min[:keep] = old.v_min[:keep]
            v_max[:keep] = old.v_max[:keep]
            for position in range(keep, num_clusters):
                row, low, high = _dense_cluster_row(
                    clusters[position].rows.column(name), dimension
                )
                rows_geq[position] = row
                v_min[position] = low
                v_max[position] = high
            dense_index[name] = DenseDimensionIndex(
                domain_low=dimension.low,
                domain_high=dimension.high,
                rows_geq=rows_geq,
                v_min=v_min,
                v_max=v_max,
            )
    return MetadataStore(
        clusters=per_cluster,
        global_entries=tuple(global_entries),
        nominal_size=clustered.cluster_size,
        dense_index=dense_index,
        cluster_ids=tuple(cluster.cluster_id for cluster in clusters),
    )
