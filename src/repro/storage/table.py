"""Columnar in-memory table over a :class:`~repro.storage.schema.Schema`.

A :class:`Table` stores one integer NumPy column per schema column (the
dimensions plus, when present, the measure).  It is the substrate under both
the raw tabular data and the count tensor of the paper's Figure 2, and under
the per-provider partitions and clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import SchemaError, StorageError
from .schema import Schema

__all__ = ["Table"]


@dataclass
class Table:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    schema:
        The table schema.
    columns:
        Mapping from column name to a one-dimensional integer array.  All
        columns must have the same length and every schema column must be
        present.
    """

    schema: Schema
    columns: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        normalised: dict[str, np.ndarray] = {}
        expected = self.schema.column_names
        missing = [name for name in expected if name not in self.columns]
        if missing:
            raise SchemaError(f"missing columns: {missing}")
        extra = [name for name in self.columns if name not in expected]
        if extra:
            raise SchemaError(f"unexpected columns: {extra}")
        length: int | None = None
        for name in expected:
            array = np.asarray(self.columns[name])
            if array.ndim != 1:
                raise StorageError(f"column {name!r} must be one-dimensional")
            if not np.issubdtype(array.dtype, np.integer):
                if np.issubdtype(array.dtype, np.floating) and np.all(
                    np.equal(np.mod(array, 1), 0)
                ):
                    array = array.astype(np.int64)
                else:
                    raise StorageError(f"column {name!r} must contain integers")
            array = np.ascontiguousarray(array, dtype=np.int64)
            if length is None:
                length = array.size
            elif array.size != length:
                raise StorageError(
                    f"column {name!r} has {array.size} rows, expected {length}"
                )
            normalised[name] = array
        self.columns = normalised

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[int]]) -> "Table":
        """Build a table from row tuples ordered as ``schema.column_names``."""
        matrix = np.asarray(list(rows), dtype=np.int64)
        names = schema.column_names
        if matrix.size == 0:
            matrix = matrix.reshape(0, len(names))
        if matrix.ndim != 2 or matrix.shape[1] != len(names):
            raise StorageError(
                f"rows must have {len(names)} values each, got shape {matrix.shape}"
            )
        return cls(schema, {name: matrix[:, i] for i, name in enumerate(names)})

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """An empty table with the given schema."""
        return cls(schema, {name: np.empty(0, dtype=np.int64) for name in schema.column_names})

    # -- basic accessors ---------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        first = self.schema.column_names[0]
        return int(self.columns[first].size)

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> np.ndarray:
        """Return the column named ``name`` (a view, do not mutate)."""
        if name not in self.columns:
            raise SchemaError(f"unknown column {name!r}")
        return self.columns[name]

    def measure_column(self) -> np.ndarray:
        """The measure column, or an all-ones vector for raw tables.

        Treating raw tables as tensors with ``Measure = 1`` lets the query
        executor use a single code path for ``COUNT(*)`` and ``SUM(Measure)``.
        """
        if self.schema.has_measure:
            return self.columns[self.schema.measure]
        return np.ones(self.num_rows, dtype=np.int64)

    def row(self, index: int) -> dict[str, int]:
        """Return row ``index`` as a column-name -> value mapping."""
        if not 0 <= index < self.num_rows:
            raise StorageError(f"row index {index} out of range [0, {self.num_rows})")
        return {name: int(self.columns[name][index]) for name in self.schema.column_names}

    def to_matrix(self) -> np.ndarray:
        """Return the table as a dense ``(num_rows, num_columns)`` matrix."""
        return np.column_stack([self.columns[name] for name in self.schema.column_names])

    # -- slicing / combination --------------------------------------------

    def take(self, indices: np.ndarray | Sequence[int]) -> "Table":
        """Return a new table containing the rows at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Table(
            self.schema,
            {name: self.columns[name][idx] for name in self.schema.column_names},
        )

    def slice(self, start: int, stop: int) -> "Table":
        """Return rows ``start:stop`` as a new table."""
        return Table(
            self.schema,
            {name: self.columns[name][start:stop] for name in self.schema.column_names},
        )

    def select(self, mask: np.ndarray) -> "Table":
        """Return rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.num_rows:
            raise StorageError(
                f"mask has {mask.size} entries, expected {self.num_rows}"
            )
        return Table(
            self.schema,
            {name: self.columns[name][mask] for name in self.schema.column_names},
        )

    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Concatenate tables sharing the same schema."""
        if not tables:
            raise StorageError("cannot concatenate an empty sequence of tables")
        schema = tables[0].schema
        for table in tables[1:]:
            if table.schema.column_names != schema.column_names:
                raise SchemaError("all tables must share the same schema to concatenate")
        return Table(
            schema,
            {
                name: np.concatenate([table.columns[name] for table in tables])
                for name in schema.column_names
            },
        )

    # -- statistics --------------------------------------------------------

    def total_measure(self) -> int:
        """Sum of the measure column (== number of represented individuals)."""
        return int(self.measure_column().sum())

    def column_min_max(self, name: str) -> tuple[int, int]:
        """Minimum and maximum value present in column ``name``."""
        column = self.column(name)
        if column.size == 0:
            raise StorageError(f"column {name!r} is empty; min/max undefined")
        return int(column.min()), int(column.max())

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the stored columns."""
        return int(sum(array.nbytes for array in self.columns.values()))
