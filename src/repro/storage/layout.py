"""Contiguous columnar layout of a clustered table for vectorised execution.

A :class:`ClusterLayout` concatenates every cluster's columns into one
contiguous array per column and remembers the per-cluster segment offsets.
That is the substrate the batch query engine runs on: evaluating ``Q(C)``
for many ``(query, cluster)`` pairs becomes boolean-mask passes over the
contiguous columns followed by segmented reductions (``np.add.reduceat``)
instead of a Python loop over clusters.

On top of the raw segments the layout precomputes three acceleration
structures (all O(rows) to build, built once per layout):

* **zone maps** — per-cluster per-dimension ``[min, max]``, so a batch
  kernel can drop clusters a query cannot touch and short-circuit clusters a
  query fully covers to the precomputed segment sum without reading a row;
* **measure prefix sums** — ``measure_prefix[i]`` is the sum of the measure
  over rows ``[0, i)``, which turns any intra-segment row range into one
  subtraction;
* **sorted-dimension detection** — dimensions whose values are
  non-decreasing inside every segment can answer straddling predicates with
  two binary searches plus a prefix difference (``O(log rows)``).

How much of this machinery a kernel call uses is governed by
:class:`~repro.config.ExecutionConfig`; every mode returns bit-identical
int64 values because integer sums are exact under any evaluation order.

The layout is a query-time acceleration structure only — clusters remain the
unit of storage, sampling, and metadata, exactly as in the paper.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from ..config import DEFAULT_EXECUTION, ExecutionConfig
from ..errors import StorageError
from .kernels import KernelBackend, numba_kernels, resolve_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..query.batch import QueryBatch

__all__ = [
    "ClusterLayout",
    "KernelTelemetry",
    "collect_kernel_telemetry",
    "telemetry_active",
    "merge_active_telemetry",
    "OPEN_LOW",
    "OPEN_HIGH",
]

# Sentinel bounds for dimensions a query leaves unconstrained: comparisons
# against any stored int64 value are always true, so unconstrained dimensions
# contribute an all-true factor to the row mask (and intersect every
# cluster's bounds in the metadata overlap masks), matching the single-query
# executor's semantics of simply skipping them.  Shared by every batch
# kernel — keep a single definition.
OPEN_LOW = np.iinfo(np.int64).min // 4
OPEN_HIGH = np.iinfo(np.int64).max // 4


@dataclass
class KernelTelemetry:
    """Work/memory counters of the layout kernels (opt-in, for tests/benches).

    Enabled through :func:`collect_kernel_telemetry`; the kernels skip the
    bookkeeping entirely when disabled.  Counters are process-global and not
    thread-safe — collect from a single thread.

    Attributes
    ----------
    pairs_total / pairs_pruned / pairs_covered / pairs_bisected / pairs_scanned:
        Classification of every (query, cluster) pair a pruned kernel call
        considered: dropped by the zone maps, short-circuited to the segment
        sum, answered by sorted bisection, or row-evaluated.
    rows_evaluated:
        Rows actually read by the row-evaluation kernels (the dense engine
        reads ``num_queries * num_rows``).
    tiles:
        Number of evaluation tiles the row kernels split their work into.
    max_tile_bytes:
        Largest estimated per-tile temporary footprint — bounded by
        ``ExecutionConfig.max_kernel_bytes`` (up to one un-splittable
        cluster row-range) when tiling is on.
    backend:
        Name of the backend that served the last row/bisect kernel call
        (``"numpy"`` or ``"numba"``).
    jit_calls / fallback_calls:
        Compiled-tier accounting: kernel invocations served by the njit
        kernels, and invocations that explicitly requested ``"numba"`` but
        degraded to the numpy path.
    fallback_reason:
        Why the degradation happened (empty while no fallback occurred).
    pairs_fused:
        (query, cluster) pairs evaluated by the fused njit kernels.
    """

    pairs_total: int = 0
    pairs_pruned: int = 0
    pairs_covered: int = 0
    pairs_bisected: int = 0
    pairs_scanned: int = 0
    rows_evaluated: int = 0
    tiles: int = 0
    max_tile_bytes: int = 0
    backend: str = ""
    jit_calls: int = 0
    fallback_calls: int = 0
    fallback_reason: str = ""
    pairs_fused: int = 0

    def reset(self) -> None:
        """Restore every counter to its dataclass default."""
        for name, spec in self.__dataclass_fields__.items():
            setattr(self, name, spec.default)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form (for metric snapshots and benchmark records)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def merge_counts(self, counts: "Mapping[str, object]") -> None:
        """Fold another collector's ``as_dict()`` into this one.

        Numeric counters add; the string fields (``backend``,
        ``fallback_reason``) adopt the incoming value when set — the use
        case is folding process-pool workers' telemetry into the parent's
        collector, where the last worker to report wins the label exactly
        as the last in-process kernel call would.
        """
        for name, value in counts.items():
            if name not in self.__dataclass_fields__:
                continue
            if isinstance(value, str):
                if value:
                    setattr(self, name, value)
            else:
                setattr(self, name, getattr(self, name) + value)

    def _note_backend(self, backend: "KernelBackend") -> None:
        """Record which backend served a kernel call (and why, on fallback)."""
        self.backend = backend.name
        if backend.compiled:
            self.jit_calls += 1
        elif backend.fallback_reason:
            self.fallback_calls += 1
            self.fallback_reason = backend.fallback_reason


_telemetry: KernelTelemetry | None = None


@contextmanager
def collect_kernel_telemetry() -> Iterator[KernelTelemetry]:
    """Context manager enabling kernel telemetry for the enclosed calls."""
    global _telemetry
    previous = _telemetry
    _telemetry = KernelTelemetry()
    try:
        yield _telemetry
    finally:
        _telemetry = previous


def telemetry_active() -> bool:
    """Whether a :func:`collect_kernel_telemetry` collector is live.

    The process pool checks this before a phase call so workers only pay
    for telemetry collection when the parent is actually collecting.
    """
    return _telemetry is not None


def merge_active_telemetry(counts: "Mapping[str, object]") -> None:
    """Fold remote counters into the live collector (no-op when inactive).

    This is how process-pool workers' kernel work — invisible to the
    parent's context-var collector — lands in the same
    :class:`KernelTelemetry` an in-process run would have filled.
    """
    if _telemetry is not None:
        _telemetry.merge_counts(counts)


def _bounds_as(column: np.ndarray, lows: np.ndarray, highs: np.ndarray):
    """Cast query bounds to the column dtype without changing semantics.

    Narrowed columns store values strictly inside the narrow dtype's range,
    so clipping a bound into that range preserves every comparison outcome
    (out-of-range bounds keep selecting everything or nothing).  Matching
    dtypes avoids numpy upcasting the whole column to int64 per comparison.
    """
    if column.dtype == lows.dtype:
        return lows, highs
    info = np.iinfo(column.dtype)
    return (
        np.clip(lows, info.min, info.max).astype(column.dtype),
        np.clip(highs, info.min, info.max).astype(column.dtype),
    )


def _pair_tile_boundaries(lengths: np.ndarray, max_rows: int | None) -> np.ndarray:
    """Split a flat pair list into tiles of at most ``max_rows`` total rows.

    Returns tile boundary indices into the pair list (``[0, ..., n]``).
    Every tile holds at least one pair, so a single pair longer than the
    budget still forms its own tile — pairs are never split.
    """
    count = int(lengths.size)
    if max_rows is None or count <= 1 or int(lengths.sum()) <= max_rows:
        # Fast path: everything fits in one tile — skip the per-pair loop
        # (the common case under the default 64 MiB budget).
        return np.array([0, count], dtype=np.int64)
    boundaries = [0]
    running = 0
    for index in range(count):
        rows = int(lengths[index])
        if running and running + rows > max_rows:
            boundaries.append(index)
            running = 0
        running += rows
    boundaries.append(count)
    return np.array(boundaries, dtype=np.int64)


@dataclass(frozen=True)
class ClusterLayout:
    """Columns of every cluster concatenated contiguously, with offsets.

    Attributes
    ----------
    columns:
        One contiguous integer array per dimension (cluster-major order;
        int32 when the stored values fit, int64 otherwise).
    measure:
        Contiguous measure column (all ones for raw tables).
    starts:
        ``starts[i]`` is the first row of cluster position ``i``; segments are
        contiguous, so cluster ``i`` occupies ``starts[i]:starts[i] +
        cluster_rows[i]``.
    cluster_rows:
        Stored row count per cluster position.
    cluster_ids:
        Cluster identifier per position (position order == storage order).
    zone_min / zone_max:
        Per-dimension per-cluster value bounds (empty clusters carry
        inverted sentinel bounds, classifying them as zero-valued covered
        segments).  Derived, computed at construction.
    segment_sums:
        Measure total per cluster (``Q(C)`` of a fully covering query).
    measure_prefix:
        ``measure_prefix[i]`` = sum of ``measure[:i]`` (length ``rows + 1``).
    sorted_dimensions:
        Dimensions whose values are non-decreasing inside every segment —
        eligible for bisection kernels.
    """

    columns: Mapping[str, np.ndarray]
    measure: np.ndarray
    starts: np.ndarray
    cluster_rows: np.ndarray
    cluster_ids: tuple[int, ...]
    zone_min: Mapping[str, np.ndarray] = field(init=False, repr=False, compare=False)
    zone_max: Mapping[str, np.ndarray] = field(init=False, repr=False, compare=False)
    segment_sums: np.ndarray = field(init=False, repr=False, compare=False)
    measure_prefix: np.ndarray = field(init=False, repr=False, compare=False)
    sorted_dimensions: frozenset[str] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        num_rows = int(self.measure.size)
        num_clusters = int(self.cluster_rows.size)
        nonempty = self.cluster_rows > 0
        starts_nonempty = self.starts[nonempty]
        # Segment sums: reduceat over the starts of the *non-empty* segments
        # only.  Empty segments contribute no rows, so consecutive non-empty
        # starts are exact segment boundaries and zero-length segments (which
        # np.add.reduceat mis-handles) never reach the ufunc.
        segment_sums = np.zeros(num_clusters, dtype=np.int64)
        if num_rows and starts_nonempty.size:
            segment_sums[nonempty] = np.add.reduceat(self.measure, starts_nonempty)
        measure_prefix = np.zeros(num_rows + 1, dtype=np.int64)
        if num_rows:
            np.cumsum(self.measure, out=measure_prefix[1:])
        zone_min: dict[str, np.ndarray] = {}
        zone_max: dict[str, np.ndarray] = {}
        sorted_dimensions: set[str] = set()
        # Row positions where a new segment begins (for sortedness checks the
        # comparison crossing a segment boundary is exempt).
        boundary = np.zeros(max(num_rows - 1, 0), dtype=bool)
        if num_rows > 1:
            interior = self.starts[1:]
            interior = interior[(interior > 0) & (interior < num_rows)]
            boundary[interior - 1] = True
        for name, column in self.columns.items():
            # Inverted sentinels make empty clusters "fully covered" by any
            # query box, so the kernels charge them their (zero) segment sum
            # without ever reaching the row path.
            low = np.full(num_clusters, OPEN_HIGH, dtype=np.int64)
            high = np.full(num_clusters, OPEN_LOW, dtype=np.int64)
            if num_rows and starts_nonempty.size:
                low[nonempty] = np.minimum.reduceat(column, starts_nonempty)
                high[nonempty] = np.maximum.reduceat(column, starts_nonempty)
            zone_min[name] = low
            zone_max[name] = high
            if num_rows <= 1 or bool(
                np.all((column[1:] >= column[:-1]) | boundary)
            ):
                sorted_dimensions.add(name)
        object.__setattr__(self, "zone_min", zone_min)
        object.__setattr__(self, "zone_max", zone_max)
        object.__setattr__(self, "segment_sums", segment_sums)
        object.__setattr__(self, "measure_prefix", measure_prefix)
        object.__setattr__(self, "sorted_dimensions", frozenset(sorted_dimensions))

    @classmethod
    def from_clusters(cls, clusters: Sequence) -> "ClusterLayout":
        """Build the contiguous layout from a sequence of clusters."""
        if not clusters:
            raise StorageError("a layout needs at least one cluster")
        schema = clusters[0].schema
        names = schema.dimension_names
        columns: dict[str, np.ndarray] = {}
        for name in names:
            column = np.ascontiguousarray(
                np.concatenate([cluster.rows.column(name) for cluster in clusters])
            )
            # Narrow to int32 when the dimension domain allows it: the mask
            # kernels are memory-bound, so halving the element width roughly
            # halves the gather/compare traffic.  Comparisons are exact in
            # either width; the measure stays int64 for overflow-safe sums.
            if column.size and np.iinfo(np.int32).min < column.min() and column.max() < np.iinfo(np.int32).max:
                column = column.astype(np.int32)
            columns[name] = column
        measure = np.ascontiguousarray(
            np.concatenate([cluster.rows.measure_column() for cluster in clusters])
        )
        cluster_rows = np.array([cluster.num_rows for cluster in clusters], dtype=np.int64)
        starts = np.zeros(len(clusters), dtype=np.int64)
        np.cumsum(cluster_rows[:-1], out=starts[1:])
        return cls(
            columns=columns,
            measure=measure,
            starts=starts,
            cluster_rows=cluster_rows,
            cluster_ids=tuple(cluster.cluster_id for cluster in clusters),
        )

    @classmethod
    def patched(
        cls,
        old: "ClusterLayout",
        keep_clusters: int,
        suffix_clusters: Sequence,
    ) -> "ClusterLayout":
        """Layout for ``old``'s first ``keep_clusters`` segments + a new suffix.

        The incremental-compaction constructor: the kept prefix is copied as
        one contiguous slice per column (no per-cluster re-concatenation) and
        only the suffix clusters' rows are gathered fresh.  Column dtypes are
        re-narrowed with exactly the :meth:`from_clusters` rule over the
        combined values, so the result is indistinguishable from a full
        rebuild of the same cluster sequence — the acceleration structures
        (zone maps, segment sums, prefix sums, sortedness) are recomputed in
        the usual single vectorised pass.
        """
        if not 0 <= keep_clusters <= old.num_clusters:
            raise StorageError(
                f"keep_clusters must be in [0, {old.num_clusters}], got {keep_clusters}"
            )
        if keep_clusters == 0 and not suffix_clusters:
            raise StorageError("a layout needs at least one cluster")
        prefix_rows = (
            old.num_rows
            if keep_clusters == old.num_clusters
            else int(old.starts[keep_clusters])
        )
        columns: dict[str, np.ndarray] = {}
        for name, column in old.columns.items():
            parts = [np.asarray(column[:prefix_rows], dtype=np.int64)]
            parts.extend(cluster.rows.column(name) for cluster in suffix_clusters)
            combined = np.ascontiguousarray(np.concatenate(parts))
            if (
                combined.size
                and np.iinfo(np.int32).min < combined.min()
                and combined.max() < np.iinfo(np.int32).max
            ):
                combined = combined.astype(np.int32)
            columns[name] = combined
        measure_parts = [old.measure[:prefix_rows]]
        measure_parts.extend(
            cluster.rows.measure_column() for cluster in suffix_clusters
        )
        measure = np.ascontiguousarray(np.concatenate(measure_parts))
        cluster_rows = np.concatenate(
            [
                old.cluster_rows[:keep_clusters],
                np.array([cluster.num_rows for cluster in suffix_clusters], dtype=np.int64),
            ]
        )
        starts = np.zeros(cluster_rows.size, dtype=np.int64)
        if cluster_rows.size:
            np.cumsum(cluster_rows[:-1], out=starts[1:])
        return cls(
            columns=columns,
            measure=measure,
            starts=starts,
            cluster_rows=cluster_rows,
            cluster_ids=tuple(old.cluster_ids[:keep_clusters])
            + tuple(cluster.cluster_id for cluster in suffix_clusters),
        )

    @property
    def num_clusters(self) -> int:
        """Number of cluster segments in the layout."""
        return int(self.cluster_rows.size)

    @property
    def num_rows(self) -> int:
        """Total number of rows across segments."""
        return int(self.measure.size)

    def position_of(self) -> dict[int, int]:
        """Mapping from cluster id to its position in the layout."""
        return {cluster_id: i for i, cluster_id in enumerate(self.cluster_ids)}

    def gather(self, positions: np.ndarray | Sequence[int]) -> "ClusterLayout":
        """Sub-layout holding only the clusters at ``positions`` (in order).

        Utility for extracting a materialised sub-layout (e.g. for ad-hoc
        analysis of a cluster subset).  The engine hot path does not copy
        sub-layouts — it uses :meth:`query_cluster_values`, which restricts
        each query to its own cluster positions without materialising.

        Rows are copied segment by segment with contiguous slice assignments
        (no per-row index array is materialised).
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            raise StorageError("gather needs at least one cluster position")
        cluster_rows = self.cluster_rows[positions]
        starts = np.zeros(positions.size, dtype=np.int64)
        np.cumsum(cluster_rows[:-1], out=starts[1:])
        total = int(cluster_rows.sum())

        def _gather_column(source: np.ndarray) -> np.ndarray:
            out = np.empty(total, dtype=source.dtype)
            for target_start, position, rows in zip(
                starts.tolist(), positions.tolist(), cluster_rows.tolist()
            ):
                source_start = int(self.starts[position])
                out[target_start : target_start + rows] = source[
                    source_start : source_start + rows
                ]
            return out

        return ClusterLayout(
            columns={name: _gather_column(column) for name, column in self.columns.items()},
            measure=_gather_column(self.measure),
            starts=starts,
            cluster_rows=cluster_rows,
            cluster_ids=tuple(self.cluster_ids[int(p)] for p in positions),
        )

    # -- vectorised evaluation ---------------------------------------------

    def row_masks(
        self, batch: "QueryBatch", *, execution: ExecutionConfig | None = None
    ) -> np.ndarray:
        """Boolean ``(num_queries, num_rows)`` selection masks for a batch.

        One broadcast comparison per queried dimension per bound; dimensions a
        query does not constrain use open sentinel bounds and stay all-true.
        The result matrix is always fully materialised (it is the API), but
        the comparison temporaries are evaluated in query tiles sized to
        ``execution.max_kernel_bytes``.
        """
        execution = execution or DEFAULT_EXECUTION
        num_queries = len(batch)
        masks = np.ones((num_queries, self.num_rows), dtype=bool)
        if self.num_rows == 0:
            return masks
        bounds = self._checked_bounds(batch)
        query_tile = self._query_tile(num_queries, self.num_rows, execution, bounds)
        for start in range(0, num_queries, query_tile):
            stop = min(start + query_tile, num_queries)
            self._fill_masks(masks[start:stop], bounds, slice(start, stop))
        return masks

    def _checked_bounds(self, batch: "QueryBatch"):
        bounds = batch.bounds(OPEN_LOW, OPEN_HIGH)
        for name in bounds:
            if name not in self.columns:
                raise StorageError(f"layout has no column {name!r}")
        return bounds

    def _fill_masks(
        self,
        out: np.ndarray,
        bounds: Mapping[str, tuple[np.ndarray, np.ndarray]],
        query_slice: slice,
        row_slice: slice | None = None,
    ) -> None:
        """AND every dimension's range test into ``out`` (pre-set to True)."""
        for name, (lows, highs) in bounds.items():
            column = self.columns[name]
            if row_slice is not None:
                column = column[row_slice]
            lows, highs = _bounds_as(column, lows[query_slice], highs[query_slice])
            np.logical_and(out, column[None, :] >= lows[:, None], out=out)
            np.logical_and(out, column[None, :] <= highs[:, None], out=out)

    @staticmethod
    def _bytes_per_cell(bounds) -> int:
        """Rough per-(query, row) temporary footprint of the dense kernel.

        One byte for the running mask, one for the comparison temporary, and
        eight for the int64 contributions row.
        """
        return 10

    def _query_tile(
        self,
        num_queries: int,
        num_rows: int,
        execution: ExecutionConfig,
        bounds,
    ) -> int:
        budget = execution.max_kernel_bytes
        if budget is None or num_rows == 0:
            return num_queries
        cells = max(1, budget // self._bytes_per_cell(bounds))
        return int(min(num_queries, max(1, cells // num_rows)))

    def cluster_values(
        self, batch: "QueryBatch", *, execution: ExecutionConfig | None = None
    ) -> np.ndarray:
        """Exact ``Q(C)`` for every (query, cluster) pair — ``(nq, nc)`` int64.

        The per-cluster primitive of the paper, vectorised.  With
        ``execution.prune`` the query boxes are intersected with the zone
        maps first: non-overlapping pairs are zero, fully covered pairs are
        the precomputed segment sums, sorted straddlers bisect, and only the
        remaining straddling pairs are row-evaluated (tiled under the
        kernel memory budget).  All modes are bit-identical.
        """
        execution = execution or DEFAULT_EXECUTION
        num_queries = len(batch)
        num_clusters = self.num_clusters
        if self.num_rows == 0:
            return np.zeros((num_queries, num_clusters), dtype=np.int64)
        bounds = self._checked_bounds(batch)
        if not execution.prune:
            return self._cluster_values_dense(bounds, num_queries, execution)
        overlap, covered, covered_per_dim = self._classify_zones(bounds, num_queries)
        result = np.where(covered, self.segment_sums[None, :], np.int64(0))
        straddle = overlap & ~covered
        telemetry = _telemetry
        if telemetry is not None:
            telemetry.pairs_total += num_queries * num_clusters
            telemetry.pairs_covered += int(covered.sum())
            telemetry.pairs_pruned += int((~overlap & ~covered).sum())
        if not straddle.any():
            return result
        if execution.sorted_bisect:
            self._bisect_into(bounds, covered_per_dim, straddle, result, execution)
        pair_query, pair_positions = np.nonzero(straddle)
        if pair_query.size:
            values = self._pair_values(bounds, pair_query, pair_positions, execution)
            result[pair_query, pair_positions] = values
        return result

    def _classify_zones(self, bounds, num_queries: int):
        """Zone-map classification of every (query, cluster) pair.

        Returns ``(overlap, covered, covered_per_dim)`` boolean matrices of
        shape ``(num_queries, num_clusters)``.  ``covered_per_dim`` is kept
        per dimension so the bisection kernel can recognise pairs straddling
        on exactly one (sorted) dimension.
        """
        num_clusters = self.num_clusters
        overlap = np.ones((num_queries, num_clusters), dtype=bool)
        covered = np.ones((num_queries, num_clusters), dtype=bool)
        covered_per_dim: dict[str, np.ndarray] = {}
        for name, (lows, highs) in bounds.items():
            zone_low = self.zone_min[name]
            zone_high = self.zone_max[name]
            overlap &= (zone_high >= lows[:, None]) & (zone_low <= highs[:, None])
            covered_dim = (zone_low >= lows[:, None]) & (zone_high <= highs[:, None])
            covered &= covered_dim
            covered_per_dim[name] = covered_dim
        return overlap, covered, covered_per_dim

    def _bisect_segment_sums(
        self,
        name: str,
        lows: np.ndarray,
        highs: np.ndarray,
        pair_query: np.ndarray,
        pair_positions: np.ndarray,
        execution: ExecutionConfig,
    ) -> np.ndarray:
        """Exact per-pair sums via binary search over a sorted dimension.

        For each (query, cluster) pair, two binary searches over the
        cluster's sorted segment of ``name`` locate the matching row range
        and the measure prefix difference gives its exact sum.  The numba
        backend runs every pair's searches inside one njit call; the numpy
        path is a per-pair ``np.searchsorted`` loop.
        """
        column = self.columns[name]
        prefix = self.measure_prefix
        backend = resolve_backend(execution.kernel_backend)
        if _telemetry is not None:
            _telemetry.pairs_bisected += int(pair_query.size)
            _telemetry._note_backend(backend)
        if backend.compiled:
            values = np.empty(pair_query.size, dtype=np.int64)
            pair_lows, pair_highs = _bounds_as(
                column, lows[pair_query], highs[pair_query]
            )
            numba_kernels().bisect_pair_sums(
                column,
                prefix,
                self.starts[pair_positions],
                self.cluster_rows[pair_positions],
                np.ascontiguousarray(pair_lows),
                np.ascontiguousarray(pair_highs),
                values,
            )
            return values
        values = np.empty(pair_query.size, dtype=np.int64)
        for slot, (query, position) in enumerate(
            zip(pair_query.tolist(), pair_positions.tolist())
        ):
            start = int(self.starts[position])
            stop = start + int(self.cluster_rows[position])
            segment = column[start:stop]
            low_row = start + int(np.searchsorted(segment, lows[query], side="left"))
            high_row = start + int(np.searchsorted(segment, highs[query], side="right"))
            values[slot] = prefix[high_row] - prefix[low_row]
        return values

    def _bisect_into(
        self,
        bounds,
        covered_per_dim: Mapping[str, np.ndarray],
        straddle: np.ndarray,
        result: np.ndarray,
        execution: ExecutionConfig,
    ) -> None:
        """Answer straddling pairs sorted on their only straddling dimension.

        A pair is eligible for dimension ``d`` when the cluster is sorted on
        ``d`` and fully covered on every *other* constrained dimension — the
        row predicate then reduces to the ``d`` range, so two binary
        searches over the segment plus a measure-prefix difference give the
        exact sum.  Eligible pairs are cleared from ``straddle``.
        """
        for name in bounds:
            if name not in self.sorted_dimensions:
                continue
            eligible = straddle.copy()
            for other, covered_dim in covered_per_dim.items():
                if other != name:
                    eligible &= covered_dim
            if not eligible.any():
                continue
            lows, highs = bounds[name]
            pair_query, pair_positions = np.nonzero(eligible)
            result[pair_query, pair_positions] = self._bisect_segment_sums(
                name, lows, highs, pair_query, pair_positions, execution
            )
            straddle &= ~eligible
            if not straddle.any():
                return

    def _cluster_values_dense(
        self, bounds, num_queries: int, execution: ExecutionConfig
    ) -> np.ndarray:
        """Dense reference kernel, tiled to the kernel memory budget."""
        num_rows = self.num_rows
        num_clusters = self.num_clusters
        nonempty = self.cluster_rows > 0
        telemetry = _telemetry
        result = np.zeros((num_queries, num_clusters), dtype=np.int64)
        cells = None
        budget = execution.max_kernel_bytes
        if budget is not None:
            cells = max(1, budget // self._bytes_per_cell(bounds))
        query_tile = self._query_tile(num_queries, num_rows, execution, bounds)
        # Row chunks: runs of whole segments.  With no budget (or one large
        # enough) a single chunk covers every row; a single segment larger
        # than the budget still forms its own chunk — segments are never
        # split, so the hard peak is one segment's rows per query row.
        chunk_rows = num_rows if cells is None else max(1, cells // query_tile)
        chunk_bounds = self._segment_chunks(chunk_rows)
        for q_start in range(0, num_queries, query_tile):
            q_stop = min(q_start + query_tile, num_queries)
            query_slice = slice(q_start, q_stop)
            for c_start, c_stop in chunk_bounds:
                row_start = int(self.starts[c_start])
                row_stop = (
                    num_rows
                    if c_stop >= num_clusters
                    else int(self.starts[c_stop])
                )
                if row_stop == row_start:
                    continue
                row_slice = slice(row_start, row_stop)
                masks = np.ones((q_stop - q_start, row_stop - row_start), dtype=bool)
                self._fill_masks(masks, bounds, query_slice, row_slice)
                contributions = masks * self.measure[None, row_slice]
                chunk_nonempty = nonempty[c_start:c_stop]
                chunk_starts = self.starts[c_start:c_stop][chunk_nonempty] - row_start
                if chunk_starts.size:
                    result[query_slice, c_start:c_stop][:, chunk_nonempty] = (
                        np.add.reduceat(contributions, chunk_starts, axis=1)
                    )
                if telemetry is not None:
                    telemetry.tiles += 1
                    telemetry.rows_evaluated += masks.size
                    telemetry.max_tile_bytes = max(
                        telemetry.max_tile_bytes,
                        masks.size * self._bytes_per_cell(bounds),
                    )
        return result

    def _segment_chunks(self, chunk_rows: int) -> list[tuple[int, int]]:
        """Consecutive segment runs totalling at most ``chunk_rows`` rows each.

        Every chunk holds at least one segment; a single segment longer than
        ``chunk_rows`` forms its own chunk (segments are never split so the
        segmented reduction stays one ``reduceat`` per chunk).
        """
        boundaries = _pair_tile_boundaries(
            self.cluster_rows, None if chunk_rows >= self.num_rows else chunk_rows
        )
        return [
            (int(boundaries[index]), int(boundaries[index + 1]))
            for index in range(boundaries.size - 1)
        ]

    def query_cluster_values(
        self,
        batch: "QueryBatch",
        positions_per_query: Sequence[np.ndarray],
        *,
        execution: ExecutionConfig | None = None,
    ) -> list[np.ndarray]:
        """Exact ``Q(C)`` for each query's own cluster positions, in one pass.

        Unlike :meth:`cluster_values`, which evaluates every query against
        every cluster of the layout, this kernel touches exactly the
        (query, cluster) pairs requested.  With ``execution.prune`` each
        requested pair is first classified against the zone maps (skip /
        segment-sum / bisect), so only genuinely straddling pairs reach the
        row kernel; the row kernel expands per-query bounds to per-row
        bounds with ``np.repeat`` and serves all pairs with boolean masks
        plus one segmented reduction per tile.
        """
        execution = execution or DEFAULT_EXECUTION
        num_queries = len(batch)
        if len(positions_per_query) != num_queries:
            raise StorageError("positions_per_query must align with the batch")
        pair_counts = np.array([len(p) for p in positions_per_query], dtype=np.int64)
        total_pairs = int(pair_counts.sum())
        if total_pairs == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(num_queries)]
        bounds = self._checked_bounds(batch)
        pair_query = np.repeat(np.arange(num_queries, dtype=np.int64), pair_counts)
        pair_positions = np.concatenate(
            [np.asarray(p, dtype=np.int64) for p in positions_per_query]
        )
        telemetry = _telemetry
        if not execution.prune:
            pair_values = self._pair_values(bounds, pair_query, pair_positions, execution)
        else:
            overlap = np.ones(total_pairs, dtype=bool)
            covered = np.ones(total_pairs, dtype=bool)
            covered_per_dim: dict[str, np.ndarray] = {}
            for name, (lows, highs) in bounds.items():
                zone_low = self.zone_min[name][pair_positions]
                zone_high = self.zone_max[name][pair_positions]
                query_lows = lows[pair_query]
                query_highs = highs[pair_query]
                overlap &= (zone_high >= query_lows) & (zone_low <= query_highs)
                covered_dim = (zone_low >= query_lows) & (zone_high <= query_highs)
                covered &= covered_dim
                covered_per_dim[name] = covered_dim
            pair_values = np.zeros(total_pairs, dtype=np.int64)
            pair_values[covered] = self.segment_sums[pair_positions[covered]]
            straddle = overlap & ~covered
            if telemetry is not None:
                telemetry.pairs_total += total_pairs
                telemetry.pairs_covered += int(covered.sum())
                telemetry.pairs_pruned += int((~overlap & ~covered).sum())
            if execution.sorted_bisect and straddle.any():
                self._bisect_pairs(
                    bounds,
                    covered_per_dim,
                    straddle,
                    pair_query,
                    pair_positions,
                    pair_values,
                    execution,
                )
            remaining = np.flatnonzero(straddle)
            if remaining.size:
                pair_values[remaining] = self._pair_values(
                    bounds, pair_query[remaining], pair_positions[remaining], execution
                )
        boundaries = np.zeros(num_queries + 1, dtype=np.int64)
        np.cumsum(pair_counts, out=boundaries[1:])
        return [
            pair_values[boundaries[index] : boundaries[index + 1]]
            for index in range(num_queries)
        ]

    def _bisect_pairs(
        self,
        bounds,
        covered_per_dim: Mapping[str, np.ndarray],
        straddle: np.ndarray,
        pair_query: np.ndarray,
        pair_positions: np.ndarray,
        pair_values: np.ndarray,
        execution: ExecutionConfig,
    ) -> None:
        """Flat-pair form of :meth:`_bisect_into` (same eligibility rule)."""
        for name in bounds:
            if name not in self.sorted_dimensions:
                continue
            eligible = straddle.copy()
            for other, covered_dim in covered_per_dim.items():
                if other != name:
                    eligible &= covered_dim
            if not eligible.any():
                continue
            lows, highs = bounds[name]
            indices = np.flatnonzero(eligible)
            pair_values[indices] = self._bisect_segment_sums(
                name, lows, highs, pair_query[indices], pair_positions[indices], execution
            )
            straddle &= ~eligible
            if not straddle.any():
                return

    def _pair_values(
        self,
        bounds,
        pair_query: np.ndarray,
        pair_positions: np.ndarray,
        execution: ExecutionConfig,
    ) -> np.ndarray:
        """Row-evaluate arbitrary (query, cluster) pairs, tiled to the budget.

        The flattened kernel, in the backend selected by
        ``execution.kernel_backend``:

        * **numpy** — per-query bounds are expanded to per-row bounds with
          ``np.repeat``, one boolean-mask pass plus one ``np.add.reduceat``
          serves every pair of a tile;
        * **numba** — the fused njit kernels walk each pair's segment in
          place (:func:`~repro.storage._kernels_numba.and_range_mask` per
          constrained dimension, then one
          :func:`~repro.storage._kernels_numba.masked_segment_sums` pass);
          the only temporary is a single byte-mask buffer reused across
          tiles, so the per-row footprint drops from ~17+ bytes to 1.

        Either way total work equals the sum of the requested cluster sizes
        — the same rows a per-query loop would scan — and the results are
        bit-identical (integer sums are exact under any order).
        """
        lengths = self.cluster_rows[pair_positions]
        num_pairs = int(lengths.size)
        values = np.zeros(num_pairs, dtype=np.int64)
        backend = resolve_backend(execution.kernel_backend)
        bytes_per_row = self._bytes_per_pair_row(bounds, compiled=backend.compiled)
        max_rows = None
        if execution.max_kernel_bytes is not None:
            max_rows = max(1, execution.max_kernel_bytes // bytes_per_row)
        telemetry = _telemetry
        if telemetry is not None:
            telemetry._note_backend(backend)
        tile_bounds = _pair_tile_boundaries(lengths, max_rows)
        mask_buffer: np.ndarray | None = None
        if backend.compiled:
            # One reusable byte mask sized to the largest tile — the numba
            # kernels allocate nothing per call.
            prefix = np.zeros(num_pairs + 1, dtype=np.int64)
            np.cumsum(lengths, out=prefix[1:])
            largest = int((prefix[tile_bounds[1:]] - prefix[tile_bounds[:-1]]).max())
            mask_buffer = np.empty(max(largest, 1), dtype=np.uint8)
        for tile_index in range(tile_bounds.size - 1):
            tile = slice(int(tile_bounds[tile_index]), int(tile_bounds[tile_index + 1]))
            tile_lengths = lengths[tile]
            total = int(tile_lengths.sum())
            if total == 0:
                continue
            tile_positions = pair_positions[tile]
            tile_queries = pair_query[tile]
            if backend.compiled:
                values[tile] = self._pair_values_compiled(
                    bounds, tile_queries, tile_positions, tile_lengths, total, mask_buffer
                )
                tile_nonempty = tile_lengths > 0
            else:
                offsets = np.zeros(tile_lengths.size, dtype=np.int64)
                np.cumsum(tile_lengths[:-1], out=offsets[1:])
                rows = (
                    np.repeat(self.starts[tile_positions] - offsets, tile_lengths)
                    + np.arange(total, dtype=np.int64)
                )
                mask = np.ones(total, dtype=bool)
                for name, (lows, highs) in bounds.items():
                    column = self.columns[name][rows]
                    dim_lows, dim_highs = _bounds_as(column, lows, highs)
                    row_lows = np.repeat(dim_lows[tile_queries], tile_lengths)
                    row_highs = np.repeat(dim_highs[tile_queries], tile_lengths)
                    np.logical_and(mask, column >= row_lows, out=mask)
                    np.logical_and(mask, column <= row_highs, out=mask)
                contributions = self.measure[rows] * mask
                # reduceat over non-empty pair offsets only: zero-length pairs
                # keep their zero and never reach the ufunc (which would
                # otherwise return the element at the segment start).
                tile_nonempty = tile_lengths > 0
                red_offsets = offsets[tile_nonempty]
                tile_values = np.zeros(tile_lengths.size, dtype=np.int64)
                if red_offsets.size:
                    tile_values[tile_nonempty] = np.add.reduceat(contributions, red_offsets)
                values[tile] = tile_values
            if telemetry is not None:
                telemetry.tiles += 1
                telemetry.rows_evaluated += total
                telemetry.pairs_scanned += int(tile_nonempty.sum())
                if backend.compiled:
                    telemetry.pairs_fused += int(tile_nonempty.sum())
                telemetry.max_tile_bytes = max(
                    telemetry.max_tile_bytes, total * bytes_per_row
                )
        return values

    def _pair_values_compiled(
        self,
        bounds,
        tile_queries: np.ndarray,
        tile_positions: np.ndarray,
        tile_lengths: np.ndarray,
        total: int,
        mask_buffer: np.ndarray,
    ) -> np.ndarray:
        """One fused-kernel evaluation of a tile of (query, cluster) pairs."""
        kernels = numba_kernels()
        seg_starts = np.ascontiguousarray(self.starts[tile_positions])
        seg_lengths = np.ascontiguousarray(tile_lengths)
        mask = mask_buffer[:total]
        mask[:] = 1
        for name, (lows, highs) in bounds.items():
            column = self.columns[name]
            dim_lows, dim_highs = _bounds_as(column, lows, highs)
            kernels.and_range_mask(
                column,
                seg_starts,
                seg_lengths,
                np.ascontiguousarray(dim_lows[tile_queries]),
                np.ascontiguousarray(dim_highs[tile_queries]),
                mask,
            )
        tile_values = np.zeros(tile_lengths.size, dtype=np.int64)
        kernels.masked_segment_sums(self.measure, seg_starts, seg_lengths, mask, tile_values)
        return tile_values

    def _bytes_per_pair_row(self, bounds, *, compiled: bool = False) -> int:
        """Per-row temporary footprint estimate of the flattened pair kernel.

        numpy path: row index (8) + mask (1) + int64 contributions (8) + per
        constrained dimension a gathered column copy, two repeated bound
        rows, and a comparison temporary.  The fused njit path touches only
        the shared byte mask — 1 byte per row regardless of dimensions.
        """
        if compiled:
            return 1
        per_dim = 0
        for name in bounds:
            itemsize = int(self.columns[name].itemsize)
            per_dim += 3 * itemsize + 1
        return 17 + per_dim

    def memory_bytes(self) -> int:
        """Approximate footprint of the contiguous arrays."""
        total = self.measure.nbytes + self.starts.nbytes + self.cluster_rows.nbytes
        total += self.segment_sums.nbytes + self.measure_prefix.nbytes
        total += sum(array.nbytes for array in self.zone_min.values())
        total += sum(array.nbytes for array in self.zone_max.values())
        return int(total + sum(column.nbytes for column in self.columns.values()))
