"""Contiguous columnar layout of a clustered table for vectorised execution.

A :class:`ClusterLayout` concatenates every cluster's columns into one
contiguous array per column and remembers the per-cluster segment offsets.
That is the substrate the batch query engine runs on: evaluating ``Q(C)``
for many ``(query, cluster)`` pairs becomes one boolean-mask pass over the
contiguous columns followed by a segmented reduction (``np.add.reduceat``)
instead of a Python loop over clusters.

The layout is a query-time acceleration structure only — clusters remain the
unit of storage, sampling, and metadata, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..query.batch import QueryBatch

__all__ = ["ClusterLayout", "OPEN_LOW", "OPEN_HIGH"]

# Sentinel bounds for dimensions a query leaves unconstrained: comparisons
# against any stored int64 value are always true, so unconstrained dimensions
# contribute an all-true factor to the row mask (and intersect every
# cluster's bounds in the metadata overlap masks), matching the single-query
# executor's semantics of simply skipping them.  Shared by every batch
# kernel — keep a single definition.
OPEN_LOW = np.iinfo(np.int64).min // 4
OPEN_HIGH = np.iinfo(np.int64).max // 4


def _bounds_as(column: np.ndarray, lows: np.ndarray, highs: np.ndarray):
    """Cast query bounds to the column dtype without changing semantics.

    Narrowed columns store values strictly inside the narrow dtype's range,
    so clipping a bound into that range preserves every comparison outcome
    (out-of-range bounds keep selecting everything or nothing).  Matching
    dtypes avoids numpy upcasting the whole column to int64 per comparison.
    """
    if column.dtype == lows.dtype:
        return lows, highs
    info = np.iinfo(column.dtype)
    return (
        np.clip(lows, info.min, info.max).astype(column.dtype),
        np.clip(highs, info.min, info.max).astype(column.dtype),
    )


@dataclass(frozen=True)
class ClusterLayout:
    """Columns of every cluster concatenated contiguously, with offsets.

    Attributes
    ----------
    columns:
        One contiguous integer array per dimension (cluster-major order;
        int32 when the stored values fit, int64 otherwise).
    measure:
        Contiguous measure column (all ones for raw tables).
    starts:
        ``starts[i]`` is the first row of cluster position ``i``; segments are
        contiguous, so cluster ``i`` occupies ``starts[i]:starts[i] +
        cluster_rows[i]``.
    cluster_rows:
        Stored row count per cluster position.
    cluster_ids:
        Cluster identifier per position (position order == storage order).
    """

    columns: Mapping[str, np.ndarray]
    measure: np.ndarray
    starts: np.ndarray
    cluster_rows: np.ndarray
    cluster_ids: tuple[int, ...]

    @classmethod
    def from_clusters(cls, clusters: Sequence) -> "ClusterLayout":
        """Build the contiguous layout from a sequence of clusters."""
        if not clusters:
            raise StorageError("a layout needs at least one cluster")
        schema = clusters[0].schema
        names = schema.dimension_names
        columns: dict[str, np.ndarray] = {}
        for name in names:
            column = np.ascontiguousarray(
                np.concatenate([cluster.rows.column(name) for cluster in clusters])
            )
            # Narrow to int32 when the dimension domain allows it: the mask
            # kernels are memory-bound, so halving the element width roughly
            # halves the gather/compare traffic.  Comparisons are exact in
            # either width; the measure stays int64 for overflow-safe sums.
            if column.size and np.iinfo(np.int32).min < column.min() and column.max() < np.iinfo(np.int32).max:
                column = column.astype(np.int32)
            columns[name] = column
        measure = np.ascontiguousarray(
            np.concatenate([cluster.rows.measure_column() for cluster in clusters])
        )
        cluster_rows = np.array([cluster.num_rows for cluster in clusters], dtype=np.int64)
        starts = np.zeros(len(clusters), dtype=np.int64)
        np.cumsum(cluster_rows[:-1], out=starts[1:])
        return cls(
            columns=columns,
            measure=measure,
            starts=starts,
            cluster_rows=cluster_rows,
            cluster_ids=tuple(cluster.cluster_id for cluster in clusters),
        )

    @property
    def num_clusters(self) -> int:
        """Number of cluster segments in the layout."""
        return int(self.cluster_rows.size)

    @property
    def num_rows(self) -> int:
        """Total number of rows across segments."""
        return int(self.measure.size)

    def position_of(self) -> dict[int, int]:
        """Mapping from cluster id to its position in the layout."""
        return {cluster_id: i for i, cluster_id in enumerate(self.cluster_ids)}

    def gather(self, positions: np.ndarray | Sequence[int]) -> "ClusterLayout":
        """Sub-layout holding only the clusters at ``positions`` (in order).

        Utility for extracting a materialised sub-layout (e.g. for ad-hoc
        analysis of a cluster subset).  The engine hot path does not copy
        sub-layouts — it uses :meth:`query_cluster_values`, which restricts
        each query to its own cluster positions without materialising.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            raise StorageError("gather needs at least one cluster position")
        row_chunks = [
            np.arange(self.starts[p], self.starts[p] + self.cluster_rows[p])
            for p in positions
        ]
        rows = np.concatenate(row_chunks) if row_chunks else np.empty(0, dtype=np.int64)
        cluster_rows = self.cluster_rows[positions]
        starts = np.zeros(positions.size, dtype=np.int64)
        np.cumsum(cluster_rows[:-1], out=starts[1:])
        return ClusterLayout(
            columns={name: column[rows] for name, column in self.columns.items()},
            measure=self.measure[rows],
            starts=starts,
            cluster_rows=cluster_rows,
            cluster_ids=tuple(self.cluster_ids[int(p)] for p in positions),
        )

    # -- vectorised evaluation ---------------------------------------------

    def row_masks(self, batch: "QueryBatch") -> np.ndarray:
        """Boolean ``(num_queries, num_rows)`` selection masks for a batch.

        One broadcast comparison per queried dimension per bound; dimensions a
        query does not constrain use open sentinel bounds and stay all-true.
        """
        num_queries = len(batch)
        masks = np.ones((num_queries, self.num_rows), dtype=bool)
        if self.num_rows == 0:
            return masks
        for name, (lows, highs) in batch.bounds(OPEN_LOW, OPEN_HIGH).items():
            if name not in self.columns:
                raise StorageError(f"layout has no column {name!r}")
            column = self.columns[name]
            lows, highs = _bounds_as(column, lows, highs)
            np.logical_and(masks, column[None, :] >= lows[:, None], out=masks)
            np.logical_and(masks, column[None, :] <= highs[:, None], out=masks)
        return masks

    def cluster_values(self, batch: "QueryBatch") -> np.ndarray:
        """Exact ``Q(C)`` for every (query, cluster) pair — ``(nq, nc)`` int64.

        The per-cluster primitive of the paper, vectorised: mask rows per
        query, multiply by the measure, and reduce each contiguous cluster
        segment with ``np.add.reduceat``.
        """
        num_queries = len(batch)
        if self.num_rows == 0:
            return np.zeros((num_queries, self.num_clusters), dtype=np.int64)
        masks = self.row_masks(batch)
        contributions = masks * self.measure[None, :]
        if np.all(self.cluster_rows > 0):
            return np.add.reduceat(contributions, self.starts, axis=1)
        # np.add.reduceat mis-handles zero-length segments (it returns the
        # element at the segment start); fall back to a prefix-sum difference.
        prefix = np.zeros((num_queries, self.num_rows + 1), dtype=np.int64)
        np.cumsum(contributions, axis=1, out=prefix[:, 1:])
        ends = self.starts + self.cluster_rows
        return prefix[:, ends] - prefix[:, self.starts]

    def query_cluster_values(
        self,
        batch: "QueryBatch",
        positions_per_query: Sequence[np.ndarray],
    ) -> list[np.ndarray]:
        """Exact ``Q(C)`` for each query's own cluster positions, in one pass.

        Unlike :meth:`cluster_values`, which evaluates every query against
        every cluster of the layout, this kernel touches exactly the rows of
        the (query, cluster) pairs requested: per-query bounds are expanded
        to per-row bounds with ``np.repeat``, so one boolean-mask pass plus
        one ``np.add.reduceat`` serves all pairs regardless of how different
        the queries' cluster sets are.  Total work equals the sum of the
        requested cluster sizes — the same rows a per-query loop would scan.
        """
        num_queries = len(batch)
        if len(positions_per_query) != num_queries:
            raise StorageError("positions_per_query must align with the batch")
        pair_counts = np.array([len(p) for p in positions_per_query], dtype=np.int64)
        if int(pair_counts.sum()) == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(num_queries)]
        pair_query = np.repeat(np.arange(num_queries, dtype=np.int64), pair_counts)
        pair_positions = np.concatenate(
            [np.asarray(p, dtype=np.int64) for p in positions_per_query]
        )
        lengths = self.cluster_rows[pair_positions]
        offsets = np.zeros(lengths.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        total = int(lengths.sum())
        if total == 0:
            pair_values = np.zeros(lengths.size, dtype=np.int64)
        else:
            rows = (
                np.repeat(self.starts[pair_positions] - offsets, lengths)
                + np.arange(total, dtype=np.int64)
            )
            mask = np.ones(total, dtype=bool)
            for name, (lows, highs) in batch.bounds(OPEN_LOW, OPEN_HIGH).items():
                column = self.columns[name][rows]
                lows, highs = _bounds_as(column, lows, highs)
                row_lows = np.repeat(lows[pair_query], lengths)
                row_highs = np.repeat(highs[pair_query], lengths)
                np.logical_and(mask, column >= row_lows, out=mask)
                np.logical_and(mask, column <= row_highs, out=mask)
            contributions = self.measure[rows] * mask
            if np.all(lengths > 0):
                pair_values = np.add.reduceat(contributions, offsets)
            else:
                prefix = np.zeros(total + 1, dtype=np.int64)
                np.cumsum(contributions, out=prefix[1:])
                pair_values = prefix[offsets + lengths] - prefix[offsets]
        boundaries = np.zeros(num_queries + 1, dtype=np.int64)
        np.cumsum(pair_counts, out=boundaries[1:])
        return [
            pair_values[boundaries[index] : boundaries[index + 1]]
            for index in range(num_queries)
        ]

    def memory_bytes(self) -> int:
        """Approximate footprint of the contiguous arrays."""
        total = self.measure.nbytes + self.starts.nbytes + self.cluster_rows.nbytes
        return int(total + sum(column.nbytes for column in self.columns.values()))
