"""Count-tensor construction (the paper's Figure 2).

A count tensor aggregates a raw table over a subset of its dimensions: every
distinct combination of the kept dimensions becomes one row, and a
``Measure`` column records how many original rows it represents.  Range
queries then use ``COUNT(*)`` on the raw table or ``SUM(Measure)`` on the
tensor interchangeably.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SchemaError
from .schema import MEASURE_COLUMN, Schema
from .table import Table

__all__ = ["build_count_tensor"]


def build_count_tensor(
    table: Table,
    dimensions: Sequence[str],
    *,
    measure_name: str = MEASURE_COLUMN,
) -> Table:
    """Aggregate ``table`` over ``dimensions`` into a count tensor.

    Parameters
    ----------
    table:
        The source table.  If it already carries a measure column, measures
        are summed (re-aggregation); otherwise every source row counts as 1.
    dimensions:
        The dimensions to keep (``D^a`` in the paper); all other dimensions
        are aggregated away.
    measure_name:
        Name of the measure column in the produced tensor.

    Returns
    -------
    Table
        A table whose schema keeps only ``dimensions`` plus the measure
        column, with one row per distinct value combination.
    """
    if not dimensions:
        raise SchemaError("a count tensor needs at least one kept dimension")
    kept = list(dict.fromkeys(dimensions))
    if len(kept) != len(list(dimensions)):
        raise SchemaError(f"duplicate dimensions in {list(dimensions)}")
    for name in kept:
        table.schema.dimension(name)

    tensor_schema = Schema(
        tuple(table.schema.dimension(name) for name in kept), measure=measure_name
    )

    if table.num_rows == 0:
        return Table.empty(tensor_schema)

    keys = np.column_stack([table.column(name) for name in kept])
    measures = table.measure_column()
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    summed = np.zeros(unique_keys.shape[0], dtype=np.int64)
    np.add.at(summed, inverse, measures)

    columns = {name: unique_keys[:, i] for i, name in enumerate(kept)}
    columns[measure_name] = summed
    return Table(tensor_schema, columns)
