"""``@njit`` kernels of the compiled tier (imported only when numba exists).

Each kernel is the fused per-pair loop form of one numpy pipeline stage in
:meth:`~repro.storage.layout.ClusterLayout._pair_values` /
:meth:`~repro.storage.layout.ClusterLayout._bisect_segment_sums`:

* :func:`and_range_mask` replaces the ``rows`` gather + two broadcast
  comparisons of one dimension — it walks each pair's segment in place and
  clears mask bytes outside the bounds, touching no temporary arrays;
* :func:`masked_segment_sums` replaces the ``measure[rows] * mask`` product
  plus ``np.add.reduceat`` — one accumulator per pair, reading the measure
  directly at its segment offset;
* :func:`bisect_pair_sums` replaces the per-pair Python ``np.searchsorted``
  loop with in-kernel binary searches over the sorted segments.

All arithmetic is int64 addition over the same rows the numpy path reads, so
the results are bit-identical by construction.  ``cache=True`` persists the
compiled machine code next to the package, amortising JIT cost across
processes (the procpool workers in particular).

Only plain indexing, ``range`` loops, and integer arithmetic are used — the
subset of numba that compiles identically across every supported version.
Coverage is excluded for this module: njit-compiled frames are invisible to
the tracer.
"""

from __future__ import annotations

from numba import njit  # pragma: no cover

# pragma: no cover — the whole module body below runs only under numba's
# compiler, never under the coverage tracer.


@njit(cache=True)
def and_range_mask(column, starts, lengths, lows, highs, mask):  # pragma: no cover
    """AND one dimension's range test into the per-pair row ``mask``.

    ``mask`` is a flat uint8 buffer laid out pair-major: pair ``p`` owns the
    ``lengths[p]`` bytes starting at ``sum(lengths[:p])``, matching row
    ``starts[p] + r`` of ``column``.
    """
    offset = 0
    for p in range(starts.size):
        base = starts[p]
        count = lengths[p]
        low = lows[p]
        high = highs[p]
        for r in range(count):
            if mask[offset + r]:
                value = column[base + r]
                if value < low or value > high:
                    mask[offset + r] = 0
        offset += count


@njit(cache=True)
def masked_segment_sums(measure, starts, lengths, mask, out):  # pragma: no cover
    """Per-pair sum of ``measure`` over the rows still set in ``mask``."""
    offset = 0
    for p in range(starts.size):
        base = starts[p]
        count = lengths[p]
        total = 0
        for r in range(count):
            if mask[offset + r]:
                total += measure[base + r]
        out[p] = total
        offset += count


@njit(cache=True)
def bisect_pair_sums(column, prefix, starts, lengths, lows, highs, out):  # pragma: no cover
    """Per-pair range sums via binary search over sorted segments.

    For pair ``p`` the rows ``starts[p] : starts[p] + lengths[p]`` of
    ``column`` are non-decreasing; the kernel locates the half-open row range
    matching ``[lows[p], highs[p]]`` (the ``side="left"`` / ``side="right"``
    insertion points) and charges the measure-prefix difference.
    """
    for p in range(starts.size):
        base = starts[p]
        end = base + lengths[p]
        low = lows[p]
        high = highs[p]
        a = base
        b = end
        while a < b:
            middle = (a + b) // 2
            if column[middle] < low:
                a = middle + 1
            else:
                b = middle
        low_row = a
        a = low_row
        b = end
        while a < b:
            middle = (a + b) // 2
            if column[middle] <= high:
                a = middle + 1
            else:
                b = middle
        out[p] = prefix[a] - prefix[low_row]
